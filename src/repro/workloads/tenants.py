"""Multi-tenant workload mixing for array-level simulations.

A production array serves several tenants at once — a latency-sensitive
key-value store sharing devices with a write-heavy log ingester — and the
interesting questions (who owns the p99? does one tenant's GC churn spill
into another's tail?) need per-tenant attribution.  :class:`TenantMix`
composes any number of :class:`~repro.sim.spec.WorkloadSpec` streams into
one arrival-ordered stream, tagging every request's ``queue_id`` with its
tenant index so the metrics layer can keep a per-tenant latency histogram.

Each tenant is confined to its own slice of the array's logical page space
(sized proportionally to the tenant's footprint), so tenants never share
data: one tenant's writes cannot refresh another tenant's cold pages, which
keeps the per-tenant cold ratios — and therefore the read-retry behaviour —
independent, exactly like namespaces on a shared device.

The mix round-trips through plain dicts like every other spec object, so a
fleet worker can rebuild the identical merged stream from a pickled payload
instead of receiving materialized requests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.sim.spec import WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.request import HostRequest


@dataclass(frozen=True)
class TenantMix:
    """An arrival-ordered merge of per-tenant workload streams."""

    #: Source-registry tag for manifest round-trips.
    source_kind = "tenant_mix"
    #: Runs driven by this source keep per-tenant latency histograms.
    tracks_tenants = True

    tenants: Tuple[WorkloadSpec, ...]
    #: Optional display names, parallel to ``tenants`` (default: the specs'
    #: workload labels, disambiguated by tenant index).
    names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(
            WorkloadSpec.coerce(tenant) for tenant in self.tenants
        ))
        if not self.tenants:
            raise ValueError("a TenantMix needs at least one tenant")
        if self.names is not None:
            object.__setattr__(self, "names", tuple(self.names))
            if len(self.names) != len(self.tenants):
                raise ValueError(
                    f"{len(self.names)} names for {len(self.tenants)} tenants"
                )

    # -- identity --------------------------------------------------------------
    @property
    def label(self) -> str:
        return "+".join(self.tenant_names())

    def tenant_names(self) -> Tuple[str, ...]:
        if self.names is not None:
            return self.names
        return tuple(
            f"{index}:{spec.label}" for index, spec in enumerate(self.tenants)
        )

    @property
    def num_requests(self) -> int:
        return sum(spec.num_requests for spec in self.tenants)

    # -- stream generation -----------------------------------------------------
    def _slices(self, logical_pages: int) -> Tuple[Tuple[int, int], ...]:
        """Per-tenant (start, size) slices of the logical page space.

        The space is divided into equal disjoint namespaces, one per tenant
        (like NVMe namespaces on a shared device); each tenant's own
        ``footprint_fraction`` then applies within its namespace.
        """
        size = logical_pages // len(self.tenants)
        return tuple(
            (index * size, size) for index in range(len(self.tenants))
        )

    def iter_requests(
        self, config: SsdConfig, footprint_pages: Optional[int] = None
    ) -> Iterator[HostRequest]:
        """Stream the merged mix, ordered by arrival time.

        ``footprint_pages`` overrides the addressable page count the tenant
        slices are carved from (the fleet passes the *array's* logical size
        here; a plain device run uses the config's own), matching the
        ``WorkloadSource`` protocol.  Each yielded request carries its
        tenant index in ``queue_id``.
        """
        pages = (config.logical_pages if footprint_pages is None
                 else footprint_pages)
        streams = [
            self._tagged(spec, config, index, start, size)
            for index, (spec, (start, size)) in enumerate(
                zip(self.tenants, self._slices(pages))
            )
        ]
        return heapq.merge(*streams, key=lambda request: request.arrival_us)

    @staticmethod
    def _tagged(
        spec: WorkloadSpec,
        config: SsdConfig,
        tenant: int,
        start: int,
        namespace_pages: int,
    ) -> Iterator[HostRequest]:
        for request in spec.iter_requests(config,
                                          footprint_pages=namespace_pages):
            request.queue_id = tenant
            request.start_lpn += start
            yield request

    # -- rate scaling (capacity search) ---------------------------------------
    def total_arrival_rate_rps(self, default_interarrival_us: float) -> float:
        """The mix's aggregate arrival rate in requests per second."""
        return sum(
            1e6 / (spec.mean_interarrival_us or default_interarrival_us)
            for spec in self.tenants
        )

    def with_arrival_rate(
        self, total_rps: float, default_interarrival_us: float
    ) -> "TenantMix":
        """A copy whose aggregate rate is ``total_rps``.

        Every tenant's arrival rate is scaled by the same factor, so the
        mix's composition (relative tenant load) is preserved — the knob the
        SLO capacity search bisects.
        """
        if total_rps <= 0:
            raise ValueError("total_rps must be positive")
        current = self.total_arrival_rate_rps(default_interarrival_us)
        factor = total_rps / current
        scaled = tuple(
            WorkloadSpec.coerce(
                spec,
                mean_interarrival_us=(
                    spec.mean_interarrival_us or default_interarrival_us
                ) / factor,
            )
            for spec in self.tenants
        )
        return TenantMix(tenants=scaled, names=self.names)

    # -- manifest round-trip ---------------------------------------------------
    def to_dict(self) -> dict:
        payload = {"tenants": [spec.to_dict() for spec in self.tenants]}
        if self.names is not None:
            payload["names"] = list(self.names)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantMix":
        return cls(
            tenants=tuple(
                WorkloadSpec.from_dict(spec) for spec in payload["tenants"]
            ),
            names=(
                tuple(payload["names"]) if payload.get("names") else None
            ),
        )

    @classmethod
    def coerce(cls, value, num_requests: Optional[int] = None,
               seed: Optional[int] = None) -> "TenantMix":
        """Build a mix from a mix, a spec, names, or a dict.

        Tenants built from names/shapes are seeded ``seed + index`` so
        their streams are independent — one shared seed would make
        same-name tenants emit bitwise-identical, lockstep request
        sequences (a synchronized-burst pathology, not a mix).  Ready
        :class:`WorkloadSpec` objects keep their own seeds untouched.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, dict) and "tenants" in value:
            return cls.from_dict(value)
        if not isinstance(value, (tuple, list)):
            value = (value,)
        base_seed = 0 if seed is None else seed
        tenants = []
        for index, item in enumerate(value):
            if isinstance(item, WorkloadSpec):
                tenants.append(WorkloadSpec.coerce(
                    item, num_requests=num_requests))
            else:
                tenants.append(WorkloadSpec.coerce(
                    item, num_requests=num_requests,
                    seed=base_seed + index))
        return cls(tenants=tuple(tenants))
