"""Discrete-event simulation core.

A deliberately small event engine: a priority queue of timestamped events,
each carrying a callback.  Events can be cancelled (lazily) which is how the
die scheduler implements program/erase suspension — the original completion
event of a suspended operation is invalidated and a new one is scheduled for
the extended completion time.

The queue is *array-backed*: the heap holds plain ``(time_us, sequence,
slot)`` tuples (compared in C, never through a Python ``__lt__``) and the
callback payloads live in parallel slot lists recycled through a free list,
so a steady-state run allocates O(live events), not O(trace) heap objects.
Cancellation is a generation check — a slot whose stored sequence no longer
matches the popped entry is stale and is skipped — which keeps
:class:`EventHandle` allocation off the hot path entirely: only callers that
may cancel (the die scheduler's suspendable operations) ask for a handle.
Tie-breaking is unchanged from the object-heap implementation: equal
timestamps run in scheduling order, because the monotonically increasing
sequence is the second tuple element.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Sentinel argument for events scheduled through the no-argument
#: :meth:`EventQueue.schedule` compatibility surface.
_NO_ARG = object()

#: Slot-generation value marking a free (or cancelled) slot.
_FREE = -1

#: Batch size beyond which a bulk push re-heapifies instead of sifting each
#: entry individually.  ``heapify`` is O(heap), a push is O(log heap); with
#: the admission pump's 64-request windows the crossover sits well below a
#: full-window refill and well above the steady-state single admission.
_HEAPIFY_THRESHOLD = 16


class EventHandle:
    """Handle returned by the scheduling methods, used to cancel events."""

    __slots__ = ("_queue", "_slot", "_sequence", "_time_us", "_cancelled")

    def __init__(self, queue: "EventQueue", slot: int, sequence: int, time_us: float):
        self._queue = queue
        self._slot = slot
        self._sequence = sequence
        self._time_us = time_us
        self._cancelled = False

    def cancel(self) -> None:
        # Cancelling an event that already ran (or was cancelled before)
        # must stay a no-op, and must not touch the live-event counter.  An
        # executed or recycled slot no longer carries this handle's
        # sequence, so the generation check covers both cases.
        queue = self._queue
        if queue._slot_sequence[self._slot] == self._sequence:
            queue._slot_sequence[self._slot] = _FREE
            queue._slot_callback[self._slot] = None
            queue._slot_argument[self._slot] = None
            queue._live -= 1
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def time_us(self) -> float:
        return self._time_us


class EventQueue:
    """A time-ordered queue of callbacks."""

    def __init__(self):
        #: Heap of ``(time_us, sequence, slot)`` tuples.
        self._heap: List[Tuple[float, int, int]] = []
        self._next_sequence = 0
        self._now_us = 0.0
        # Live (non-cancelled, not-yet-run) event count, maintained on
        # schedule/cancel/pop so __len__ is O(1) instead of a heap scan.
        self._live = 0
        # Slot pool (structure-of-arrays): the sequence currently occupying
        # each slot (_FREE when vacant), its callback and its argument.
        self._slot_sequence: List[int] = []
        self._slot_callback: List[Optional[Callable]] = []
        self._slot_argument: List[object] = []
        self._free_slots: List[int] = []

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds."""
        return self._now_us

    def __len__(self) -> int:
        return self._live

    # -- slot pool ------------------------------------------------------------
    def _acquire_slot(self, callback: Callable, argument) -> Tuple[int, int]:
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        free_slots = self._free_slots
        if free_slots:
            slot = free_slots.pop()
            self._slot_sequence[slot] = sequence
            self._slot_callback[slot] = callback
            self._slot_argument[slot] = argument
        else:
            slot = len(self._slot_sequence)
            self._slot_sequence.append(sequence)
            self._slot_callback.append(callback)
            self._slot_argument.append(argument)
        return slot, sequence

    # -- scheduling -----------------------------------------------------------
    def schedule(self, time_us: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at ``time_us`` (must not be in the past)."""
        if time_us < self._now_us - 1e-9:
            raise ValueError(f"cannot schedule event at {time_us} before now ({self._now_us})")
        slot, sequence = self._acquire_slot(callback, _NO_ARG)
        heapq.heappush(self._heap, (time_us, sequence, slot))
        self._live += 1
        return EventHandle(self, slot, sequence, time_us)

    def schedule_after(self, delay_us: float, callback: Callable[[], None]) -> EventHandle:
        if delay_us < 0:
            raise ValueError("delay_us must be non-negative")
        return self.schedule(self._now_us + delay_us, callback)

    def schedule_call(self, time_us: float, callback: Callable, argument) -> None:
        """Hot-path scheduling of ``callback(argument)``: no handle, no closure.

        The single pre-bound argument replaces the per-event lambda the
        dispatch paths used to allocate; callers that may need to cancel
        must use :meth:`schedule` / :meth:`schedule_call_after` instead.
        """
        if time_us < self._now_us - 1e-9:
            raise ValueError(f"cannot schedule event at {time_us} before now ({self._now_us})")
        slot, sequence = self._acquire_slot(callback, argument)
        heapq.heappush(self._heap, (time_us, sequence, slot))
        self._live += 1

    def schedule_call_after(self, delay_us: float, callback: Callable, argument) -> EventHandle:
        """Cancellable counterpart of :meth:`schedule_call` (relative time)."""
        if delay_us < 0:
            raise ValueError("delay_us must be non-negative")
        time_us = self._now_us + delay_us
        slot, sequence = self._acquire_slot(callback, argument)
        heapq.heappush(self._heap, (time_us, sequence, slot))
        self._live += 1
        return EventHandle(self, slot, sequence, time_us)

    def schedule_batch(self, callback: Callable, timed_arguments) -> None:
        """Bulk-push ``callback(argument)`` events from ``(time_us, argument)`` pairs.

        Arguments are assigned their sequence numbers in iteration order, so
        ties between batch entries (and against previously scheduled events)
        break exactly as if each pair had been pushed individually.  Large
        batches restore the heap invariant with one ``heapify`` pass instead
        of per-entry sift-ups; both strategies yield the same pop order
        because the heap entries are totally ordered tuples.
        """
        heap = self._heap
        floor_us = self._now_us - 1e-9
        entries = []
        for time_us, argument in timed_arguments:
            if time_us < floor_us:
                raise ValueError(f"cannot schedule event at {time_us} before now ({self._now_us})")
            slot, sequence = self._acquire_slot(callback, argument)
            entries.append((time_us, sequence, slot))
        if not entries:
            return
        if len(entries) > _HEAPIFY_THRESHOLD:
            heap.extend(entries)
            heapq.heapify(heap)
        else:
            for entry in entries:
                heapq.heappush(heap, entry)
        self._live += len(entries)

    # -- execution ------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event; returns False when the queue is empty."""
        heap = self._heap
        slot_sequence = self._slot_sequence
        while heap:
            time_us, sequence, slot = heapq.heappop(heap)
            if slot_sequence[slot] != sequence:
                # Stale entry: the event was cancelled.  Its slot was freed
                # at cancellation time; recycle it now that the heap no
                # longer references it.
                self._free_slots.append(slot)
                continue
            callback = self._slot_callback[slot]
            argument = self._slot_argument[slot]
            slot_sequence[slot] = _FREE
            self._slot_callback[slot] = None
            self._slot_argument[slot] = None
            self._free_slots.append(slot)
            self._live -= 1
            self._now_us = time_us
            if argument is _NO_ARG:
                callback()
            else:
                callback(argument)
            return True
        return False

    def run(self, until_us: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until exhaustion, a time limit, or an event budget.

        :return: the number of events executed.
        """
        heap = self._heap
        slot_sequence = self._slot_sequence
        slot_callback = self._slot_callback
        slot_argument = self._slot_argument
        free_slots = self._free_slots
        heappop = heapq.heappop
        executed = 0
        while heap:
            time_us, sequence, slot = heap[0]
            if slot_sequence[slot] != sequence:
                heappop(heap)
                free_slots.append(slot)
                continue
            if max_events is not None and executed >= max_events:
                break
            if until_us is not None and time_us > until_us:
                break
            heappop(heap)
            callback = slot_callback[slot]
            argument = slot_argument[slot]
            slot_sequence[slot] = _FREE
            slot_callback[slot] = None
            slot_argument[slot] = None
            free_slots.append(slot)
            self._live -= 1
            self._now_us = time_us
            if argument is _NO_ARG:
                callback()
            else:
                callback(argument)
            executed += 1
        return executed
