"""Tests for the end-to-end SSD simulator."""

import pytest

from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator, simulate_policies
from repro.ssd.request import HostRequest, RequestKind


def read(arrival, lpn, pages=1):
    return HostRequest(arrival_us=arrival, kind=RequestKind.READ,
                       start_lpn=lpn, page_count=pages)


def write(arrival, lpn, pages=1):
    return HostRequest(arrival_us=arrival, kind=RequestKind.WRITE,
                       start_lpn=lpn, page_count=pages)


@pytest.fixture()
def config():
    return SsdConfig.tiny()


class TestBasicOperation:
    def test_single_fresh_read(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition(pe_cycles=0, retention_months=0.0)
        result = simulator.run([read(0.0, 10)])
        assert result.metrics.host_reads == 1
        # A fresh read needs no retry: tR + tDMA + tECC at most (CSB worst).
        assert result.metrics.mean_response_time_us("read") <= 117.0 + 36.0 + 1e-6
        assert result.metrics.mean_retry_steps() == 0.0

    def test_aged_read_takes_much_longer(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition(pe_cycles=2000, retention_months=12.0)
        result = simulator.run([read(0.0, 10)])
        assert result.metrics.mean_retry_steps() >= 10
        assert result.metrics.mean_response_time_us("read") > 1000.0

    def test_write_is_absorbed_by_buffer(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition()
        result = simulator.run([write(0.0, 5)])
        assert result.metrics.host_writes == 1
        assert result.metrics.mean_response_time_us("write") == pytest.approx(0.0)
        assert result.metrics.host_programs == 1

    def test_write_back_pressure_when_buffer_full(self, default_rpt):
        config = SsdConfig.tiny(write_buffer_pages=2)
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition()
        requests = [write(0.0, lpn) for lpn in range(6)]
        result = simulator.run(requests)
        assert result.metrics.host_writes == 6
        # Later writes had to wait for flash programs to drain the buffer.
        assert result.metrics.max_response_time_us("write") > 0.0

    def test_multi_page_read_completes_once(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition()
        result = simulator.run([read(0.0, 0, pages=4)])
        assert result.metrics.host_reads == 1
        assert result.metrics.pages_read == 4

    def test_unmapped_read_is_treated_as_cold_data(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0,
                               fill_fraction=0.05)
        lpn = config.logical_pages - 1  # outside the preconditioned range
        result = simulator.run([read(0.0, lpn)])
        assert result.metrics.mean_retry_steps() > 0

    def test_precondition_validation(self, config):
        simulator = SsdSimulator(config, policy="NoRR")
        with pytest.raises(ValueError):
            simulator.precondition(fill_fraction=0.0)


class TestPolicyBehaviour:
    def test_policy_accepts_instances_and_names(self, config, default_rpt):
        from repro.core.policies import PR2Policy

        by_name = SsdSimulator(config, policy="PR2", rpt=default_rpt)
        by_instance = SsdSimulator(config, policy=PR2Policy(config.timing,
                                                            default_rpt))
        assert by_name.policy.name == by_instance.policy.name == "PR2"

    def test_pnar2_beats_baseline_under_aging(self, config, default_rpt):
        def requests():
            return [read(i * 400.0, 7 * i % 200) for i in range(40)]

        results = simulate_policies(["Baseline", "PnAR2", "NoRR"], requests,
                                    config=config, pe_cycles=1000,
                                    retention_months=6.0, rpt=default_rpt)
        baseline = results["Baseline"].mean_response_time_us
        pnar2 = results["PnAR2"].mean_response_time_us
        norr = results["NoRR"].mean_response_time_us
        assert norr < pnar2 < baseline

    def test_all_policies_identical_on_fresh_ssd(self, config, default_rpt):
        def requests():
            return [read(i * 500.0, i) for i in range(20)]

        results = simulate_policies(["Baseline", "PR2", "PnAR2", "NoRR"],
                                    requests, config=config, pe_cycles=0,
                                    retention_months=0.0, rpt=default_rpt)
        means = {name: round(result.mean_response_time_us, 3)
                 for name, result in results.items()}
        assert len(set(means.values())) == 1

    def test_result_summary_contains_policy(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="AR2", rpt=default_rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0)
        result = simulator.run([read(0.0, 3)])
        summary = result.summary()
        assert summary["policy"] == "AR2"
        assert result.preconditioned_pe_cycles == 1000
        assert result.preconditioned_retention_months == 6.0


class TestGcIntegration:
    def test_sustained_writes_trigger_gc(self, default_rpt):
        config = SsdConfig.tiny(write_buffer_pages=16,
                                gc_free_block_threshold=6)
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition(fill_fraction=0.7)
        hot_span = 40
        requests = [write(i * 30.0, i % hot_span, pages=1)
                    for i in range(800)]
        result = simulator.run(requests)
        assert result.metrics.gc_erases > 0
        assert result.metrics.gc_programs >= 0
        # The device never runs out of free blocks (the run completes).
        assert result.metrics.host_writes == 800
