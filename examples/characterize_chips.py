#!/usr/bin/env python3
"""Reproduce the paper's NAND flash characterization study (Sections 3 and 5).

Walks through the same sequence the paper follows on 160 real chips, against
the calibrated virtual test platform:

1. How many retry steps do reads need across operating conditions? (Figure 5)
2. How much ECC-capability margin is left in the final retry step? (Figure 7)
3. How far can tPRE be reduced before that margin is exhausted? (Figure 11)
4. What does the resulting Read-timing Parameter Table look like? (Figure 13)

Usage::

    python examples/characterize_chips.py [--chips N]
"""

import argparse

from repro.analysis import format_table
from repro.characterization import (
    build_rpt,
    ecc_margin_sweep,
    minimum_safe_tpre_sweep,
    profile_retry_steps,
)
from repro.characterization.platform import VirtualTestPlatform
from repro.characterization.retry_profile import summarize_profiles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chips", type=int, default=8,
                        help="number of virtual chips to characterize")
    parser.add_argument("--blocks", type=int, default=3,
                        help="blocks sampled per chip")
    args = parser.parse_args()

    platform = VirtualTestPlatform(num_chips=args.chips,
                                   blocks_per_chip=args.blocks,
                                   wordlines_per_block=2, seed=0)
    print(f"Virtual population: {platform.num_pages} pages "
          f"({args.chips} chips x {args.blocks} blocks x "
          f"{platform.wordlines_per_block} wordlines x 3 page types)")
    print(f"(A 12-month retention age corresponds to a "
          f"{platform.bake_plan_hours(12.0):.0f}-hour bake at 85C.)\n")

    print("== Figure 5: retry steps per read ==")
    profiles = profile_retry_steps(platform)
    print(format_table(summarize_profiles(profiles)))
    worst = profiles[(2000, 12.0)]
    print(f"\nAt 2K P/E cycles and a 1-year retention age the average read "
          f"needs {worst.mean_steps:.1f} retry steps "
          f"({worst.read_latency_amplification():.0f}x the no-retry latency).\n")

    print("== Figure 7: ECC-capability margin in the final retry step ==")
    margin_rows = ecc_margin_sweep(platform, temperatures_c=(85.0, 30.0),
                                   retention_months=(0.0, 6.0, 12.0))
    print(format_table(margin_rows))

    print("\n== Figure 11: minimum safe tPRE ==")
    print(format_table(minimum_safe_tpre_sweep(platform)))

    print("\n== Figure 13: Read-timing Parameter Table (RPT) ==")
    rpt = build_rpt(platform)
    print(format_table(rpt.as_rows()))
    print(f"\nRPT storage footprint: {rpt.storage_bytes()} bytes")


if __name__ == "__main__":
    main()
