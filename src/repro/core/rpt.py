"""The Read-timing Parameter Table (RPT) used by AR2.

AR2 needs to know, for the current operating condition of the block being
read, how far tPRE can be reduced without pushing the final retry step's
error count beyond the ECC capability.  The paper proposes that SSD
manufacturers profile each chip offline and ship the result as a small
table indexed by P/E-cycle count and retention age (Section 6.2,
Figure 13); with 36 (PEC, retention) combinations the table costs only about
144 bytes per chip.

This module provides the table data structure and its default construction
from the calibrated error model (the "offline profiling" step, implemented
in :mod:`repro.characterization.rpt_builder`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.errors.condition import OperatingCondition
from repro.nand.timing import ReadTimingParameters

#: Upper edges of the default P/E-cycle bins.  They cover the characterized
#: envelope (up to 2K P/E cycles, Section 4); blocks beyond the last edge are
#: clamped to the last bin, i.e. they use the most conservative profiled
#: reduction.
DEFAULT_PEC_BIN_EDGES = (250, 500, 1000, 1500, 2000)

#: Upper edges of the default retention-age bins, in months (up to the
#: one-year retention requirement of JESD218 the paper profiles against).
DEFAULT_RETENTION_BIN_EDGES_MONTHS = (0.25, 1.0, 2.0, 3.0, 6.0, 9.0, 12.0)


@dataclass(frozen=True)
class RptEntry:
    """One row of the Read-timing Parameter Table.

    :param pre_reduction: fractional tPRE reduction deemed safe for the bin.
    :param t_pre_us: the resulting absolute tPRE value (what the SET FEATURE
        command installs, mirroring the "tPRE [us]" column of Figure 13).
    :param margin_bits: ECC-capability margin left after the reduction under
        the bin's worst condition (includes the 14-bit safety margin).
    """

    pre_reduction: float
    t_pre_us: float
    margin_bits: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.pre_reduction < 1.0:
            raise ValueError("pre_reduction must be in [0, 1)")
        if self.t_pre_us <= 0:
            raise ValueError("t_pre_us must be positive")


class ReadTimingParameterTable:
    """Lookup table mapping (P/E cycles, retention age) to a reduced tPRE."""

    def __init__(self,
                 entries: Dict[Tuple[int, int], RptEntry],
                 pec_bin_edges: Sequence[int] = DEFAULT_PEC_BIN_EDGES,
                 retention_bin_edges_months: Sequence[float] = DEFAULT_RETENTION_BIN_EDGES_MONTHS,
                 default_timing: ReadTimingParameters = None):
        self._pec_edges = tuple(pec_bin_edges)
        self._retention_edges = tuple(retention_bin_edges_months)
        self._default_timing = default_timing or ReadTimingParameters()
        self._entries = dict(entries)
        expected = (len(self._pec_edges)) * (len(self._retention_edges))
        if len(self._entries) != expected:
            raise ValueError(
                f"expected {expected} entries "
                f"({len(self._pec_edges)} PEC bins x "
                f"{len(self._retention_edges)} retention bins), "
                f"got {len(self._entries)}")

    # -- bin arithmetic -----------------------------------------------------------
    @property
    def pec_bin_edges(self) -> Tuple[int, ...]:
        return self._pec_edges

    @property
    def retention_bin_edges_months(self) -> Tuple[float, ...]:
        return self._retention_edges

    def pec_bin(self, pe_cycles: int) -> int:
        """Index of the P/E-cycle bin containing ``pe_cycles``."""
        if pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        index = bisect.bisect_left(self._pec_edges, pe_cycles + 1)
        return min(index, len(self._pec_edges) - 1)

    def retention_bin(self, retention_months: float) -> int:
        """Index of the retention-age bin containing ``retention_months``."""
        if retention_months < 0:
            raise ValueError("retention_months must be non-negative")
        index = bisect.bisect_left(self._retention_edges, retention_months)
        return min(index, len(self._retention_edges) - 1)

    def bin_condition(self, pec_bin: int, retention_bin: int,
                      temperature_c: float = 30.0) -> OperatingCondition:
        """Worst-case operating condition covered by a bin (its upper edges)."""
        return OperatingCondition(
            pe_cycles=self._pec_edges[pec_bin],
            retention_months=self._retention_edges[retention_bin],
            temperature_c=temperature_c)

    # -- lookups ------------------------------------------------------------------
    def entry_for(self, pe_cycles: int, retention_months: float) -> RptEntry:
        """The RPT entry AR2 uses for a block in the given condition."""
        key = (self.pec_bin(pe_cycles), self.retention_bin(retention_months))
        return self._entries[key]

    def entry_for_condition(self, condition: OperatingCondition) -> RptEntry:
        return self.entry_for(condition.pe_cycles, condition.retention_months)

    def reduced_timing_for(self, pe_cycles: int,
                           retention_months: float) -> ReadTimingParameters:
        """Reduced read-timing parameters for a block (what SET FEATURE gets)."""
        entry = self.entry_for(pe_cycles, retention_months)
        return self._default_timing.with_reduction(pre=entry.pre_reduction)

    def iter_entries(self) -> Iterable[Tuple[Tuple[int, int], RptEntry]]:
        return iter(sorted(self._entries.items()))

    # -- presentation ---------------------------------------------------------------
    def as_rows(self):
        """Render the table as Figure 13-style rows (for reports and tests)."""
        rows = []
        for (pec_bin, ret_bin), entry in self.iter_entries():
            rows.append({
                "pec_upper": self._pec_edges[pec_bin],
                "retention_upper_months": self._retention_edges[ret_bin],
                "t_pre_us": round(entry.t_pre_us, 2),
                "pre_reduction_pct": round(entry.pre_reduction * 100.0, 1),
                "margin_bits": round(entry.margin_bits, 1),
            })
        return rows

    def storage_bytes(self, bytes_per_entry: int = 4) -> int:
        """Approximate SRAM/DRAM footprint of the table (Section 6.2)."""
        return len(self._entries) * bytes_per_entry

    # -- construction ----------------------------------------------------------------
    _default_cache = None

    @classmethod
    def default(cls) -> "ReadTimingParameterTable":
        """The RPT built from the calibrated error model (cached).

        Equivalent to the offline profiling step an SSD manufacturer would
        run per chip; see :mod:`repro.characterization.rpt_builder`.
        """
        if cls._default_cache is None:
            from repro.characterization.rpt_builder import build_rpt

            cls._default_cache = build_rpt()
        return cls._default_cache

    @classmethod
    def conservative(cls, pre_reduction: float = 0.40,
                     default_timing: ReadTimingParameters = None
                     ) -> "ReadTimingParameterTable":
        """A flat table applying the same reduction everywhere.

        The paper's characterization shows 40% is safe under every tested
        condition (Figure 11); this constructor is useful for tests and for
        ablating the benefit of condition-awareness.
        """
        default_timing = default_timing or ReadTimingParameters()
        entries = {}
        for pec_bin in range(len(DEFAULT_PEC_BIN_EDGES)):
            for ret_bin in range(len(DEFAULT_RETENTION_BIN_EDGES_MONTHS)):
                entries[(pec_bin, ret_bin)] = RptEntry(
                    pre_reduction=pre_reduction,
                    t_pre_us=default_timing.t_pre_us * (1.0 - pre_reduction))
        return cls(entries, default_timing=default_timing)
