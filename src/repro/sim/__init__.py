"""``repro.sim`` — the unified simulation session API.

This package is the canonical public surface for running the read-retry
simulator:

* :mod:`repro.sim.registry` — a :class:`PolicyRegistry` the built-in and
  third-party read-retry policies register into by name
  (:func:`register_policy`);
* :mod:`repro.sim.spec` — :class:`WorkloadSpec` and :class:`Condition`
  value objects replacing ad-hoc ``requests_factory`` closures;
* :mod:`repro.sim.session` — the fluent :class:`Simulation` builder
  (``Simulation(config).policy("PnAR2").workload("ycsb-a", n=800)``
  ``.condition(pec=2000, months=6).run()``);
* :mod:`repro.sim.sweep` — :class:`SweepRunner`, which executes
  (workload x condition x policy) grids across a multiprocessing pool and
  returns a tidy :class:`SweepResult`;
* :mod:`repro.sim.fleet` — :class:`FleetSpec`/:class:`FleetRunner`, which
  stripe an array-level workload (optionally a multi-tenant
  :class:`~repro.workloads.tenants.TenantMix`) across N simulated SSDs,
  and :class:`SloCapacitySearch`, which bisects the arrival rate for the
  max sustainable load under a p99 SLO
  (``Simulation.fleet(n).slo(p99_us=...)``).

``Simulation``/``SweepRunner`` are imported lazily (PEP 562) so that
``repro.core.policies`` can import the registry at module-import time
without a cycle.
"""

from __future__ import annotations

from repro.sim.registry import (
    DEFAULT_REGISTRY,
    DuplicatePolicyError,
    PolicyLookupError,
    PolicyRegistry,
    default_registry,
    register_policy,
)

__all__ = [
    "CapacityProbe",
    "CapacityResult",
    "Condition",
    "DEFAULT_REGISTRY",
    "DEFAULT_SHARD_DEVICES",
    "DuplicatePolicyError",
    "FleetResult",
    "FleetRunResult",
    "FleetRunner",
    "FleetShardTiming",
    "FleetSpec",
    "PolicyLookupError",
    "PolicyRegistry",
    "RunResult",
    "Simulation",
    "SloCapacitySearch",
    "SweepResult",
    "SweepRunner",
    "TenantMix",
    "WorkerPool",
    "WorkloadSpec",
    "default_registry",
    "pool_map",
    "register_policy",
]

_LAZY = {
    "Condition": "repro.sim.spec",
    "WorkloadSpec": "repro.sim.spec",
    "Simulation": "repro.sim.session",
    "RunResult": "repro.sim.session",
    "SweepRunner": "repro.sim.sweep",
    "SweepResult": "repro.sim.sweep",
    "WorkerPool": "repro.sim.sweep",
    "pool_map": "repro.sim.sweep",
    "DEFAULT_SHARD_DEVICES": "repro.sim.fleet",
    "FleetSpec": "repro.sim.fleet",
    "FleetRunner": "repro.sim.fleet",
    "FleetResult": "repro.sim.fleet",
    "FleetRunResult": "repro.sim.fleet",
    "FleetShardTiming": "repro.sim.fleet",
    "SloCapacitySearch": "repro.sim.fleet",
    "CapacityProbe": "repro.sim.fleet",
    "CapacityResult": "repro.sim.fleet",
    "TenantMix": "repro.workloads.tenants",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
