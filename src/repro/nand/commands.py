"""NAND flash command set.

The paper's techniques rely on four commands beyond the basic PAGE READ /
PROGRAM / ERASE:

* ``CACHE READ`` — pipelines page sensing of the next read with the data
  transfer of the previous one (Section 3.2.1).  PR2 uses it to pipeline the
  consecutive retry steps of one read-retry operation.
* ``SET FEATURE`` — dynamically changes read-timing parameters (Section 4).
  AR2 uses it to install a reduced ``tPRE`` before a read-retry operation and
  to roll it back afterwards.
* ``RESET`` — terminates the on-going chip operation within ``tRST`` (5 us
  for reads).  PR2 uses it to cancel the speculatively issued retry step once
  ECC decoding succeeds.
* ``READ STATUS`` — polls the chip's ready/busy state (modelled implicitly by
  the simulator's event engine, provided here for completeness).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.nand.geometry import PageAddress
from repro.nand.timing import ReadTimingParameters


class CommandKind(enum.Enum):
    """Kinds of commands a :class:`repro.nand.chip.NandChip` accepts."""

    PAGE_READ = "page_read"
    CACHE_READ = "cache_read"
    PROGRAM = "program"
    ERASE = "erase"
    SET_FEATURE = "set_feature"
    RESET = "reset"
    READ_STATUS = "read_status"

    @property
    def is_read(self) -> bool:
        return self in (CommandKind.PAGE_READ, CommandKind.CACHE_READ)

    @property
    def targets_page(self) -> bool:
        return self in (CommandKind.PAGE_READ, CommandKind.CACHE_READ,
                        CommandKind.PROGRAM)

    @property
    def targets_block(self) -> bool:
        return self is CommandKind.ERASE


_command_ids = itertools.count()


@dataclass
class Command:
    """A single command issued to a NAND flash chip.

    :param kind: command opcode.
    :param address: target page (for reads/programs) or any page of the
        target block (for erases).  ``None`` for SET FEATURE / RESET /
        READ STATUS.
    :param read_reference_shift_mv: shift applied to every read-reference
        voltage of this read, in millivolts.  Retry steps re-issue the read
        with the shift prescribed by the read-retry table.
    :param read_timing: read-phase timing override carried by a SET FEATURE
        command (``None`` means "restore the chip default").
    :param command_id: monotonically increasing identifier, useful for
        logging and for matching RESET commands to the operation they cancel.
    """

    kind: CommandKind
    address: Optional[PageAddress] = None
    read_reference_shift_mv: float = 0.0
    read_timing: Optional[ReadTimingParameters] = None
    command_id: int = field(default_factory=lambda: next(_command_ids))

    def __post_init__(self) -> None:
        if self.kind.targets_page and self.address is None:
            raise ValueError(f"{self.kind.value} requires a page address")
        if self.kind is CommandKind.ERASE and self.address is None:
            raise ValueError("ERASE requires a block address")
        if (self.kind is CommandKind.SET_FEATURE
                and self.read_timing is None):
            raise ValueError(
                "SET_FEATURE requires read_timing (use reset_feature() to "
                "restore defaults)")

    @classmethod
    def page_read(cls, address: PageAddress,
                  shift_mv: float = 0.0) -> "Command":
        """Build a basic PAGE READ command (optionally with shifted V_REF)."""
        return cls(CommandKind.PAGE_READ, address,
                   read_reference_shift_mv=shift_mv)

    @classmethod
    def cache_read(cls, address: PageAddress,
                   shift_mv: float = 0.0) -> "Command":
        """Build a CACHE READ command used to pipeline consecutive reads."""
        return cls(CommandKind.CACHE_READ, address,
                   read_reference_shift_mv=shift_mv)

    @classmethod
    def program(cls, address: PageAddress) -> "Command":
        return cls(CommandKind.PROGRAM, address)

    @classmethod
    def erase(cls, address: PageAddress) -> "Command":
        return cls(CommandKind.ERASE, address)

    @classmethod
    def set_feature(cls, read_timing: ReadTimingParameters) -> "Command":
        """Install new read-timing parameters (AR2, step 2 of Figure 13)."""
        return cls(CommandKind.SET_FEATURE, read_timing=read_timing)

    @classmethod
    def reset(cls) -> "Command":
        """Terminate the on-going chip operation (PR2's cleanup command)."""
        return cls(CommandKind.RESET)

    @classmethod
    def read_status(cls) -> "Command":
        return cls(CommandKind.READ_STATUS)
