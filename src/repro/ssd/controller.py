"""The SSD simulator: host interface, controller and device model.

:class:`SsdSimulator` glues the pieces together the way MQSim does for the
paper's evaluation:

* host requests arrive at their trace timestamps, are split into page-sized
  flash transactions, and are scheduled per die with read priority and
  program/erase suspension (:mod:`repro.ssd.scheduler`);
* read transactions ask the flash backend how many retry steps they need
  (each simulated block behaves like a characterized block) and the active
  read-retry *policy* (Baseline / PR2 / AR2 / PnAR2 / NoRR / PSO) translates
  that into latency and die-occupancy numbers;
* writes are absorbed by the write buffer and flushed to flash through the
  page-mapping FTL, with greedy garbage collection keeping free blocks
  available;
* response times and utilization are collected in
  :class:`repro.ssd.metrics.SimulationMetrics`.

A deliberate simplification relative to a cycle-accurate model: channel-bus
contention between dies of the same channel is not modelled as a separate
resource — per-step data transfer time is already part of each transaction's
die-occupancy where the paper's mechanisms place it on the critical path,
and with four dies per channel and ``tDMA`` = 16 us versus ``tR`` ~ 90 us
plus retries, the bus is never the bottleneck in these workloads.  DESIGN.md
documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.core.policies import ReadRetryPolicy, get_policy
from repro.core.rpt import ReadTimingParameterTable
from repro.errors.condition import OperatingCondition
from repro.ssd.config import SsdConfig
from repro.ssd.engine import EventQueue
from repro.ssd.flash_backend import FlashBackend
from repro.ssd.ftl import FlashTranslationLayer, PhysicalPage
from repro.ssd.gc import GarbageCollector
from repro.ssd.metrics import SimulationMetrics
from repro.ssd.request import (
    FlashTransaction,
    HostRequest,
    RequestKind,
    TransactionKind,
)
from repro.ssd.scheduler import DieScheduler
from repro.ssd.write_buffer import WriteBuffer


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    policy_name: str
    config: SsdConfig
    metrics: SimulationMetrics
    preconditioned_pe_cycles: int
    preconditioned_retention_months: float

    @property
    def mean_response_time_us(self) -> float:
        return self.metrics.mean_response_time_us()

    @property
    def mean_read_response_time_us(self) -> float:
        return self.metrics.mean_response_time_us("read")

    def summary(self) -> Dict[str, float]:
        summary = {"policy": self.policy_name}
        summary.update(self.metrics.summary())
        return summary


class SsdSimulator:
    """An event-driven SSD with a pluggable read-retry policy."""

    def __init__(self, config: SsdConfig = None,
                 policy: Union[str, ReadRetryPolicy] = "Baseline",
                 rpt: ReadTimingParameterTable = None):
        self.config = config or SsdConfig.scaled()
        if isinstance(policy, str):
            self.policy = get_policy(policy, timing=self.config.timing, rpt=rpt)
        else:
            self.policy = policy
        shared_rpt = rpt
        if shared_rpt is None and self.policy.uses_reduced_timing:
            shared_rpt = self.policy.rpt
        self.events = EventQueue()
        self.ftl = FlashTranslationLayer(self.config)
        self.gc = GarbageCollector(self.ftl)
        self.write_buffer = WriteBuffer(self.config.write_buffer_pages)
        self.backend = FlashBackend(self.config, rpt=shared_rpt)
        self.metrics = SimulationMetrics()
        self.schedulers: Dict[tuple, DieScheduler] = {}
        for channel in range(self.config.channels):
            for die in range(self.config.dies_per_channel):
                key = (channel, die)
                self.schedulers[key] = DieScheduler(
                    key, self.config, self.events,
                    service_time_fn=self._service_time,
                    on_complete=self._on_transaction_complete)
        self._cold_retention_months = 0.0
        self._preconditioned_pe_cycles = 0
        self._outstanding_requests = 0
        # Reads only ever see a handful of distinct (P/E, retention)
        # conditions; interning the OperatingCondition objects keeps the
        # per-read path free of dataclass construction and validation.
        self._condition_cache: Dict[tuple, OperatingCondition] = {}

    # -- preconditioning ------------------------------------------------------------
    def precondition(self, pe_cycles: int = 0, retention_months: float = 0.0,
                     fill_fraction: float = 0.85) -> None:
        """Install the experiment's operating condition (Section 7.1).

        Every block receives the requested P/E-cycle count and the logical
        space is pre-filled with data whose retention age is
        ``retention_months``.  Pages the workload overwrites during the run
        become fresh again, so cold pages (never updated) retain the long
        retention age — exactly the behaviour the paper's cold-ratio
        discussion relies on.
        """
        if not 0.0 < fill_fraction <= 1.0:
            raise ValueError("fill_fraction must be in (0, 1]")
        pages_to_fill = int(self.config.logical_pages * fill_fraction)
        for lpn in range(pages_to_fill):
            self.ftl.write(lpn, retention_months=retention_months)
        self.ftl.set_uniform_pe_cycles(pe_cycles)
        self._cold_retention_months = retention_months
        self._preconditioned_pe_cycles = pe_cycles
        # Most reads of the run see the cold preconditioned data; vectorize
        # its retry-step slab up front so the read hot path serves from the
        # grid immediately.  The fresh-write condition and GC-created P/E
        # levels fill lazily once their reads actually appear.
        self.backend.prefill_conditions([(pe_cycles, retention_months)])

    # -- running ----------------------------------------------------------------------
    def run(self, requests: Iterable[HostRequest]) -> SimulationResult:
        """Simulate a sequence of host requests and return the result."""
        request_list = sorted(requests, key=lambda request: request.arrival_us)
        for request in request_list:
            self._outstanding_requests += 1
            self.events.schedule(
                request.arrival_us,
                lambda req=request: self._on_request_arrival(req))
        self.events.run()
        self.metrics.simulated_time_us = self.events.now_us
        for key, scheduler in self.schedulers.items():
            self.metrics.record_die_busy(key, scheduler.total_busy_us)
        self.metrics.grid_hits = self.backend.grid_hits
        self.metrics.scalar_fallbacks = self.backend.scalar_fallbacks
        return SimulationResult(
            policy_name=self.policy.name,
            config=self.config,
            metrics=self.metrics,
            preconditioned_pe_cycles=self._preconditioned_pe_cycles,
            preconditioned_retention_months=self._cold_retention_months)

    # -- host-request handling ------------------------------------------------------------
    def _on_request_arrival(self, request: HostRequest) -> None:
        if request.kind is RequestKind.READ:
            self._start_read_request(request)
        else:
            self._admit_or_defer_write(request)

    def _start_read_request(self, request: HostRequest) -> None:
        request.pending_pages = request.page_count
        for lpn in request.lpns:
            physical = self._physical_for_read(lpn)
            transaction = FlashTransaction(
                kind=TransactionKind.READ, lpn=lpn,
                channel=physical.channel, die=physical.die,
                plane=physical.plane, block=physical.block, page=physical.page,
                issue_us=self.events.now_us, request=request)
            self.schedulers[physical.die_key()].enqueue(transaction)

    def _physical_for_read(self, lpn: int) -> PhysicalPage:
        """Resolve a read target, lazily mapping never-written cold data."""
        lpn = lpn % self.config.logical_pages
        physical = self.ftl.lookup(lpn)
        if physical is None:
            # The workload reads data that was written before the trace
            # started; treat it as preconditioned cold data.
            physical, _ = self.ftl.write(
                lpn, retention_months=self._cold_retention_months)
            self.ftl.block_metadata(physical).pe_cycles = (
                self._preconditioned_pe_cycles)
        return physical

    def _admit_or_defer_write(self, request: HostRequest) -> None:
        if self.write_buffer.try_admit(request.page_count):
            self._complete_write_admission(request)
        else:
            self.write_buffer.enqueue_waiter(request)

    def _complete_write_admission(self, request: HostRequest) -> None:
        now = self.events.now_us
        request.completion_us = now
        self.metrics.record_write(now - request.arrival_us)
        self._outstanding_requests -= 1
        for lpn in request.lpns:
            self._issue_program(lpn % self.config.logical_pages, request)
        self._run_gc_if_needed()

    def _issue_program(self, lpn: int, request: Optional[HostRequest]) -> None:
        physical, _ = self.ftl.write(lpn, retention_months=0.0)
        self.metrics.host_programs += 1
        transaction = FlashTransaction(
            kind=TransactionKind.PROGRAM, lpn=lpn,
            channel=physical.channel, die=physical.die, plane=physical.plane,
            block=physical.block, page=physical.page,
            issue_us=self.events.now_us, request=request)
        self.schedulers[physical.die_key()].enqueue(transaction)

    # -- flash service times -----------------------------------------------------------------
    def _service_time(self, transaction: FlashTransaction) -> float:
        timing = self.config.timing
        if transaction.kind in (TransactionKind.PROGRAM,
                                TransactionKind.GC_PROGRAM):
            return timing.t_dma_page_us + timing.t_prog_us
        if transaction.kind is TransactionKind.ERASE:
            return timing.t_bers_us
        return self._read_service_time(transaction)

    def _read_service_time(self, transaction: FlashTransaction) -> float:
        physical = PhysicalPage(transaction.channel, transaction.die,
                                transaction.plane, transaction.block,
                                transaction.page)
        metadata = self.ftl.block_metadata(physical)
        page_type = self.ftl.page_type_of(physical)
        retention = metadata.page_retention_months[transaction.page]
        behaviour = self.backend.read_behaviour(
            physical, page_type, metadata.pe_cycles, retention)
        condition_key = (metadata.pe_cycles, retention)
        condition = self._condition_cache.get(condition_key)
        if condition is None:
            condition = OperatingCondition(
                pe_cycles=metadata.pe_cycles, retention_months=retention,
                temperature_c=self.config.temperature_c)
            self._condition_cache[condition_key] = condition

        if self.policy.uses_reduced_timing:
            steps = behaviour.retry_steps_reduced
        else:
            steps = behaviour.retry_steps
        breakdown = self.policy.breakdown_for(steps, page_type, condition)
        response_us = breakdown.response_us
        die_busy_us = breakdown.die_busy_us

        if behaviour.reduced_timing_fallback and self.policy.uses_reduced_timing:
            # The reduced-timing retry operation exhausted the table; AR2
            # falls back to a full default-timing read-retry operation
            # (Section 6.2).  Charge the failed attempt plus the fallback.
            fallback = self.policy.latency_model.baseline(
                behaviour.retry_steps, page_type)
            response_us += fallback.response_us
            die_busy_us += fallback.die_busy_us
            self.metrics.reduced_timing_fallbacks += 1

        transaction.retry_steps = breakdown.retry_steps
        transaction.response_us = response_us
        return die_busy_us

    # -- completions ----------------------------------------------------------------------------
    def _on_transaction_complete(self, transaction: FlashTransaction) -> None:
        if transaction.kind is TransactionKind.READ:
            self._complete_host_read_page(transaction)
        elif transaction.kind is TransactionKind.PROGRAM:
            self._complete_host_program_page(transaction)
        # GC reads/programs and erases need no per-completion bookkeeping
        # beyond the die-busy accounting the scheduler already did.

    def _complete_host_read_page(self, transaction: FlashTransaction) -> None:
        request = transaction.request
        response_us = getattr(transaction, "response_us",
                              transaction.completion_us - transaction.service_start_us)
        page_ready_us = transaction.service_start_us + response_us
        self.metrics.retry_steps_per_read.append(transaction.retry_steps)
        if request is None:
            return
        if request.completion_us is None or page_ready_us > request.completion_us:
            request.completion_us = page_ready_us
        request.pending_pages -= 1
        if request.pending_pages == 0:
            self.metrics.read_response_times_us.append(
                request.completion_us - request.arrival_us)
            self.metrics.host_reads += 1
            self._outstanding_requests -= 1

    def _complete_host_program_page(self, transaction: FlashTransaction) -> None:
        self.write_buffer.release(1)
        self._admit_waiting_writes()
        self._run_gc_if_needed()

    def _admit_waiting_writes(self) -> None:
        while True:
            waiter = self.write_buffer.pop_waiter()
            if waiter is None:
                return
            if self.write_buffer.try_admit(waiter.page_count):
                self._complete_write_admission(waiter)
            else:
                self.write_buffer.requeue_waiter_front(waiter)
                return

    # -- garbage collection ------------------------------------------------------------------------
    def _run_gc_if_needed(self) -> None:
        operations = self.gc.collect_if_needed()
        for operation in operations:
            plane = self.ftl.planes[operation.plane_index]
            for source, destination in zip(operation.relocations,
                                           operation.destinations):
                self._enqueue_gc_transaction(TransactionKind.GC_READ, source)
                self._enqueue_gc_transaction(TransactionKind.GC_PROGRAM,
                                             destination)
                self.metrics.gc_programs += 1
            erase_target = PhysicalPage(plane.channel, plane.die, plane.plane,
                                        operation.victim_block, 0)
            self._enqueue_gc_transaction(TransactionKind.ERASE, erase_target)
            self.metrics.gc_erases += 1

    def _enqueue_gc_transaction(self, kind: TransactionKind,
                                physical: PhysicalPage) -> None:
        transaction = FlashTransaction(
            kind=kind, lpn=None, channel=physical.channel, die=physical.die,
            plane=physical.plane, block=physical.block, page=physical.page,
            issue_us=self.events.now_us, request=None)
        self.schedulers[physical.die_key()].enqueue(transaction)


def simulate_policies(policies: Iterable[Union[str, ReadRetryPolicy]],
                      requests_factory,
                      config: SsdConfig = None,
                      pe_cycles: int = 0,
                      retention_months: float = 0.0,
                      rpt: ReadTimingParameterTable = None
                      ) -> Dict[str, SimulationResult]:
    """Run the same workload against several policies.

    :param requests_factory: callable returning a fresh list of
        :class:`HostRequest` objects (each simulation mutates its requests,
        so they cannot be shared between runs).
    """
    results: Dict[str, SimulationResult] = {}
    shared_rpt = rpt or ReadTimingParameterTable.default()
    for policy in policies:
        simulator = SsdSimulator(config=config, policy=policy, rpt=shared_rpt)
        simulator.precondition(pe_cycles=pe_cycles,
                               retention_months=retention_months)
        result = simulator.run(requests_factory())
        results[result.policy_name] = result
    return results
