#!/usr/bin/env python3
"""Run every paper experiment and emit the measured headline numbers as JSON.

Used to populate EXPERIMENTS.md; kept as a script so the report can be
regenerated after model changes:

    python scripts/generate_experiments_report.py > experiments_headlines.json

Experiments run at the ``full`` profile with the overrides below, fresh by
default so the report always reflects the current code.  Pass ``--cache``
to go through the artifact store instead — useful to resume an interrupted
report run, but it will serve results computed by older code if the store
is stale.
"""

import argparse
import json
import sys
import time

from repro.experiments import EXPERIMENT_NAMES, ArtifactStore
from repro.experiments.runner import run_experiment

#: Per-experiment overrides on top of the ``full`` profile.  The
#: system-level experiments use a reduced but representative condition grid.
_OVERRIDES = {
    "fig14": {"conditions": ((0, 0.0), (1000, 6.0), (2000, 6.0), (2000, 12.0)),
              "num_requests": 400},
    "fig15": {"conditions": ((0, 0.0), (1000, 6.0), (2000, 6.0), (2000, 12.0)),
              "num_requests": 400},
}

CONFIGS = {name: _OVERRIDES.get(name, {}) for name in EXPERIMENT_NAMES}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cache", action="store_true",
                        help="reuse/populate the artifact store (resumes an "
                             "interrupted run; may serve stale results after "
                             "code changes)")
    args = parser.parse_args()
    store = ArtifactStore() if args.cache else None

    report = {}
    for name, overrides in CONFIGS.items():
        start = time.time()
        result = run_experiment(name, profile="full", store=store, **overrides)
        report[name] = {
            "title": result.title,
            "headline": result.headline,
            "rows": len(result.rows),
            "seconds": round(time.time() - start, 1),
        }
        print(f"# finished {name} in {report[name]['seconds']}s",
              file=sys.stderr, flush=True)
    json.dump(report, sys.stdout, indent=2, default=str)
    print()


if __name__ == "__main__":
    main()
