"""Tests for the SSD configuration."""

import pytest

from repro.nand.timing import TimingParameters
from repro.ssd.config import SsdConfig


class TestSsdConfig:
    def test_paper_configuration(self):
        config = SsdConfig.paper()
        assert config.channels == 4
        assert config.dies_per_channel == 4
        assert config.planes_per_die == 2
        assert config.blocks_per_plane == 1888
        assert config.pages_per_block == 576
        # The paper simulates a 512-GiB class SSD.
        assert 450.0 < config.physical_capacity_gib < 600.0

    def test_derived_counts(self):
        config = SsdConfig.tiny()
        assert config.num_dies == config.channels * config.dies_per_channel
        assert config.num_planes == config.num_dies * config.planes_per_die
        assert config.physical_pages == (config.num_planes
                                         * config.blocks_per_plane
                                         * config.pages_per_block)
        assert config.logical_pages < config.physical_pages

    def test_scaled_keeps_parallelism(self):
        config = SsdConfig.scaled()
        assert config.channels == 4
        assert config.dies_per_channel == 4
        assert config.blocks_per_plane < 1888

    def test_with_timing(self):
        timing = TimingParameters(t_prog_us=500.0)
        config = SsdConfig.tiny().with_timing(timing)
        assert config.timing.t_prog_us == 500.0


class TestJsonRoundTrip:
    def test_default_round_trips(self):
        import json

        config = SsdConfig.scaled()
        payload = json.loads(json.dumps(config.to_dict()))
        assert SsdConfig.from_dict(payload) == config

    def test_custom_values_survive(self):
        timing = TimingParameters(t_prog_us=500.0)
        config = SsdConfig.tiny(seed=7, temperature_c=55.0,
                                read_priority=False).with_timing(timing)
        rebuilt = SsdConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.timing.t_prog_us == 500.0
        assert rebuilt.timing.read == config.timing.read

    def test_from_dict_without_timing_uses_default(self):
        payload = SsdConfig.tiny().to_dict()
        del payload["timing"]
        assert SsdConfig.from_dict(payload).timing == TimingParameters()

    def test_validation(self):
        with pytest.raises(ValueError):
            SsdConfig(channels=0)
        with pytest.raises(ValueError):
            SsdConfig(overprovisioning=0.9)
        with pytest.raises(ValueError):
            SsdConfig(gc_free_block_threshold=1)
