"""Configuration for the ``repro-lint`` static-analysis pass.

The linter is configured from the ``[tool.repro-lint]`` table of
``pyproject.toml``:

* ``paths`` — repo-relative files/directories linted by default;
* ``exclude`` — paths skipped entirely;
* ``sim-paths`` — where the determinism rules (wall clock, global RNG,
  unordered iteration, pool pickling) apply; scripts and benchmarks live
  outside these prefixes and are therefore allowlisted by construction;
* ``disable`` — rule names turned off globally;
* ``experiments-doc`` / ``experiments-package`` — the documentation file and
  package the ``experiment-registration-sync`` rule keeps in sync;
* ``pool-entry-points`` — callable names treated as process-pool fan-out
  primitives by ``pickle-safe-pool``;
* per-rule ``[tool.repro-lint.rules.<rule>]`` tables with an ``allow`` list
  of paths where that one rule is skipped.

Everything has working defaults, so the linter also runs on a tree without
any ``pyproject.toml`` at all (the fixture projects the tests build).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Tuple

try:
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None


class LintConfigError(ValueError):
    """Raised when ``[tool.repro-lint]`` contains an invalid value."""


def path_matches(relpath: str, entries: Iterable[str]) -> bool:
    """True when ``relpath`` equals an entry or lies under an entry directory."""
    for entry in entries:
        entry = entry.rstrip("/")
        if relpath == entry or relpath.startswith(entry + "/"):
            return True
    return False


def _string_tuple(table: Mapping, key: str, default: Tuple[str, ...]) -> Tuple[str, ...]:
    value = table.get(key, default)
    if isinstance(value, str) or not all(isinstance(item, str) for item in value):
        raise LintConfigError(f"[tool.repro-lint] {key!r} must be a list of strings")
    return tuple(value)


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration (defaults merged with pyproject)."""

    root: Path = field(default_factory=Path.cwd)
    paths: Tuple[str, ...] = ("src/repro",)
    exclude: Tuple[str, ...] = ()
    sim_paths: Tuple[str, ...] = ("src/repro",)
    disable: Tuple[str, ...] = ()
    rule_allow: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    experiments_doc: str = "EXPERIMENTS.md"
    experiments_package: str = "src/repro/experiments"
    pool_entry_points: Tuple[str, ...] = ("pool_map",)

    @classmethod
    def load(cls, root: Path, pyproject: Optional[Path] = None) -> "LintConfig":
        """Read ``[tool.repro-lint]`` from ``pyproject.toml`` under ``root``.

        A missing file (or a pyproject without the table) yields the default
        configuration rooted at ``root``.
        """
        root = Path(root).resolve()
        pyproject = pyproject if pyproject is not None else root / "pyproject.toml"
        table: Mapping = {}
        if pyproject.is_file():
            if tomllib is None:  # pragma: no cover - Python < 3.11
                raise LintConfigError(
                    "reading pyproject.toml requires the tomllib module (Python >= 3.11)"
                )
            with open(pyproject, "rb") as handle:
                table = tomllib.load(handle).get("tool", {}).get("repro-lint", {})
        rule_tables = table.get("rules", {})
        if not isinstance(rule_tables, Mapping):
            raise LintConfigError("[tool.repro-lint.rules] must be a table of rule tables")
        rule_allow = {}
        for rule_name in sorted(rule_tables):
            rule_table = rule_tables[rule_name]
            if not isinstance(rule_table, Mapping):
                raise LintConfigError(
                    f"[tool.repro-lint.rules.{rule_name}] must be a table"
                )
            rule_allow[rule_name] = _string_tuple(rule_table, "allow", ())
        return cls(
            root=root,
            paths=_string_tuple(table, "paths", cls.paths),
            exclude=_string_tuple(table, "exclude", ()),
            sim_paths=_string_tuple(table, "sim-paths", cls.sim_paths),
            disable=_string_tuple(table, "disable", ()),
            rule_allow=rule_allow,
            experiments_doc=str(table.get("experiments-doc", cls.experiments_doc)),
            experiments_package=str(
                table.get("experiments-package", cls.experiments_package)
            ),
            pool_entry_points=_string_tuple(
                table, "pool-entry-points", cls.pool_entry_points
            ),
        )

    # -- rule gating ----------------------------------------------------------
    def rule_applies(self, rule_name: str, relpath: str, sim_scoped: bool) -> bool:
        """Whether ``rule_name`` runs on the file at ``relpath``."""
        if rule_name in self.disable:
            return False
        if sim_scoped and not path_matches(relpath, self.sim_paths):
            return False
        return not path_matches(relpath, self.rule_allow.get(rule_name, ()))

    def excluded(self, relpath: str) -> bool:
        return path_matches(relpath, self.exclude)
