"""The registered fleet_capacity experiment and its CLI surface."""

import pytest

from repro.experiments.api import default_experiment_registry
from repro.experiments.runner import main as cli_main, run_experiment

#: Small enough for a unit test, large enough to bracket and converge.
FAST_OVERRIDES = dict(devices=2, replication=1, tenants=("usr_1",),
                      num_requests=120, policies=("PnAR2",),
                      target_p99_us=20_000.0, tolerance=0.2, max_probes=6)


def test_registered_with_system_tag():
    registry = default_experiment_registry()
    entry = registry.entry("fleet_capacity")
    assert "system" in entry.tags
    assert "fleet" in entry.tags
    assert "fleet_capacity" in registry.names(tag="system")


@pytest.mark.parametrize("profile", ["full", "fast", "smoke"])
def test_profiles_resolve(profile):
    entry = default_experiment_registry().entry("fleet_capacity")
    params = entry.resolve_params(profile=profile)
    assert params["devices"] >= 1
    assert params["target_p99_us"] > 0
    assert 1 <= params["replication"] <= params["devices"]


def test_smoke_run_converges_within_documented_tolerance():
    result = run_experiment("fleet_capacity", profile="smoke",
                            num_requests=120, max_probes=8)
    assert any("converged" in key and value is True
               for key, value in result.headline.items())
    probe_rows = [row for row in result.rows if row["kind"] == "probe"]
    assert probe_rows
    meeting = [row["rate_rps"] for row in probe_rows if row["meets_slo"]]
    violating = [row["rate_rps"] for row in probe_rows
                 if not row["meets_slo"]]
    assert meeting and violating
    # Convergence criterion: the sustainable/violating bracket is within
    # the profile's documented tolerance (smoke: 10%).
    assert min(violating) / max(meeting) <= 1.10 + 1e-9
    device_rows = [row for row in result.rows if row["kind"] == "device"]
    assert [row["device"] for row in device_rows] == [0, 1]


def test_serial_and_parallel_rows_are_bitwise_identical():
    serial = run_experiment("fleet_capacity", processes=1, **FAST_OVERRIDES)
    parallel = run_experiment("fleet_capacity", processes=2, **FAST_OVERRIDES)
    assert serial.rows == parallel.rows
    assert serial.headline == parallel.headline


def test_cli_run_smoke_profile(capsys, tmp_path):
    exit_code = cli_main([
        "run", "fleet_capacity", "--profile", "smoke", "--no-cache",
        "--set", "num_requests=100", "--set", "max_probes=5",
        "--set", "tolerance=0.3",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "fleet_capacity [smoke]" in output
    assert "capacity" in output


def test_rows_share_one_column_set():
    result = run_experiment("fleet_capacity", **FAST_OVERRIDES)
    columns = set(result.columns())
    for row in result.rows:
        assert set(row) == columns
    # Exports must therefore serialize cleanly.
    assert result.to_csv().startswith("policy,")
    assert result.to_json()
