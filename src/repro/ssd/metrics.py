"""Simulation statistics.

The paper's primary metric is the average SSD response time (Figures 14 and
15), normalized to the Baseline configuration.  This module collects
per-request response times (split by read/write), retry-step statistics,
per-die utilization and garbage-collection counters, and provides the
normalization helpers the experiment harnesses use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


@dataclass
class SimulationMetrics:
    """Mutable collector of simulation statistics."""

    read_response_times_us: List[float] = field(default_factory=list)
    write_response_times_us: List[float] = field(default_factory=list)
    retry_steps_per_read: List[int] = field(default_factory=list)
    die_busy_us: Dict[tuple, float] = field(default_factory=dict)
    host_reads: int = 0
    host_writes: int = 0
    host_programs: int = 0
    gc_programs: int = 0
    gc_erases: int = 0
    reduced_timing_fallbacks: int = 0
    simulated_time_us: float = 0.0
    #: Reads whose retry behaviour came from a precomputed grid slab.
    grid_hits: int = 0
    #: Reads that needed an exact scalar walk (cold condition).
    scalar_fallbacks: int = 0

    # -- recording -----------------------------------------------------------------
    def record_read(self, response_us: float, retry_steps: int) -> None:
        if response_us < 0:
            raise ValueError("response_us must be non-negative")
        self.read_response_times_us.append(response_us)
        self.retry_steps_per_read.append(retry_steps)
        self.host_reads += 1

    def record_write(self, response_us: float) -> None:
        if response_us < 0:
            raise ValueError("response_us must be non-negative")
        self.write_response_times_us.append(response_us)
        self.host_writes += 1

    def record_die_busy(self, die_key: tuple, busy_us: float) -> None:
        self.die_busy_us[die_key] = self.die_busy_us.get(die_key, 0.0) + busy_us

    # -- aggregate views -----------------------------------------------------------
    @property
    def all_response_times_us(self) -> List[float]:
        return self.read_response_times_us + self.write_response_times_us

    def mean_response_time_us(self, kind: str = "all") -> float:
        values = self._select(kind)
        return float(np.mean(values)) if values else 0.0

    def percentile_response_time_us(self, percentile: float,
                                    kind: str = "all") -> float:
        values = self._select(kind)
        if not values:
            return 0.0
        return float(np.percentile(values, percentile))

    def max_response_time_us(self, kind: str = "all") -> float:
        values = self._select(kind)
        return float(max(values)) if values else 0.0

    def mean_retry_steps(self) -> float:
        if not self.retry_steps_per_read:
            return 0.0
        return float(np.mean(self.retry_steps_per_read))

    def die_utilization(self) -> float:
        """Average fraction of simulated time the dies were busy."""
        if not self.die_busy_us or self.simulated_time_us <= 0:
            return 0.0
        busy = np.mean(list(self.die_busy_us.values()))
        return float(min(1.0, busy / self.simulated_time_us))

    def _select(self, kind: str) -> List[float]:
        kind = kind.lower()
        if kind == "read":
            return self.read_response_times_us
        if kind == "write":
            return self.write_response_times_us
        if kind == "all":
            return self.all_response_times_us
        raise ValueError("kind must be 'read', 'write' or 'all'")

    # -- reporting ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        return {
            "mean_response_us": round(self.mean_response_time_us(), 2),
            "mean_read_response_us": round(self.mean_response_time_us("read"), 2),
            "mean_write_response_us": round(self.mean_response_time_us("write"), 2),
            "p99_response_us": round(self.percentile_response_time_us(99.0), 2),
            "mean_retry_steps": round(self.mean_retry_steps(), 2),
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "gc_programs": self.gc_programs,
            "gc_erases": self.gc_erases,
            "die_utilization": round(self.die_utilization(), 3),
            "reduced_timing_fallbacks": self.reduced_timing_fallbacks,
            "grid_hits": self.grid_hits,
            "scalar_fallbacks": self.scalar_fallbacks,
        }


def normalized_response_times(results: Dict[str, "SimulationMetrics"],
                              baseline: str = "Baseline",
                              kind: str = "all") -> Dict[str, float]:
    """Normalize mean response times to a baseline configuration.

    This is the y-axis of Figures 14 and 15 (lower is better, Baseline = 1).
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    reference = results[baseline].mean_response_time_us(kind)
    if reference <= 0:
        raise ValueError("baseline mean response time is zero")
    return {name: metrics.mean_response_time_us(kind) / reference
            for name, metrics in results.items()}


def improvement_over(results: Dict[str, "SimulationMetrics"], target: str,
                     reference: str, kind: str = "all") -> float:
    """Fractional response-time reduction of ``target`` relative to ``reference``."""
    ref = results[reference].mean_response_time_us(kind)
    tgt = results[target].mean_response_time_us(kind)
    if ref <= 0:
        raise ValueError("reference mean response time is zero")
    return 1.0 - tgt / ref
