"""Import resolution for the AST rules.

The determinism rules reason about *dotted call targets* — ``time.time``,
``numpy.random.seed`` — not about whatever local alias a module used.  An
:class:`ImportTable` maps every imported local name back to its canonical
dotted path, so ``import numpy as np; np.random.seed(0)`` and
``from numpy.random import seed; seed(0)`` both resolve to
``numpy.random.seed``.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportTable:
    """Maps local names to the dotted path they were imported from."""

    def __init__(self) -> None:
        self._names: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTable":
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        table._names[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds the top-level name only.
                        top = alias.name.split(".")[0]
                        table._names[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports are project-local, never stdlib
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table._names[local] = f"{node.module}.{alias.name}"
        return table

    def resolve(self, node: ast.expr) -> Optional[str]:
        """The canonical dotted path of a Name/Attribute chain, if imported.

        Returns ``None`` for expressions rooted in anything but an imported
        name — local variables, parameters and ``self`` attributes resolve
        to ``None``, which is what keeps ``rng.random()`` (a seeded generator
        parameter) distinct from ``random.random()`` (the global module).
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._names.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))
