"""Binary BCH codes over GF(2^m).

A from-scratch implementation of the Bose–Chaudhuri–Hocquenghem codes that
SSD controllers have used for NAND flash error correction (Section 2.4).
The implementation covers the full pipeline:

* GF(2^m) arithmetic with exponential/log tables,
* generator-polynomial construction from the minimal polynomials of the
  first ``2t`` powers of the primitive element,
* systematic encoding by polynomial division,
* decoding with syndrome computation, the Berlekamp–Massey algorithm and a
  Chien search.

It is used by the test-suite and examples to validate the bounded-distance
"capability" abstraction of :class:`repro.ecc.engine.CapabilityEccEngine`;
the SSD simulator itself uses the capability model for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

#: Primitive polynomials (as bit masks, LSB = x^0) for GF(2^m), m = 3 .. 14.
_PRIMITIVE_POLYNOMIALS = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
}


class GaloisField:
    """GF(2^m) arithmetic backed by exp/log tables."""

    def __init__(self, m: int):
        if m not in _PRIMITIVE_POLYNOMIALS:
            raise ValueError(f"unsupported field order 2^{m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1
        self._exp = [0] * (2 * self.order)
        self._log = [0] * self.size
        poly = _PRIMITIVE_POLYNOMIALS[m]
        value = 1
        for power in range(self.order):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & self.size:
                value ^= poly
        # Duplicate the table so products of logs never need a modulo.
        for power in range(self.order, 2 * self.order):
            self._exp[power] = self._exp[power - self.order]

    def add(self, a: int, b: int) -> int:
        return a ^ b

    def multiply(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def divide(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.order]

    def inverse(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return self._exp[self.order - self._log[a]]

    def power(self, a: int, exponent: int) -> int:
        if a == 0:
            return 0 if exponent > 0 else 1
        return self._exp[(self._log[a] * exponent) % self.order]

    def alpha_power(self, exponent: int) -> int:
        """alpha^exponent for the primitive element alpha."""
        return self._exp[exponent % self.order]

    def log(self, a: int) -> int:
        if a == 0:
            raise ValueError("log of zero is undefined")
        return self._log[a]

    # -- polynomial helpers (coefficients low-degree first) --------------------
    def poly_multiply(self, p: Sequence[int], q: Sequence[int]) -> List[int]:
        result = [0] * (len(p) + len(q) - 1)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b:
                    result[i + j] ^= self.multiply(a, b)
        return result

    def poly_evaluate(self, p: Sequence[int], x: int) -> int:
        result = 0
        for coefficient in reversed(p):
            result = self.multiply(result, x) ^ coefficient
        return result


def _minimal_polynomial(field: GaloisField, element_log: int) -> List[int]:
    """Minimal polynomial (over GF(2)) of alpha^element_log."""
    # Collect the conjugacy class {alpha^(e*2^k)}.
    conjugates = set()
    exponent = element_log % field.order
    while exponent not in conjugates:
        conjugates.add(exponent)
        exponent = (exponent * 2) % field.order
    poly = [1]
    for exponent in sorted(conjugates):
        root = field.alpha_power(exponent)
        poly = field.poly_multiply(poly, [root, 1])
    # The product of (x - conjugates) has coefficients in GF(2).
    return [coefficient & 1 for coefficient in poly]


def _poly_mod2_multiply(p: Sequence[int], q: Sequence[int]) -> List[int]:
    result = [0] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        if a:
            for j, b in enumerate(q):
                if b:
                    result[i + j] ^= 1
    return result


@dataclass(frozen=True)
class BchDecodeResult:
    """Result of decoding one BCH codeword."""

    success: bool
    corrected_positions: Tuple[int, ...]
    codeword: np.ndarray

    @property
    def corrected_bits(self) -> int:
        return len(self.corrected_positions)


class BchCode:
    """A binary primitive BCH code of length ``2^m - 1`` correcting ``t`` errors.

    :param m: Galois-field degree; the code length is ``2^m - 1``.
    :param t: designed error-correction capability.

    The code is systematic: :meth:`encode` appends ``n - k`` parity bits to
    the message.
    """

    def __init__(self, m: int = 8, t: int = 8):
        if t < 1:
            raise ValueError("t must be at least 1")
        self.field = GaloisField(m)
        self.n = self.field.order
        self.t = t
        self.generator = self._build_generator()
        self.n_parity = len(self.generator) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) has no payload (parity {self.n_parity} >= "
                f"length {self.n}); use a smaller t or larger m")

    def _build_generator(self) -> List[int]:
        generator = [1]
        seen = set()
        for i in range(1, 2 * self.t + 1):
            exponent = i % self.field.order
            # Skip exponents whose conjugacy class was already included.
            conjugate = exponent
            duplicate = False
            while True:
                if conjugate in seen:
                    duplicate = True
                    break
                seen.add(conjugate)
                conjugate = (conjugate * 2) % self.field.order
                if conjugate == exponent:
                    break
            if duplicate:
                continue
            generator = _poly_mod2_multiply(
                generator, _minimal_polynomial(self.field, exponent))
        return generator

    # -- encode ---------------------------------------------------------------
    def encode(self, message: Iterable[int]) -> np.ndarray:
        """Encode ``k`` message bits into an ``n``-bit systematic codeword."""
        message = np.asarray(list(message), dtype=np.uint8)
        if message.size != self.k:
            raise ValueError(f"message must have {self.k} bits, got {message.size}")
        if np.any(message > 1):
            raise ValueError("message must be binary")
        # Polynomial view: codeword(x) = message(x) * x^(n-k) + remainder(x).
        register = np.zeros(self.n_parity, dtype=np.uint8)
        generator = np.asarray(self.generator[:-1], dtype=np.uint8)
        for bit in message[::-1]:
            feedback = bit ^ register[-1]
            register[1:] = register[:-1]
            register[0] = 0
            if feedback:
                register ^= generator
        return np.concatenate([register, message]).astype(np.uint8)

    # -- decode ---------------------------------------------------------------
    def decode(self, received: Iterable[int]) -> BchDecodeResult:
        """Decode an ``n``-bit word, correcting up to ``t`` bit errors."""
        received = np.asarray(list(received), dtype=np.uint8).copy()
        if received.size != self.n:
            raise ValueError(f"codeword must have {self.n} bits, got {received.size}")
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return BchDecodeResult(True, (), received)
        locator = self._berlekamp_massey(syndromes)
        error_positions = self._chien_search(locator)
        if error_positions is None or len(error_positions) != len(locator) - 1:
            return BchDecodeResult(False, (), received)
        corrected = received.copy()
        for position in error_positions:
            corrected[position] ^= 1
        if any(self._syndromes(corrected)):
            return BchDecodeResult(False, (), received)
        return BchDecodeResult(True, tuple(sorted(error_positions)), corrected)

    def extract_message(self, codeword: np.ndarray) -> np.ndarray:
        """Recover the ``k`` message bits from a (corrected) codeword."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        return codeword[self.n_parity:]

    # -- decoding internals -----------------------------------------------------
    def _syndromes(self, received: np.ndarray) -> List[int]:
        positions = np.flatnonzero(received)
        syndromes = []
        for i in range(1, 2 * self.t + 1):
            value = 0
            for position in positions:
                value ^= self.field.alpha_power(int(position) * i)
            syndromes.append(value)
        return syndromes

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        field = self.field
        locator = [1]
        previous = [1]
        shift = 1
        previous_discrepancy = 1
        for step, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, len(locator)):
                if i <= step:
                    discrepancy ^= field.multiply(locator[i], syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.divide(discrepancy, previous_discrepancy)
            candidate = locator[:]
            shifted = [0] * shift + [field.multiply(scale, c) for c in previous]
            length = max(len(candidate), len(shifted))
            candidate += [0] * (length - len(candidate))
            shifted += [0] * (length - len(shifted))
            updated = [a ^ b for a, b in zip(candidate, shifted)]
            if 2 * (len(locator) - 1) <= step:
                previous = locator
                previous_discrepancy = discrepancy
                shift = 1
            else:
                shift += 1
            locator = updated
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: List[int]):
        degree = len(locator) - 1
        if degree == 0:
            return []
        if degree > self.t:
            return None
        positions = []
        field = self.field
        for position in range(self.n):
            # A position p is in error iff alpha^{-p} is a root of the locator.
            x = field.alpha_power(-position % field.order)
            if field.poly_evaluate(locator, x) == 0:
                positions.append(position)
        return positions

    # -- convenience -------------------------------------------------------------
    def correct_random_errors(self, message: Iterable[int], num_errors: int,
                              rng: np.random.Generator) -> BchDecodeResult:
        """Encode, inject ``num_errors`` random bit flips, and decode."""
        if num_errors < 0:
            raise ValueError("num_errors must be non-negative")
        codeword = self.encode(message)
        corrupted = codeword.copy()
        if num_errors:
            positions = rng.choice(self.n, size=min(num_errors, self.n),
                                   replace=False)
            corrupted[positions] ^= 1
        return self.decode(corrupted)
