"""Regenerate the block-mapping golden fixture (tests/data/block_mode_golden.json).

The DFTL work added a ``mapping="block" | "page"`` switch to ``SsdConfig``
with the contract that the default block mapping stays *bitwise identical*
to the pre-DFTL simulator.  This script captures the ground truth: a
smoke-scale (workload x condition x policy) sweep plus the per-cell metric
summaries, serialized exactly as produced.  ``tests/test_block_mode_golden.py``
replays the same grid and compares every value that existed when the
fixture was captured (new columns added later are ignored by the guard).

Run from the repository root:

    PYTHONPATH=src python scripts/generate_block_mode_golden.py

Only regenerate the fixture for an *intentional* behaviour change to the
block-mapping path, and say so in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.sweep import SweepRunner
from repro.ssd.config import SsdConfig

FIXTURE_PATH = Path(__file__).resolve().parent.parent / "tests" / "data" / "block_mode_golden.json"

#: One read-dominant and one write-dominant Table 2 workload, fresh and aged
#: conditions, the four headline policies — the smoke-suite shape.
WORKLOADS = ("usr_1", "stg_0")
CONDITIONS = ((0, 0.0), (1000, 6.0))
POLICIES = ("Baseline", "PR2", "AR2", "PnAR2")
NUM_REQUESTS = 120
SEED = 0


def capture() -> dict:
    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)
    runner = SweepRunner(config=config)
    sweep = runner.run(
        policies=POLICIES,
        workloads=WORKLOADS,
        conditions=CONDITIONS,
        num_requests=NUM_REQUESTS,
        seed=SEED,
    )
    summaries = {}
    for (workload, pe_cycles, months), cell in sorted(sweep.cells.items()):
        for policy, result in cell.items():
            summaries[f"{workload}|{pe_cycles}|{months}|{policy}"] = result.metrics.summary()
    return {
        "workloads": list(WORKLOADS),
        "conditions": [list(condition) for condition in CONDITIONS],
        "policies": list(POLICIES),
        "num_requests": NUM_REQUESTS,
        "seed": SEED,
        "config": {"blocks_per_plane": 24, "pages_per_block": 48},
        "rows": sweep.rows,
        "summaries": summaries,
    }


def main() -> None:
    fixture = capture()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE_PATH} ({len(fixture['rows'])} rows)")


if __name__ == "__main__":
    main()
