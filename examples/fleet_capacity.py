#!/usr/bin/env python3
"""Fleet simulation: SSD arrays, tenant mixes, and SLO capacity search.

Three escalating demonstrations of the fleet layer:

1. stripe a workload across a 4-device array and report the array-level
   latency profile (merged fixed-memory histograms) plus per-device balance;
2. mix two tenants on the same array and attribute the tail to each;
3. bisect the arrival rate to find the max sustainable load under a p99
   SLO — once for Baseline and once for PnAR2, showing how much extra
   array capacity the paper's read-retry optimization buys.

Usage::

    python examples/fleet_capacity.py [--devices 4] [--requests 300]
        [--processes 2] [--slo-us 7000]
"""

import argparse

from repro.sim import Simulation, TenantMix, WorkloadSpec
from repro.ssd.config import SsdConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--slo-us", type=float, default=7000.0)
    args = parser.parse_args()

    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)

    # 1. A read-dominant workload striped across the array.
    print(f"1. usr_1 across a {args.devices}-device array "
          "(1000 PEC / 6 months)...")
    fleet = (Simulation(config)
             .policy("PnAR2")
             .workload("usr_1", n=args.requests, seed=0,
                       mean_interarrival_us=700.0)
             .condition(pec=1000, months=6.0)
             .fleet(args.devices, processes=args.processes)
             .run())
    summary = fleet.result.summary()
    print(f"   array p50/p99/p999: {summary['p50_response_us']:.0f} / "
          f"{summary['p99_response_us']:.0f} / "
          f"{summary['p999_response_us']:.0f} us, "
          f"utilization skew {summary['utilization_skew']:.2f}\n")

    # 2. Two tenants sharing the array, each confined to its namespace.
    print("2. Tenant mix: a key-value store plus a write-heavy log...")
    mix = TenantMix(
        tenants=(WorkloadSpec(name="YCSB-C", num_requests=args.requests,
                              seed=1, mean_interarrival_us=600.0),
                 WorkloadSpec(name="stg_0",
                              num_requests=max(20, args.requests // 3),
                              seed=2, mean_interarrival_us=1800.0)),
        names=("kv", "log"))
    shared = (Simulation(config)
              .policy("PnAR2")
              .tenants(mix)
              .condition(pec=1000, months=6.0)
              .fleet(args.devices, processes=args.processes)
              .run())
    for tenant, tail in shared.result.tenant_tails().items():
        print(f"   {tenant:>4}: p50 {tail['p50_us']:.0f} us, "
              f"p99 {tail['p99_us']:.0f} us, p999 {tail['p999_us']:.0f} us")
    print()

    # 3. SLO capacity search: what load can the array sustain?
    print(f"3. Max sustainable rate with array p99 <= {args.slo_us:g} us...")
    capacities = {}
    for policy in ("Baseline", "PnAR2"):
        capacity = (Simulation(config)
                    .policy(policy)
                    .workload("usr_1", n=args.requests, seed=0,
                              mean_interarrival_us=700.0)
                    .condition(pec=1000, months=6.0)
                    .fleet(args.devices, processes=args.processes)
                    .slo(p99_us=args.slo_us, tolerance=0.1, max_probes=8)
                    .run())
        capacities[policy] = capacity
        rate = capacity.max_rate_rps
        print(f"   {policy:>8}: "
              + (f"{rate:.0f} req/s after {len(capacity.probes)} probes "
                 f"(converged={capacity.converged})"
                 if rate is not None else "below the probed range"))
    baseline, pnar2 = capacities["Baseline"], capacities["PnAR2"]
    if baseline.max_rate_rps and pnar2.max_rate_rps:
        gain = pnar2.max_rate_rps / baseline.max_rate_rps - 1.0
        print(f"\n   PnAR2 serves {gain:+.0%} more load than Baseline "
              "under the same SLO — the paper's mechanisms translate "
              "directly into fleet capacity.")


if __name__ == "__main__":
    main()
