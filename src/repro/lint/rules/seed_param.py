"""``experiment-seed-param``: parameterized experiments declare their seed.

Every experiment result in this repository must be a pure function of its
declared parameters — that is what makes the result cache, the manifest
diff, and the serial==parallel bitwise guarantee meaningful.  An
experiment that takes parameters but draws its streams from an implicit
or hard-coded seed hides an input: two runs with identical declared
parameters could be regenerated differently after an internal default
changes, and the cache key would never notice.  This rule requires every
``@register_experiment`` registration that declares parameters to declare
``param("seed", ...)`` among them.  Registrations with no ``params``
keyword (pure table/constant experiments) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule

_REGISTER = "register_experiment"
_PARAM = "param"


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    return getattr(func, "attr", "")


def _first_string_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def _declared_param_names(params: ast.expr) -> Optional[list]:
    """Parameter names declared in a literal ``params=(param(...), ...)``.

    Returns ``None`` when the expression is not a tuple/list literal of
    ``param(...)`` calls — a computed params value is the registry's own
    plumbing, not a registration this rule can reason about.
    """
    if not isinstance(params, (ast.Tuple, ast.List)):
        return None
    names = []
    for element in params.elts:
        if not (isinstance(element, ast.Call) and _call_name(element) == _PARAM):
            return None
        name = _first_string_arg(element)
        if name is None:
            return None
        names.append(name)
    return names


class ExperimentSeedParamRule(Rule):
    name = "experiment-seed-param"
    description = (
        "@register_experiment registrations that declare params= must "
        'include param("seed", ...) so the seed is part of the cache key '
        "and manifest"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        package = module.config.experiments_package.rstrip("/")
        relpath = module.relpath
        if not (relpath == package or relpath.startswith(package + "/")):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _call_name(node) == _REGISTER):
                continue
            params = next(
                (kw.value for kw in node.keywords if kw.arg == "params"), None
            )
            if params is None:
                continue
            declared = _declared_param_names(params)
            if not declared or "seed" in declared:
                continue
            experiment = _first_string_arg(node) or "<experiment>"
            yield module.finding(
                self,
                node,
                f"experiment {experiment!r} declares parameters "
                f"{declared} without a 'seed' param; declare "
                'param("seed", ...) so the stream seed is part of the '
                "cache key and run manifest",
            )
