"""Property-based tests (Hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.latency import ReadLatencyModel
from repro.ecc.bch import BchCode
from repro.ecc.codeword import PageLayout
from repro.errors import CodewordErrorModel, OperatingCondition
from repro.errors.timing import ReadTimingErrorModel, TimingReduction
from repro.nand.geometry import ChipGeometry, PageType
from repro.nand.timing import ReadTimingParameters
from repro.ssd.engine import EventQueue
from repro.ssd.write_buffer import WriteBuffer
from repro.workloads.synthetic import SyntheticWorkload, WorkloadShape

_MODEL = CodewordErrorModel()
_TIMING_MODEL = ReadTimingErrorModel()
_LATENCY = ReadLatencyModel()
_BCH = BchCode(m=6, t=3)

conditions = st.builds(
    OperatingCondition,
    pe_cycles=st.integers(min_value=0, max_value=3000),
    retention_months=st.floats(min_value=0.0, max_value=24.0,
                               allow_nan=False, allow_infinity=False),
    temperature_c=st.sampled_from([30.0, 55.0, 85.0]),
)

page_types = st.sampled_from(list(PageType))


class TestGeometryProperties:
    @given(st.integers(min_value=0, max_value=2 * 2 * 32 * 48 - 1))
    def test_flat_index_roundtrip(self, index):
        geometry = ChipGeometry.small()
        address = geometry.address_from_flat(index)
        assert geometry.flat_page_index(address) == index

    @given(st.integers(min_value=0, max_value=2 * 2 * 32 * 48 - 1))
    def test_page_type_consistent_with_wordline(self, index):
        geometry = ChipGeometry.small()
        address = geometry.address_from_flat(index)
        assert address.page_type is geometry.page_type_of(address.page)
        assert address.wordline == geometry.wordline_of(address.page)


class TestErrorModelProperties:
    @given(conditions, page_types)
    @settings(max_examples=30, deadline=None)
    def test_expected_errors_are_non_negative_and_finite(self, condition,
                                                         page_type):
        errors = _MODEL.expected_errors(condition, page_type)
        assert np.isfinite(errors)
        assert errors >= 0.0

    @given(conditions, page_types)
    @settings(max_examples=30, deadline=None)
    def test_optimal_shift_never_increases_errors(self, condition, page_type):
        optimal = _MODEL.vth_model.optimal_shift_mv(condition)
        at_default = _MODEL.expected_errors(condition, page_type, 0.0)
        at_optimal = _MODEL.expected_errors(condition, page_type, optimal)
        assert at_optimal <= at_default + 1e-9

    @given(conditions,
           st.floats(min_value=0.0, max_value=0.55, allow_nan=False),
           st.floats(min_value=0.0, max_value=0.55, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_timing_errors_monotonic_in_pre_reduction(self, condition, low, high):
        low, high = sorted((low, high))
        few = _TIMING_MODEL.additional_errors_per_codeword(
            TimingReduction(pre=low), condition)
        many = _TIMING_MODEL.additional_errors_per_codeword(
            TimingReduction(pre=high), condition)
        assert many >= few - 1e-9

    @given(conditions, page_types)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_retry_walk_final_step_is_correctable(self, condition, page_type):
        outcome = _MODEL.walk_retry_table(condition, page_type)
        if outcome.succeeded:
            assert outcome.final_errors <= _MODEL.ecc_capability


class TestLatencyProperties:
    @given(st.integers(min_value=0, max_value=35), page_types)
    @settings(max_examples=50, deadline=None)
    def test_policy_ordering_invariant(self, steps, page_type):
        reduced = ReadTimingParameters().with_reduction(pre=0.40)
        baseline = _LATENCY.baseline(steps, page_type).response_us
        pr2 = _LATENCY.pr2(steps, page_type).response_us
        pnar2 = _LATENCY.pnar2(steps, page_type, reduced).response_us
        ar2 = _LATENCY.ar2(steps, page_type, reduced).response_us
        assert pr2 <= baseline
        assert ar2 <= baseline + 1e-9 or steps == 0
        assert pnar2 <= baseline + 1e-9
        if steps >= 2:
            # With two or more retry steps the tPRE savings outweigh the
            # one-time SET FEATURE overhead and PnAR2 wins over PR2.
            assert pnar2 < pr2 < baseline

    @given(st.integers(min_value=0, max_value=35), page_types)
    @settings(max_examples=30, deadline=None)
    def test_die_busy_at_least_response(self, steps, page_type):
        reduced = ReadTimingParameters().with_reduction(pre=0.47)
        for breakdown in (_LATENCY.baseline(steps, page_type),
                          _LATENCY.pr2(steps, page_type),
                          _LATENCY.pnar2(steps, page_type, reduced)):
            assert breakdown.die_busy_us >= breakdown.response_us - 1e-9


class TestEccProperties:
    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_bch_corrects_any_pattern_within_t(self, data):
        message = np.array(data.draw(st.lists(st.integers(0, 1),
                                              min_size=_BCH.k, max_size=_BCH.k)),
                           dtype=np.uint8)
        num_errors = data.draw(st.integers(min_value=0, max_value=_BCH.t))
        positions = data.draw(st.lists(st.integers(0, _BCH.n - 1),
                                       min_size=num_errors, max_size=num_errors,
                                       unique=True))
        codeword = _BCH.encode(message)
        corrupted = codeword.copy()
        for position in positions:
            corrupted[position] ^= 1
        result = _BCH.decode(corrupted)
        assert result.success
        assert np.array_equal(_BCH.extract_message(result.codeword), message)

    @given(st.integers(min_value=0, max_value=2000))
    def test_page_layout_split_preserves_total(self, total_errors):
        layout = PageLayout()
        split = layout.split_errors(total_errors)
        assert sum(split) == total_errors
        assert max(split) - min(split) <= 1


class TestSimulatorPrimitivesProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=40))
    def test_event_queue_executes_in_sorted_order(self, times):
        queue = EventQueue()
        executed = []
        for time in times:
            queue.schedule(time, lambda t=time: executed.append(t))
        queue.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 8)), max_size=60),
           st.integers(min_value=1, max_value=32))
    def test_write_buffer_never_exceeds_capacity(self, operations, capacity):
        buffer = WriteBuffer(capacity_pages=capacity)
        admitted_minus_released = 0
        for is_admit, pages in operations:
            if is_admit:
                if buffer.try_admit(pages):
                    admitted_minus_released += pages
            else:
                release = min(pages, buffer.used_pages)
                if release > 0:
                    buffer.release(release)
                    admitted_minus_released -= release
            assert 0 <= buffer.used_pages <= capacity
            assert buffer.used_pages == admitted_minus_released


class TestWorkloadProperties:
    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_generated_requests_stay_in_bounds(self, read_ratio, cold_ratio, seed):
        shape = WorkloadShape(read_ratio=read_ratio, cold_ratio=cold_ratio)
        workload = SyntheticWorkload(shape, footprint_pages=2048, seed=seed)
        requests = workload.generate(60)
        assert len(requests) == 60
        for request in requests:
            assert 0 <= request.start_lpn < 2048
            assert request.start_lpn + request.page_count <= 2048
            assert request.page_count >= 1
        arrivals = [request.arrival_us for request in requests]
        assert arrivals == sorted(arrivals)
