"""Wear dynamics: the Table 2 policy suite re-run under live DFTL GC.

Every paper experiment preconditions a statically aged device: one P/E
count for all blocks, no garbage collection during the run, no mapping
traffic.  This experiment re-validates the read-retry policy comparison
under the dynamic pressure a production device actually sees, using the
page-mapped DFTL subsystem (``mapping="page"``, :mod:`repro.ssd.dftl`):

* the cached mapping table is deliberately small, so host I/O drags
  translation-page reads/writes onto the same dies it is reading from;
* the device is sized so the write-heavy Table 2 workloads push planes
  below the GC trigger watermark — relocations, erases and batched
  translation updates compete with host traffic for die time;
* GC erases create P/E-cycle diversity, so reads see a spread of
  operating conditions instead of the single preconditioned slab.

Headline numbers are per-policy merged p99/p999 response times plus write
amplification — the tail under wear dynamics, next to the cost of the
internal traffic that produced it.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.rpt import ReadTimingParameterTable
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult
from repro.sim.registry import default_registry
from repro.sim.spec import WorkloadSpec
from repro.sim.sweep import pool_map
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator
from repro.ssd.metrics import SimulationMetrics

#: Fraction of the logical space preconditioned as cold data.  Low enough
#: to leave a working free-block pool, high enough that overwrites create
#: the invalid pages GC feeds on.
FILL_FRACTION = 0.6

#: Fraction of the logical space the workloads' footprints cover; the
#: concentration is what makes overwrites (and therefore GC) happen within
#: a bounded request budget.
FOOTPRINT_FRACTION = 0.5


def _wear_config(cmt_capacity_entries: int) -> SsdConfig:
    """A small page-mapped device that reaches GC steady state quickly.

    Four planes of 16 x 24-page blocks: big enough for realistic striping
    and per-die contention, small enough that the write-heavy Table 2
    workloads push the planes below the GC trigger watermark within a few
    hundred requests at every profile.
    """
    return SsdConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                     blocks_per_plane=16, pages_per_block=24,
                     write_buffer_pages=32, mapping="page",
                     cmt_capacity_entries=cmt_capacity_entries,
                     translation_entries_per_page=64,
                     gc_free_block_threshold=3, gc_stop_free_blocks=5)


def _run_workload(payload: dict) -> Tuple[str, Dict[str, tuple]]:
    """Run one workload against every policy (pure function of its payload)."""
    config = SsdConfig.from_dict(payload["config"])
    spec = WorkloadSpec.from_dict(payload["workload"])
    rpt = ReadTimingParameterTable.default()
    registry = default_registry()
    requests = spec.build_requests(config)
    cell: Dict[str, tuple] = {}
    for name in payload["policies"]:
        policy = registry.create(name, timing=config.timing, rpt=rpt)
        simulator = SsdSimulator(config=config, policy=policy, rpt=rpt)
        simulator.precondition(pe_cycles=payload["pe_cycles"],
                               retention_months=payload["retention_months"],
                               fill_fraction=FILL_FRACTION)
        result = simulator.run(requests)
        cell[result.policy_name] = (result,
                                    simulator.distinct_read_conditions)
    return spec.label, cell


@register_experiment(
    "wear_dynamics",
    artifact="Wear dynamics — Table 2 policies under live DFTL GC "
             "(p99/p999 + write amplification)",
    tags=("system", "wear"),
    params=(
        param("workloads", ("stg_0", "hm_0", "YCSB-A", "usr_1"),
              "Table 2 workload names (write-heavy mixes trigger GC)",
              fast=("stg_0", "YCSB-A"), smoke=("stg_0",)),
        param("num_requests", 2500, "host requests per workload",
              fast=800, smoke=300),
        param("pe_cycles", 1000, "preconditioned P/E-cycle count"),
        param("retention_months", 6.0, "cold-data retention age"),
        param("cmt_capacity_entries", 128,
              "cached-mapping-table capacity (small = more misses)"),
        param("mean_interarrival_us", 800.0,
              "mean host inter-arrival time (us)"),
        param("seed", 0, "stream seed"),
        param("processes", 1, "worker processes (one workload each)",
              cache_relevant=False),
    ))
def run(workloads: Sequence[str] = ("stg_0", "hm_0", "YCSB-A", "usr_1"),
        num_requests: int = 2500,
        pe_cycles: int = 1000,
        retention_months: float = 6.0,
        cmt_capacity_entries: int = 128,
        mean_interarrival_us: float = 800.0,
        seed: int = 0,
        processes: int = 1) -> ExperimentResult:
    """Per-policy tails and write amplification with GC and mapping traffic."""
    workloads = list(workloads)
    config = _wear_config(cmt_capacity_entries)
    policies = default_registry().names(tag="fig14")
    payloads = []
    for name in workloads:
        spec = WorkloadSpec.coerce(
            name, num_requests=num_requests, seed=seed,
            mean_interarrival_us=mean_interarrival_us,
            footprint_fraction=FOOTPRINT_FRACTION)
        payloads.append({
            "config": config.to_dict(),
            "workload": spec.to_dict(),
            "policies": tuple(policies),
            "pe_cycles": pe_cycles,
            "retention_months": retention_months,
        })
    outcomes = pool_map(_run_workload, payloads, processes)

    rows = []
    merged = {policy: SimulationMetrics() for policy in policies}
    for label, cell in outcomes:
        reference = cell.get("Baseline", cell[policies[0]])
        baseline_mean = reference[0].metrics.mean_response_time_us()
        for policy in policies:
            result, conditions_seen = cell[policy]
            metrics = result.metrics
            merged[policy].merge(metrics)
            combined = metrics.latency("all")
            normalized = (metrics.mean_response_time_us() / baseline_mean
                          if baseline_mean > 0 else 1.0)
            rows.append({
                "workload": label,
                "policy": policy,
                "normalized_response_time": round(normalized, 4),
                "mean_response_us": round(
                    metrics.mean_response_time_us(), 2),
                "p99_response_us": round(combined.p99(), 2),
                "p999_response_us": round(combined.p999(), 2),
                "write_amplification": round(
                    metrics.write_amplification(), 4),
                "mapping_cache_hit_rate": round(
                    metrics.mapping_cache_hit_rate(), 4),
                "gc_invocations": metrics.gc_invocations,
                "gc_programs": metrics.gc_programs,
                "gc_erases": metrics.gc_erases,
                "translation_reads": metrics.translation_reads,
                "translation_writes": metrics.translation_writes,
                "distinct_read_conditions": conditions_seen,
            })

    headline = {}
    for policy in policies:
        aggregate = merged[policy]
        headline[f"{policy} p99/p999 under GC (us)"] = (
            f"{aggregate.p99_response_time_us():.1f} / "
            f"{aggregate.p999_response_time_us():.1f}")
    any_policy = merged[policies[0]]
    headline["write amplification"] = (
        f"{any_policy.write_amplification():.2f}")
    headline["mapping cache hit rate"] = (
        f"{any_policy.mapping_cache_hit_rate():.1%}")
    headline["gc invocations"] = str(any_policy.gc_invocations)

    return ExperimentResult(
        name="wear_dynamics",
        title="Wear dynamics: Table 2 policies under live DFTL GC",
        rows=rows,
        headline=headline,
        notes=[
            f"{len(workloads)} workloads x {num_requests} requests on a "
            f"page-mapped device (CMT {cmt_capacity_entries} entries, GC "
            "watermarks 3/5 free blocks); translation-page reads/writes "
            "and GC relocations are real flash transactions contending "
            "with host I/O, and GC-created P/E diversity feeds the reads' "
            "operating conditions",
        ],
    )


def main() -> None:  # pragma: no cover
    result = run(workloads=("stg_0",), num_requests=400)
    print(result.to_text(max_rows=40))


if __name__ == "__main__":  # pragma: no cover
    main()
