"""Behavioural model of a 3D TLC NAND flash chip.

The chip executes the command set of :mod:`repro.nand.commands` against the
error models of :mod:`repro.errors`:

* it tracks per-block state (P/E-cycle count, programming order, retention
  age of the stored data),
* it honours SET FEATURE commands that install reduced read-timing
  parameters (the mechanism AR2 uses) and RESET commands that terminate an
  ongoing operation (the mechanism PR2 uses to cancel the speculatively
  issued retry step),
* PAGE READ / CACHE READ commands return the number of raw bit errors in the
  worst codeword of the page, sampled from the calibrated error model, plus
  the chip-level latency of the operation,
* it keeps a cache register so that CACHE READ commands can overlap the
  sensing of the next read with the data transfer of the previous one.

The chip model deliberately does not store page *contents*: every behaviour
the paper studies is a function of error counts and latencies, so storing
16 KiB of data per page would only cost memory.  (The FTL of the SSD
simulator tracks logical-to-physical mappings separately.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nand.commands import Command, CommandKind
from repro.nand.geometry import ChipGeometry, PageAddress, PageType
from repro.nand.timing import ReadTimingParameters, TimingParameters
from repro.nand.voltage import ReadRetryTable


class ChipError(Exception):
    """Raised when a command violates the chip's operating constraints."""


@dataclass
class BlockState:
    """Mutable state of one physical block."""

    pe_cycles: int = 0
    #: Index of the next page that may be programmed (NAND requires in-order
    #: programming within a block).
    next_page: int = 0
    #: Retention age (months at 30 degC) of the data stored in the block.
    retention_months: float = 0.0
    #: Whether the block currently holds valid (programmed) data.
    programmed: bool = False


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a single page-sensing operation.

    :param max_codeword_errors: raw bit errors of the worst ECC codeword in
        the page (the codeword that determines whether the read fails).
    :param correctable: whether every codeword is within the ECC capability.
    :param sensing_latency_us: chip-level ``tR`` of this read, reflecting the
        timing parameters that were active when it executed.
    :param reference_shift_mv: the V_REF shift that was applied.
    :param page_type: LSB/CSB/MSB type of the page that was read.
    """

    max_codeword_errors: int
    correctable: bool
    sensing_latency_us: float
    reference_shift_mv: float
    page_type: PageType


@dataclass(frozen=True)
class RetryReadResult:
    """Outcome of a full read including the read-retry operation."""

    retry_steps: int
    succeeded: bool
    final_errors: int
    total_sensing_latency_us: float
    results: Tuple[ReadResult, ...] = field(repr=False, default=())


class NandChip:
    """A behavioural 3D TLC NAND flash chip.

    :param geometry: physical dimensions (defaults to the simulated chip of
        Section 7.1).
    :param chip_id: identifier used to derive this chip's process variation.
    :param timing: full timing parameter set (Table 1 defaults).
    :param error_model: a :class:`repro.errors.rber.CodewordErrorModel`; the
        calibrated default is used when omitted.
    :param retry_table: manufacturer read-retry table.
    :param ecc_capability: correctable bits per codeword (72 by default).
    :param temperature_c: ambient temperature of the chip.
    :param seed: seed of the chip's process variation and error sampling.
    :param codewords_per_read: how many codewords to sample per page read.
        The default uses the geometry's real codeword count (16); the
        characterization platform lowers it to 1 for speed because it studies
        per-codeword quantities.
    """

    def __init__(self,
                 geometry: ChipGeometry = None,
                 chip_id: int = 0,
                 timing: TimingParameters = None,
                 error_model=None,
                 retry_table: ReadRetryTable = None,
                 ecc_capability: int = None,
                 temperature_c: float = 30.0,
                 seed: int = 0,
                 codewords_per_read: int = None):
        # Imported lazily to avoid a circular import with repro.errors, whose
        # modules import the voltage/geometry helpers of this package.
        from repro.errors.calibration import ECC_CALIBRATION
        from repro.errors.rber import CodewordErrorModel
        from repro.errors.variation import ProcessVariation

        self.geometry = geometry or ChipGeometry()
        self.chip_id = int(chip_id)
        self.timing = timing or TimingParameters()
        self.error_model = error_model or CodewordErrorModel()
        self.retry_table = retry_table or ReadRetryTable()
        self.ecc_capability = (ecc_capability if ecc_capability is not None
                               else ECC_CALIBRATION.capability_bits)
        self.temperature_c = float(temperature_c)
        self._variation = ProcessVariation(seed=seed)
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(self.chip_id,)))
        self._blocks: Dict[Tuple[int, int, int], BlockState] = {}
        self._active_read_timing: ReadTimingParameters = self.timing.read
        self._cache_register: Optional[PageAddress] = None
        if codewords_per_read is None:
            codewords_per_read = self.geometry.codewords_per_page
        if codewords_per_read < 1:
            raise ValueError("codewords_per_read must be at least 1")
        self.codewords_per_read = codewords_per_read

    # -- block state ----------------------------------------------------------
    def block_state(self, address: PageAddress) -> BlockState:
        """The mutable state of the block containing ``address``."""
        return self._blocks.setdefault(address.block_key(), BlockState())

    def set_block_condition(self, address: PageAddress, pe_cycles: int = None,
                            retention_months: float = None,
                            programmed: bool = None) -> None:
        """Directly install a block's operating condition.

        The characterization platform uses this to emulate P/E cycling and
        accelerated retention baking without executing millions of program
        and erase commands.
        """
        state = self.block_state(address)
        if pe_cycles is not None:
            if pe_cycles < 0:
                raise ValueError("pe_cycles must be non-negative")
            state.pe_cycles = int(pe_cycles)
        if retention_months is not None:
            if retention_months < 0:
                raise ValueError("retention_months must be non-negative")
            state.retention_months = float(retention_months)
        if programmed is not None:
            state.programmed = bool(programmed)
            if programmed:
                state.next_page = self.geometry.pages_per_block

    def age_blocks(self, additional_months: float) -> None:
        """Advance the retention age of every programmed block."""
        if additional_months < 0:
            raise ValueError("additional_months must be non-negative")
        for state in self._blocks.values():
            if state.programmed:
                state.retention_months += additional_months

    def condition_for(self, address: PageAddress):
        """The :class:`OperatingCondition` a read of ``address`` experiences."""
        from repro.errors.condition import OperatingCondition

        state = self.block_state(address)
        return OperatingCondition(pe_cycles=state.pe_cycles,
                                  retention_months=state.retention_months,
                                  temperature_c=self.temperature_c)

    # -- feature / reset -------------------------------------------------------
    @property
    def active_read_timing(self) -> ReadTimingParameters:
        """The read-phase timing parameters currently installed."""
        return self._active_read_timing

    def set_feature(self, read_timing: ReadTimingParameters = None) -> float:
        """Install new read-timing parameters; returns the command latency."""
        self._active_read_timing = read_timing or self.timing.read
        return self.timing.t_set_feature_us

    def reset(self) -> float:
        """Terminate the ongoing operation (PR2's cancellation command)."""
        self._cache_register = None
        return self.timing.t_reset_read_us

    # -- program / erase -------------------------------------------------------
    def program_page(self, address: PageAddress) -> float:
        """Program a page; returns ``tPROG``.

        Pages of a block must be programmed in order (erase-before-write,
        Section 2.2); programming resets the block's retention age.
        """
        state = self.block_state(address)
        if address.page != state.next_page:
            raise ChipError(
                f"out-of-order program: block expects page {state.next_page}, "
                f"got {address.page}")
        state.next_page += 1
        state.programmed = True
        state.retention_months = 0.0
        return self.timing.t_prog_us

    def erase_block(self, address: PageAddress) -> float:
        """Erase the block containing ``address``; returns ``tBERS``."""
        state = self.block_state(address)
        state.pe_cycles += 1
        state.next_page = 0
        state.programmed = False
        state.retention_months = 0.0
        return self.timing.t_bers_us

    # -- reads ------------------------------------------------------------------
    def read_page(self, address: PageAddress, reference_shift_mv: float = 0.0,
                  timing_reduction=None, cache: bool = False) -> ReadResult:
        """Sense one page and report the worst codeword's raw bit errors.

        :param reference_shift_mv: uniform V_REF shift of this read (0 for a
            regular read; retry steps use the retry table's shifts).
        :param timing_reduction: optional explicit
            :class:`repro.errors.timing.TimingReduction`; when omitted, the
            reduction implied by the currently installed timing parameters
            (SET FEATURE) is used.
        :param cache: whether this is a CACHE READ (the sensed page is held
            in the cache register; latency bookkeeping of the pipelining is
            done by the SSD simulator / latency model).
        """
        from repro.errors.timing import TimingReduction

        condition = self.condition_for(address)
        variation = self._variation.sample(chip=self.chip_id,
                                           block=self.geometry.flat_block_index(
                                               address.die, address.plane,
                                               address.block),
                                           wordline=address.wordline)
        if timing_reduction is None:
            timing_reduction = TimingReduction.from_parameters(
                self._active_read_timing, self.timing.read)

        worst = 0
        for _ in range(self.codewords_per_read):
            errors = self.error_model.sample_errors(
                condition, address.page_type, self._rng,
                reference_shift_mv=reference_shift_mv,
                variation=variation, timing_reduction=timing_reduction)
            worst = max(worst, errors)

        latency = self._active_read_timing.sensing_latency_us(address.page_type)
        if cache:
            self._cache_register = address
        return ReadResult(max_codeword_errors=worst,
                          correctable=worst <= self.ecc_capability,
                          sensing_latency_us=latency,
                          reference_shift_mv=reference_shift_mv,
                          page_type=address.page_type)

    def read_with_retry(self, address: PageAddress,
                        timing_reduction=None,
                        retry_timing_reduction=None,
                        max_steps: int = None) -> RetryReadResult:
        """Perform a full read: initial read plus the read-retry operation.

        The initial read always uses the default read-reference voltages; if
        it is uncorrectable, retry steps walk the read-retry table until the
        page decodes or the table is exhausted (Section 2.4).  AR2-style
        behaviour is obtained by passing a ``retry_timing_reduction`` that
        applies only to the retry steps.
        """
        results = []
        result = self.read_page(address, 0.0, timing_reduction)
        results.append(result)
        total_latency = result.sensing_latency_us
        if result.correctable:
            return RetryReadResult(retry_steps=0, succeeded=True,
                                   final_errors=result.max_codeword_errors,
                                   total_sensing_latency_us=total_latency,
                                   results=tuple(results))

        if retry_timing_reduction is None:
            retry_timing_reduction = timing_reduction
        limit = max_steps or self.retry_table.num_entries
        for step in self.retry_table.steps():
            if step > limit:
                break
            result = self.read_page(
                address, self.retry_table.shift_for_step(step),
                retry_timing_reduction)
            results.append(result)
            total_latency += result.sensing_latency_us
            if result.correctable:
                return RetryReadResult(retry_steps=step, succeeded=True,
                                       final_errors=result.max_codeword_errors,
                                       total_sensing_latency_us=total_latency,
                                       results=tuple(results))
        return RetryReadResult(retry_steps=len(results) - 1, succeeded=False,
                               final_errors=results[-1].max_codeword_errors,
                               total_sensing_latency_us=total_latency,
                               results=tuple(results))

    # -- generic command interface ----------------------------------------------
    def execute(self, command: Command):
        """Execute a command; returns ``(latency_us, result_or_None)``.

        This is the interface the SSD simulator's flash backend and the
        characterization platform use; the dedicated methods above are
        convenience wrappers around the same behaviour.
        """
        if command.kind is CommandKind.PAGE_READ:
            result = self.read_page(command.address,
                                    command.read_reference_shift_mv)
            return result.sensing_latency_us, result
        if command.kind is CommandKind.CACHE_READ:
            result = self.read_page(command.address,
                                    command.read_reference_shift_mv,
                                    cache=True)
            return result.sensing_latency_us, result
        if command.kind is CommandKind.PROGRAM:
            return self.program_page(command.address), None
        if command.kind is CommandKind.ERASE:
            return self.erase_block(command.address), None
        if command.kind is CommandKind.SET_FEATURE:
            return self.set_feature(command.read_timing), None
        if command.kind is CommandKind.RESET:
            return self.reset(), None
        if command.kind is CommandKind.READ_STATUS:
            return 0.0, self._cache_register
        raise ChipError(f"unsupported command: {command.kind}")
