"""Striping/replication request router for multi-device arrays.

The fleet layer simulates an array of N SSDs behind a RAID-0/10-style
front-end: the array's logical page space is divided into *stripe units* of
``stripe_unit_pages`` consecutive pages, and unit ``s`` lives primarily on
device ``s % devices``.  With ``replication > 1`` every unit is additionally
mirrored onto the next ``replication - 1`` devices (chained declustering):
writes fan out to every replica, reads pick one deterministically — rotating
through the replica set by stripe group, so mirrored read load spreads
across devices instead of hammering primaries.

Device-local placement gives every (stripe group, copy) pair its own slot —
copy ``c`` of stripe group ``g`` sits at local unit ``g * replication + c``
— so replicas never collide with a device's primary data; an array of N
devices with replication R therefore exposes ``N / R`` devices' worth of
logical capacity, exactly like a real mirrored array.

The router is a pure function of ``(devices, stripe_unit_pages,
replication)`` and the request stream: :meth:`StripeRouter.shard` turns any
streaming iterable of array-level :class:`~repro.ssd.request.HostRequest`
objects into the lazily filtered sub-request stream of one device, which is
what lets every device worker of a fleet run regenerate its own shard from
the workload spec instead of shipping materialized traces between processes.

Sub-requests preserve the parent's arrival time and ``queue_id`` (the
tenant tag), so per-device arrival order — and therefore the simulator's
bounded-lookahead pump contract — is preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.ssd.request import HostRequest, RequestKind


@dataclass(frozen=True)
class StripeRouter:
    """Maps array-level logical pages onto (device, device-local page)."""

    devices: int
    stripe_unit_pages: int = 8
    replication: int = 1

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be at least 1")
        if self.stripe_unit_pages < 1:
            raise ValueError("stripe_unit_pages must be at least 1")
        if not 1 <= self.replication <= self.devices:
            raise ValueError("replication must be in [1, devices]")

    # -- placement -------------------------------------------------------------
    def _locate(self, lpn: int, copy: int) -> Tuple[int, int]:
        """The (device, device-local lpn) of one copy of an array page."""
        stripe, offset = divmod(lpn, self.stripe_unit_pages)
        group, primary = divmod(stripe, self.devices)
        device = (primary + copy) % self.devices
        local = (group * self.replication + copy) * self.stripe_unit_pages
        return device, local + offset

    def placement(self, lpn: int) -> Tuple[int, int]:
        """The (primary device, device-local lpn) of an array-level page."""
        return self._locate(lpn, 0)

    def replicas(self, lpn: int) -> Tuple[Tuple[int, int], ...]:
        """Every (device, local lpn) holding a copy (primary first)."""
        return tuple(
            self._locate(lpn, copy) for copy in range(self.replication)
        )

    def read_placement(self, lpn: int) -> Tuple[int, int]:
        """The (device, local lpn) a read of ``lpn`` is routed to.

        Rotates through the replica set by stripe *group* so that mirrored
        read load spreads across the devices deterministically; with
        ``replication == 1`` this is simply the primary.
        """
        group = lpn // self.stripe_unit_pages // self.devices
        return self._locate(lpn, group % self.replication)

    # -- request splitting -----------------------------------------------------
    def split(self, request: HostRequest) -> List[Tuple[int, HostRequest]]:
        """Split one array-level request into per-device sub-requests.

        Reads go to one replica per page; writes fan out to every replica.
        Pages landing on the same device at consecutive device-local
        addresses coalesce into a single sub-request, so a sequential
        array-level request of a full stripe group becomes one contiguous
        sub-request per device rather than one per page.
        """
        runs: List[List[int]] = []  # [device, local_start, page_count]
        for lpn in range(request.start_lpn, request.start_lpn + request.page_count):
            if request.kind is RequestKind.READ:
                targets = (self.read_placement(lpn),)
            else:
                targets = self.replicas(lpn)
            for device, local in targets:
                for run in runs:
                    if run[0] == device and local == run[1] + run[2]:
                        run[2] += 1
                        break
                else:
                    runs.append([device, local, 1])
        return [
            (
                device,
                HostRequest(
                    arrival_us=request.arrival_us,
                    kind=request.kind,
                    start_lpn=local_start,
                    page_count=page_count,
                    queue_id=request.queue_id,
                ),
            )
            for device, local_start, page_count in runs
        ]

    def shard(
        self, stream: Iterable[HostRequest], device: int
    ) -> Iterator[HostRequest]:
        """Lazily filter an array-level stream down to one device's shard."""
        if not 0 <= device < self.devices:
            raise ValueError(f"device must be in [0, {self.devices})")
        for request in stream:
            for target, sub_request in self.split(request):
                if target == device:
                    yield sub_request
