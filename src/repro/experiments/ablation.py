"""Ablation studies of the design choices DESIGN.md calls out.

Not a paper figure, but the knobs the paper discusses qualitatively:

* ``rpt_adaptivity`` — how much of AR2's benefit comes from *condition-aware*
  tPRE selection versus a single flat (worst-case 40%) reduction.
* ``scheduling`` — the contribution of the baseline SSD's latency-hiding
  features (read priority and program/erase suspension), which the paper
  includes in every configuration.
* ``extensions`` — the Section 8 follow-on ideas (reduced-timing regular
  reads, speculative retry start) and the Sentinel prior work, stacked on
  top of PnAR2.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.extensions import get_extension_policy
from repro.core.policies import get_policy
from repro.core.rpt import ReadTimingParameterTable
from repro.experiments.api import param, register_experiment
from repro.experiments.common import default_experiment_config
from repro.experiments.reporting import ExperimentResult
from repro.sim.session import Simulation
from repro.ssd.metrics import normalized_response_times


def _run_cell(policies, config, workload, condition, num_requests, seed, rpt):
    pec, months = condition
    run = (Simulation(config)
           .policies(policies)
           .workload(workload, n=num_requests, seed=seed,
                     mean_interarrival_us=700.0)
           .condition(pec=pec, months=months)
           .rpt(rpt)
           .run())
    return run.results


@register_experiment(
    "ablation_rpt",
    artifact="Ablation — condition-aware RPT vs flat 40% tPRE reduction",
    tags=("ablation", "system"),
    params=(
        param("workload", "usr_1", "Table 2 workload name"),
        param("conditions", ((250, 1.0), (2000, 12.0)),
              "(PEC, months) cells", smoke=((2000, 12.0),)),
        param("num_requests", 300, "host requests per cell",
              fast=150, smoke=80),
        param("seed", 0, "stream seed"),
    ))
def rpt_adaptivity(workload: str = "usr_1",
                   conditions: Sequence[Tuple[int, float]] = ((250, 1.0),
                                                              (2000, 12.0)),
                   num_requests: int = 300,
                   seed: int = 0) -> ExperimentResult:
    """Adaptive RPT versus a flat worst-case 40% tPRE reduction."""
    config = default_experiment_config()
    adaptive_rpt = ReadTimingParameterTable.default()
    flat_rpt = ReadTimingParameterTable.conservative(pre_reduction=0.40)
    rows = []
    for condition in conditions:
        adaptive = _run_cell(("Baseline", "PnAR2"), config, workload,
                             condition, num_requests, seed, adaptive_rpt)
        flat = _run_cell(("PnAR2",), config, workload, condition,
                         num_requests, seed, flat_rpt)
        baseline_mean = adaptive["Baseline"].metrics.mean_response_time_us()
        rows.append({
            "pe_cycles": condition[0],
            "retention_months": condition[1],
            "adaptive_rpt_normalized": round(
                adaptive["PnAR2"].metrics.mean_response_time_us() / baseline_mean, 4),
            "flat_40pct_normalized": round(
                flat["PnAR2"].metrics.mean_response_time_us() / baseline_mean, 4),
        })
    benefit = [row["flat_40pct_normalized"] - row["adaptive_rpt_normalized"]
               for row in rows]
    return ExperimentResult(
        name="ablation_rpt",
        title="Ablation: condition-aware RPT vs flat 40% tPRE reduction",
        rows=rows,
        headline={"largest normalized-response-time gain of adaptivity":
                  round(max(benefit), 4)},
        notes=["under mild conditions the adaptive table picks larger "
               "reductions (up to 54%), under the worst condition both "
               "tables coincide at 40%"],
    )


@register_experiment(
    "ablation_scheduling",
    artifact="Ablation — out-of-order scheduling and P/E suspension",
    tags=("ablation", "system"),
    params=(
        param("workload", "stg_0", "Table 2 workload name"),
        param("condition", (1000, 6.0), "(PEC, months) operating point"),
        param("num_requests", 400, "host requests",
              fast=200, smoke=80),
        param("seed", 0, "stream seed"),
    ))
def scheduling(workload: str = "stg_0",
               condition: Tuple[int, float] = (1000, 6.0),
               num_requests: int = 400,
               seed: int = 0) -> ExperimentResult:
    """Contribution of read priority and program/erase suspension."""
    rpt = ReadTimingParameterTable.default()
    rows = []
    variants = {
        "read priority + suspension": dict(read_priority=True, suspension=True),
        "read priority only": dict(read_priority=True, suspension=False),
        "neither (FIFO)": dict(read_priority=False, suspension=False),
    }
    for label, flags in variants.items():
        config = default_experiment_config(**flags)
        cell = _run_cell(("Baseline",), config, workload, condition,
                         num_requests, seed, rpt)
        metrics = cell["Baseline"].metrics
        rows.append({
            "scheduler": label,
            "mean_read_response_us": round(metrics.mean_response_time_us("read"), 1),
            "p99_read_response_us": round(
                metrics.percentile_response_time_us(99.0, "read"), 1),
        })
    fifo = rows[-1]["mean_read_response_us"]
    full = rows[0]["mean_read_response_us"]
    return ExperimentResult(
        name="ablation_scheduling",
        title="Ablation: out-of-order scheduling and program/erase suspension",
        rows=rows,
        headline={"read response-time reduction of the full scheduler vs FIFO":
                  f"{1.0 - full / fifo:.1%}" if fifo else None},
    )


@register_experiment(
    "ablation_extensions",
    artifact="Ablation — Section 8 extensions and Sentinel on top of PnAR2",
    tags=("ablation", "system"),
    params=(
        param("workload", "usr_1", "Table 2 workload name"),
        param("condition", (2000, 12.0), "(PEC, months) operating point"),
        param("num_requests", 300, "host requests",
              fast=150, smoke=80),
        param("seed", 0, "stream seed"),
    ))
def extensions(workload: str = "usr_1",
               condition: Tuple[int, float] = (2000, 12.0),
               num_requests: int = 300,
               seed: int = 0) -> ExperimentResult:
    """Section 8 extensions and the Sentinel technique stacked on PnAR2."""
    config = default_experiment_config()
    rpt = ReadTimingParameterTable.default()
    policies = [
        get_policy("Baseline", config.timing, rpt),
        get_policy("PnAR2", config.timing, rpt),
        get_extension_policy("PnAR2+Speculation", config.timing, rpt),
        get_extension_policy("Sentinel", config.timing, rpt),
        get_extension_policy("Sentinel+PnAR2", config.timing, rpt),
        get_policy("NoRR", config.timing, rpt),
    ]
    cell = _run_cell(policies, config, workload, condition, num_requests,
                     seed, rpt)
    normalized = normalized_response_times(
        {name: result.metrics for name, result in cell.items()})
    rows = [{"policy": name,
             "normalized_response_time": round(value, 4),
             "mean_response_us": round(
                 cell[name].metrics.mean_response_time_us(), 1)}
            for name, value in normalized.items()]
    return ExperimentResult(
        name="ablation_extensions",
        title="Ablation: Section 8 extensions and Sentinel on top of PnAR2",
        rows=rows,
        headline={
            "PnAR2 normalized": rows[1]["normalized_response_time"],
            "best extension normalized": min(
                row["normalized_response_time"] for row in rows[2:-1]),
        },
    )


def run(which: str = "all", **kwargs) -> ExperimentResult:
    """Entry point used by tests; ``which`` selects one study."""
    which = which.lower()
    if which in ("rpt", "rpt_adaptivity"):
        return rpt_adaptivity(**kwargs)
    if which == "scheduling":
        return scheduling(**kwargs)
    if which == "extensions":
        return extensions(**kwargs)
    raise ValueError("which must be 'rpt', 'scheduling' or 'extensions'")
