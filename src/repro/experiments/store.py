"""Content-addressed artifact store for experiment results.

Results are keyed by the SHA-256 of ``(experiment name, fully resolved
parameters, schema version)`` — the complete input surface of a run, given
that every harness is a deterministic function of its parameters.  Re-running
an experiment with the same resolved parameters is therefore a cache hit,
which makes ``repro-experiment run all`` resumable (a crashed suite re-serves
the finished experiments instantly) and repeat invocations near-instant.

Artifacts live under ``~/.cache/repro`` by default; override with the
``REPRO_CACHE_DIR`` environment variable or the ``root`` argument.  Each
artifact is one pretty-printed JSON document (the
:meth:`~repro.experiments.reporting.ExperimentResult.to_json` form), so the
cache doubles as a browsable result archive::

    ~/.cache/repro/artifacts/fig14/ab12cd34....json

Loads go through :meth:`ExperimentResult.from_dict`, whose canonical
serialization guarantees a cached result exports byte-identically to the
fresh run that produced it.

The address deliberately contains **no code fingerprint** — harnesses are
assumed deterministic functions of their parameters under the current code.
After changing the simulator or an experiment, run with ``--no-cache`` or
clear the store; each artifact's manifest records the ``repro_version``
that produced it for post-hoc auditing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.experiments.reporting import (
    SCHEMA_VERSION,
    ExperimentResult,
    jsonify,
)

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def cache_key(experiment: str, params: Mapping[str, object],
              schema_version: int = SCHEMA_VERSION) -> str:
    """Content address of a run: experiment + resolved params + schema."""
    payload = json.dumps(
        {"experiment": experiment, "params": jsonify(dict(params)),
         "schema_version": schema_version},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of experiment results."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = (Path(root).expanduser() if root is not None
                     else default_cache_root()) / "artifacts"
        self.hits = 0
        self.misses = 0

    # -- addressing -----------------------------------------------------------
    def key(self, experiment: str, params: Mapping[str, object]) -> str:
        return cache_key(experiment, params)

    def path(self, experiment: str, params: Mapping[str, object]) -> Path:
        return self.root / experiment / f"{self.key(experiment, params)}.json"

    # -- access ---------------------------------------------------------------
    def load(self, experiment: str,
             params: Mapping[str, object]) -> Optional[ExperimentResult]:
        """The cached result for (experiment, params), or None on a miss.

        An unreadable or schema-incompatible artifact counts as a miss (and
        is left in place for inspection), never an error — the caller just
        recomputes.
        """
        path = self.path(experiment, params)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            result = ExperimentResult.from_json(text)
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, result: ExperimentResult) -> Path:
        """Persist ``result`` atomically.

        The manifest must carry a ``cache_key`` (the runner computes it over
        the cache-relevant parameters; ad-hoc callers can use :meth:`key`).
        Deriving a fallback address here from the full parameter dict would
        store artifacts where no load — which keys on the cache-relevant
        subset — ever looks.
        """
        if result.manifest is None or not result.manifest.cache_key:
            raise ValueError(
                "result has no manifest.cache_key; only results addressed "
                "by their cache-relevant parameters (see ArtifactStore.key) "
                "are cacheable")
        manifest = result.manifest
        path = self.root / manifest.experiment / f"{manifest.cache_key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent runs never observe a torn file.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False)
        try:
            with handle:
                handle.write(result.to_json())
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path

    # -- maintenance ----------------------------------------------------------
    def entries(self, experiment: Optional[str] = None) -> List[Path]:
        """Paths of every stored artifact, optionally for one experiment."""
        if not self.root.is_dir():
            return []
        directories = ([self.root / experiment] if experiment is not None
                       else sorted(child for child in self.root.iterdir()
                                   if child.is_dir()))
        paths: List[Path] = []
        for directory in directories:
            if directory.is_dir():
                paths.extend(sorted(directory.glob("*.json")))
        return paths

    def clear(self, experiment: Optional[str] = None) -> int:
        """Delete stored artifacts; returns the number removed."""
        removed = 0
        for path in self.entries(experiment):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stored": len(self.entries())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"
