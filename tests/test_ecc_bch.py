"""Tests for the BCH codec (GF arithmetic, encoding, decoding)."""

import numpy as np
import pytest

from repro.ecc.bch import BchCode, GaloisField


class TestGaloisField:
    def test_field_size(self):
        field = GaloisField(8)
        assert field.size == 256
        assert field.order == 255

    def test_multiplication_identity_and_zero(self):
        field = GaloisField(8)
        assert field.multiply(0, 37) == 0
        assert field.multiply(1, 37) == 37

    def test_inverse(self):
        field = GaloisField(8)
        for value in (1, 2, 77, 200, 255):
            assert field.multiply(value, field.inverse(value)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GaloisField(8).inverse(0)

    def test_division_consistent_with_multiplication(self):
        field = GaloisField(8)
        a, b = 100, 45
        assert field.multiply(field.divide(a, b), b) == a

    def test_alpha_powers_cycle(self):
        field = GaloisField(4)
        assert field.alpha_power(0) == 1
        assert field.alpha_power(field.order) == 1

    def test_power_operator(self):
        field = GaloisField(8)
        value = 3
        manual = 1
        for _ in range(5):
            manual = field.multiply(manual, value)
        assert field.power(value, 5) == manual

    def test_unsupported_field(self):
        with pytest.raises(ValueError):
            GaloisField(2)

    def test_poly_evaluate(self):
        field = GaloisField(4)
        # p(x) = 1 + x evaluated at alpha^0 = 1 gives 0 in GF(2^m).
        assert field.poly_evaluate([1, 1], 1) == 0


class TestBchCode:
    @pytest.fixture(scope="class")
    def code(self):
        return BchCode(m=8, t=8)

    def test_dimensions(self, code):
        assert code.n == 255
        assert code.k + code.n_parity == code.n
        assert code.k > 0

    def test_encode_is_systematic(self, code, rng):
        message = rng.integers(0, 2, code.k)
        codeword = code.encode(message)
        assert np.array_equal(code.extract_message(codeword), message)

    def test_clean_codeword_decodes_with_no_corrections(self, code, rng):
        message = rng.integers(0, 2, code.k)
        result = code.decode(code.encode(message))
        assert result.success
        assert result.corrected_bits == 0

    @pytest.mark.parametrize("num_errors", [1, 2, 4, 8])
    def test_corrects_up_to_t_errors(self, code, num_errors):
        rng = np.random.default_rng(100 + num_errors)
        for _ in range(5):
            message = rng.integers(0, 2, code.k)
            result = code.correct_random_errors(message, num_errors, rng)
            assert result.success
            assert result.corrected_bits == num_errors
            assert np.array_equal(code.extract_message(result.codeword), message)

    def test_does_not_miscorrect_far_beyond_t(self, code):
        rng = np.random.default_rng(7)
        miscorrections = 0
        for _ in range(10):
            message = rng.integers(0, 2, code.k)
            result = code.correct_random_errors(message, code.t + 8, rng)
            if result.success and np.array_equal(
                    code.extract_message(result.codeword), message):
                miscorrections += 1
        assert miscorrections == 0

    def test_wrong_length_inputs_rejected(self, code):
        with pytest.raises(ValueError):
            code.encode([0, 1])
        with pytest.raises(ValueError):
            code.decode([0] * (code.n - 1))
        with pytest.raises(ValueError):
            code.encode([2] * code.k)

    def test_smaller_code_configurations(self):
        code = BchCode(m=6, t=3)
        rng = np.random.default_rng(3)
        message = rng.integers(0, 2, code.k)
        result = code.correct_random_errors(message, 3, rng)
        assert result.success

    def test_capability_abstraction_matches_bch(self):
        """The capability-model engine is faithful to bounded-distance BCH."""
        code = BchCode(m=8, t=8)
        rng = np.random.default_rng(17)
        message = rng.integers(0, 2, code.k)
        within = code.correct_random_errors(message, code.t, rng)
        assert within.success
        # The capability engine would also declare <= t errors correctable.
        from repro.ecc import CapabilityEccEngine
        engine = CapabilityEccEngine(capability_bits=code.t)
        assert engine.decode(code.t).success
        assert not engine.decode(code.t + 1).success

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BchCode(m=8, t=0)

    def test_degenerate_high_rate_code_still_valid(self):
        # BCH(15, 1, t=7) degenerates to a near-repetition code but must
        # still round-trip its single message bit.
        code = BchCode(m=4, t=7)
        assert code.k >= 1
        result = code.correct_random_errors([1] * code.k, code.t,
                                            np.random.default_rng(0))
        assert result.success
