"""The paper's contribution: read-retry latency optimizations.

* :mod:`repro.core.latency` — the latency equations (1)-(5) of the paper and
  a :class:`ReadLatencyModel` that turns "this read needs N retry steps under
  policy P" into response-time and resource-occupancy numbers.
* :mod:`repro.core.rpt` — the Read-timing Parameter Table (RPT) that AR2
  queries at run time to pick a safely reduced tPRE for the current
  P/E-cycle count and retention age (Figure 13).
* :mod:`repro.core.policies` — the read-retry policies evaluated in
  Section 7: Baseline, PR2, AR2, PnAR2, the ideal NoRR, the PSO prior work,
  and PSO combined with PnAR2.
"""

from repro.core.latency import ReadLatencyBreakdown, ReadLatencyModel
from repro.core.rpt import ReadTimingParameterTable, RptEntry
from repro.core.policies import (
    AR2Policy,
    BaselinePolicy,
    NoRRPolicy,
    PR2Policy,
    PSOPolicy,
    PnAR2Policy,
    ReadRetryPolicy,
    available_policies,
    get_policy,
)

__all__ = [
    "ReadLatencyBreakdown",
    "ReadLatencyModel",
    "ReadTimingParameterTable",
    "RptEntry",
    "ReadRetryPolicy",
    "BaselinePolicy",
    "PR2Policy",
    "AR2Policy",
    "PnAR2Policy",
    "NoRRPolicy",
    "PSOPolicy",
    "available_policies",
    "get_policy",
]
