"""``python -m repro`` — registry-backed entry point.

``python -m repro`` (or ``python -m repro smoke``) runs a tiny (workload x
condition x policy) sweep through the session API and prints the tidy
result table, exercising the policy registry, the workload catalog, the SSD
simulator and the sweep runner end to end in a few seconds.

Any other first argument is forwarded to the ``repro-experiment`` CLI, so
the experiment registry is reachable without installing the console
script::

    python -m repro list --tag system
    python -m repro run all --profile smoke --jobs 2
    python -m repro show fig14 --profile fast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.sim.registry import default_registry
from repro.sim.sweep import SweepRunner
from repro.ssd.config import SsdConfig
from repro.workloads.catalog import workload_names


def smoke(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a tiny read-retry policy sweep as a smoke test.",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=["usr_1", "stg_0"],
        choices=workload_names(),
        help="Table 2 workload names",
    )
    parser.add_argument("--requests", type=int, default=150, help="host requests per cell")
    parser.add_argument("--processes", type=int, default=1, help="sweep worker processes")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.processes < 1:
        parser.error("--processes must be at least 1")
    if args.requests < 1:
        parser.error("--requests must be at least 1")

    registry = default_registry()
    policies = registry.names(tag="fig14")
    conditions = ((0, 0.0), (1000, 6.0), (2000, 12.0))
    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)

    header = (
        f"repro smoke sweep: {len(args.workloads)} workloads x "
        f"{len(conditions)} conditions x {len(policies)} policies, "
        f"{args.requests} requests per cell, {args.processes} process(es)"
    )
    print(header)
    # Elapsed-time display only; no simulation result depends on it.
    started = time.perf_counter()  # repro-lint: disable=no-wall-clock
    sweep = SweepRunner(config=config, processes=args.processes).run(
        policies=policies,
        workloads=args.workloads,
        conditions=conditions,
        num_requests=args.requests,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - started  # repro-lint: disable=no-wall-clock

    print()
    print(sweep.table())
    print()
    names = ", ".join(registry.names())
    print(f"{len(sweep.cells)} cells in {elapsed:.1f} s; registered policies: {names}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0].startswith("-"):
        return smoke(argv)
    if argv[0] == "smoke":
        return smoke(argv[1:])
    # Everything else is the experiment-registry CLI (list/run/export/show).
    from repro.experiments.runner import main as experiment_main

    return experiment_main(argv)


if __name__ == "__main__":
    sys.exit(main())
