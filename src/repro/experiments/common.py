"""Shared plumbing for the system-level experiments (Figures 14 and 15).

.. deprecated::
    The helpers in this module are thin compatibility shims over the
    session API in :mod:`repro.sim`.  New code should use
    :class:`repro.sim.Simulation` for single cells and
    :class:`repro.sim.SweepRunner` for grids; the policy suites previously
    hardcoded here (``FIGURE14_POLICIES`` / ``FIGURE15_POLICIES``) now come
    from the policy registry's figure tags.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Sequence, Tuple

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.registry import default_registry
from repro.sim.session import Simulation
from repro.sim.sweep import SweepRunner, rows_from_cells
from repro.ssd.config import SsdConfig
from repro.workloads.synthetic import WorkloadShape

#: The operating-condition grid of Figures 14/15: P/E cycles (x1000) and
#: retention ages (months).  The paper sweeps 0-3K PEC and 0/6/12 months; the
#: default here is the subset shown on the figures' x-axis labels.
DEFAULT_CONDITION_GRID: Tuple[Tuple[int, float], ...] = (
    (0, 0.0), (0, 6.0), (0, 12.0),
    (1000, 0.0), (1000, 6.0), (1000, 12.0),
    (2000, 0.0), (2000, 6.0), (2000, 12.0),
)

#: SSD configurations compared in Figure 14 (and Figure 15 adds the PSO
#: pair).  Sourced from the policy registry's tags — policies declare their
#: figure membership where they register, nothing is hardcoded here.
FIGURE14_POLICIES = default_registry().names(tag="fig14")
FIGURE15_POLICIES = default_registry().names(tag="fig15")


def _deprecated(replacement: str) -> None:
    warnings.warn(
        f"repro.experiments.common is deprecated; use {replacement} instead",
        DeprecationWarning, stacklevel=3)


def default_experiment_config(**overrides) -> SsdConfig:
    """The scaled-down SSD used by the system-level experiments."""
    defaults = dict(blocks_per_plane=24, pages_per_block=48)
    defaults.update(overrides)
    return SsdConfig.scaled(**defaults)


def run_workload_grid(policies: Sequence[str],
                      workloads: Sequence[str],
                      conditions: Sequence[Tuple[int, float]] = DEFAULT_CONDITION_GRID,
                      num_requests: int = 800,
                      config: SsdConfig = None,
                      seed: int = 0,
                      rpt: ReadTimingParameterTable = None,
                      mean_interarrival_us: float = 700.0):
    """Run every (workload, condition) cell against every policy.

    .. deprecated:: use :meth:`repro.sim.SweepRunner.run`, which also
        supports multiprocessing and stream caching.

    :return: nested dict ``results[workload][(pec, months)][policy]`` of
        :class:`SimulationResult`.
    """
    _deprecated("repro.sim.SweepRunner")
    runner = SweepRunner(config=config or default_experiment_config(),
                         rpt=rpt, mean_interarrival_us=mean_interarrival_us)
    sweep = runner.run(policies=policies, workloads=workloads,
                       conditions=conditions, num_requests=num_requests,
                       seed=seed)
    return sweep.to_grid()


def normalize_grid(results, baseline: str = "Baseline") -> Iterable[dict]:
    """Flatten a grid of results into normalized-response-time rows.

    .. deprecated:: use :attr:`repro.sim.SweepResult.rows`.
    """
    from repro.sim.spec import Condition, WorkloadSpec

    _deprecated("repro.sim.SweepResult.rows")
    for workload, by_condition in results.items():
        spec = WorkloadSpec(name=workload)
        conditions = [Condition.coerce(key) for key in by_condition]
        cells = {(workload,) + condition.as_tuple(): by_condition[key]
                 for key, condition in zip(by_condition, conditions)}
        for row in rows_from_cells([spec], conditions, cells,
                                   baseline=baseline):
            yield row


def compare_policies(policies: Sequence[str] = FIGURE14_POLICIES,
                     num_requests: int = 500,
                     read_ratio: float = 0.9,
                     pe_cycles: int = 1000,
                     retention_months: float = 6.0,
                     seed: int = 0,
                     config: SsdConfig = None) -> Dict[str, float]:
    """Small end-to-end comparison used by ``repro.quick_ssd_comparison``.

    .. deprecated:: use the :class:`repro.sim.Simulation` builder.

    :return: mapping from policy name to mean response time in microseconds.
    """
    _deprecated("repro.sim.Simulation")
    shape = WorkloadShape(read_ratio=read_ratio, cold_ratio=0.7,
                          mean_interarrival_us=300.0)
    run = (Simulation(config or default_experiment_config())
           .policies(policies)
           .synthetic(shape, n=num_requests, seed=seed)
           .condition(pec=pe_cycles, months=retention_months)
           .run())
    return {name: result.mean_response_time_us for name, result in run}
