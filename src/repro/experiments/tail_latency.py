"""Tail latency: per-policy p99/p999 response times across Table 2 workloads.

The paper evaluates the read-retry policies by *mean* response time
(Figures 14/15), but the mechanisms' production value is in the latency
tail: a read that needs a dozen retry steps sits an order of magnitude
above the median, and it is exactly those reads that PR2/AR2/PnAR2
shorten.  This experiment sweeps the Table 2 workloads over aged operating
conditions and reports p50/p99/p999 per policy — straight from the
fixed-memory histogram recorder, so the request counts can be scaled far
beyond what the list-based metrics allowed.

Per-policy headline numbers aggregate every (workload, condition) cell
through :meth:`repro.ssd.metrics.SimulationMetrics.merge`, the same
fixed-memory merge sweep-level reporting uses.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.api import param, register_experiment
from repro.experiments.common import default_experiment_config
from repro.experiments.reporting import ExperimentResult
from repro.sim.registry import default_registry
from repro.sim.sweep import SweepRunner
from repro.ssd.metrics import SimulationMetrics
from repro.workloads.catalog import workload_names

#: Aged conditions where read retry dominates the tail (fresh cells tie
#: every policy, so they add rows without information).
DEFAULT_TAIL_CONDITIONS: Tuple[Tuple[int, float], ...] = (
    (1000, 6.0), (2000, 12.0),
)


@register_experiment(
    "tail_latency",
    artifact="Tail latency — per-policy p99/p999 across the Table 2 workloads",
    tags=("system", "tail"),
    params=(
        param("workloads", None, "Table 2 workload names (None = all 12)",
              fast=("usr_1", "YCSB-C", "stg_0"), smoke=("usr_1",)),
        param("conditions", None,
              "(PEC, months) grid (None = the aged default)",
              fast=((1000, 6.0),), smoke=((1000, 6.0),)),
        param("num_requests", 1000, "host requests per cell",
              fast=300, smoke=100),
        param("seed", 0, "stream seed"),
        param("processes", 1, "sweep worker processes for the inner grid",
              cache_relevant=False),
    ))
def run(workloads: Sequence[str] = None,
        conditions: Sequence[Tuple[int, float]] = None,
        num_requests: int = 1000,
        seed: int = 0,
        config=None,
        processes: int = 1) -> ExperimentResult:
    """Report per-policy tail latencies over (workload, condition) cells."""
    workloads = list(workloads or workload_names())
    conditions = tuple(conditions or DEFAULT_TAIL_CONDITIONS)
    config = config or default_experiment_config()
    policies = default_registry().names(tag="fig14")
    runner = SweepRunner(config=config, processes=processes)
    sweep = runner.run(policies=policies, workloads=workloads,
                       conditions=conditions, num_requests=num_requests,
                       seed=seed)

    rows = []
    merged = {policy: SimulationMetrics() for policy in policies}
    for spec in sweep.workloads:
        for condition in sweep.conditions:
            cell = sweep.cell(spec.label, condition.pe_cycles,
                              condition.retention_months)
            for policy in policies:
                metrics = cell[policy].metrics
                merged[policy].merge(metrics)
                combined = metrics.latency("all")
                reads = metrics.latency("read")
                rows.append({
                    "workload": spec.label,
                    "pe_cycles": condition.pe_cycles,
                    "retention_months": condition.retention_months,
                    "policy": policy,
                    "mean_response_us": round(
                        metrics.mean_response_time_us(), 2),
                    "p50_response_us": round(combined.percentile(50.0), 2),
                    "p99_response_us": round(combined.p99(), 2),
                    "p999_response_us": round(combined.p999(), 2),
                    "p99_read_response_us": round(reads.p99(), 2),
                    "p999_read_response_us": round(reads.p999(), 2),
                })

    def tail_reduction(policy: str, percentile: float) -> float:
        baseline = merged["Baseline"].percentile_response_time_us(percentile)
        if baseline <= 0:
            return 0.0
        value = merged[policy].percentile_response_time_us(percentile)
        return 1.0 - value / baseline

    headline = {}
    for policy in policies:
        headline[f"{policy} merged p99/p999 (us)"] = (
            f"{merged[policy].p99_response_time_us():.1f} / "
            f"{merged[policy].p999_response_time_us():.1f}")
    for policy in ("PR2", "AR2", "PnAR2"):
        if policy in merged:
            headline[f"{policy} p99 reduction vs Baseline"] = (
                f"{tail_reduction(policy, 99.0):.1%}")
            headline[f"{policy} p999 reduction vs Baseline"] = (
                f"{tail_reduction(policy, 99.9):.1%}")

    return ExperimentResult(
        name="tail_latency",
        title="Tail latency: per-policy p99/p999 across Table 2 workloads",
        rows=rows,
        headline=headline,
        notes=[f"{len(workloads)} workloads x {len(conditions)} aged "
               f"conditions x {num_requests} requests per cell; percentiles "
               "are log-bucketed histogram estimates (relative error "
               "bounded by the ~1.6% bucket width), merged across cells "
               "with the recorder's fixed-memory merge()"],
    )


def main() -> None:  # pragma: no cover
    result = run(workloads=("usr_1", "YCSB-C", "stg_0"),
                 conditions=((1000, 6.0),), num_requests=400)
    print(result.to_text(max_rows=60))


if __name__ == "__main__":  # pragma: no cover
    main()
