"""Fleet-scale simulation: arrays of SSDs behind a striping front-end.

The paper evaluates read-retry policies one device at a time; a production
deployment serves millions of users from *arrays* of devices behind a
striping/replication front-end, and the operative question changes from
"what is the mean response time of this trace?" to "what arrival rate can
the array sustain under a p99 SLO?".  This module answers both:

* :class:`FleetSpec` — the array: device count, stripe unit, replication
  factor, the per-device :class:`~repro.ssd.config.SsdConfig` and operating
  :class:`~repro.sim.spec.Condition` (optionally per device, for
  heterogeneously aged fleets);
* :class:`FleetRunner` — shards any array-level workload (a
  :class:`~repro.sim.spec.WorkloadSpec`, a multi-tenant
  :class:`~repro.workloads.tenants.TenantMix`, or an explicit request list)
  across per-device :class:`~repro.ssd.controller.SsdSimulator` instances
  via the striping router.  Every device worker regenerates its own shard
  from the spec, so nothing is materialized in the parent and
  ``processes=N`` is bitwise-identical to serial;
* :class:`FleetResult` — array-level metrics from
  :meth:`~repro.ssd.metrics.LatencyHistogram.merge`: overall and per-tenant
  p50/p99/p999, per-device utilization skew;
* :class:`SloCapacitySearch` — bisects the arrival rate (geometrically,
  with automatic bracketing) to find the maximum load whose array p99 stays
  within a target, the fleet-sizing primitive behind
  ``Simulation.fleet(n).slo(p99_us=...)`` and the ``fleet_capacity``
  experiment.

Rack-scale mechanics (the three levers that keep 10k-device fleets
tractable):

* **Shared-memory slab transport** — the parent prefills the fleet's
  retry-step slabs once and publishes them through
  :mod:`repro.ssd.slab_transport`; worker payloads carry a tiny descriptor
  instead of per-payload pickled arrays, with a transparent fallback to the
  inline pickle path when shared memory is unavailable.
* **Sharded streaming execution** — devices are dispatched in bounded
  shards (``shard_devices``, default :data:`DEFAULT_SHARD_DEVICES`) and each
  device's metrics are folded into the running :class:`FleetResult` as they
  land, so peak memory follows the shard size, not the fleet size.
  Per-shard wall-clock timings are recorded for later multi-host placement.
* **Checkpoint/resume** — with a ``checkpoint`` store attached, every
  completed shard's per-device metric states (and every capacity-search
  probe) are persisted to the
  :class:`~repro.experiments.store.CheckpointStore`, keyed by (schema
  version, fleet spec, source, policy, shard index).  A killed run resumes
  mid-fleet — checkpointed shards are folded back in the original device
  order, which makes the resumed result *bitwise-identical* to an
  uninterrupted run (the fold is Neumaier-compensated and therefore not
  associative, so shards are never pre-merged).
"""

from __future__ import annotations

import hashlib
import logging
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.rpt import ReadTimingParameterTable
from repro.experiments.store import CheckpointStore
from repro.sim.registry import default_registry
from repro.sim.spec import Condition, WorkloadSpec
from repro.sim.sweep import DEFAULT_MEAN_INTERARRIVAL_US, WorkerPool, _default_rpt
from repro.ssd.config import SsdConfig
from repro.ssd.controller import DEFAULT_LOOKAHEAD_REQUESTS, SimulationResult, SsdSimulator
from repro.ssd.faults import FaultPlan
from repro.ssd.metrics import SimulationMetrics
from repro.ssd.request import HostRequest
from repro.ssd.retry_grid import rpt_fingerprint, shared_grid
from repro.ssd.slab_transport import payload_slabs, publish_slabs
from repro.workloads.router import StripeRouter
from repro.workloads.source import is_workload_source, source_from_dict, source_to_dict
from repro.workloads.tenants import TenantMix

logger = logging.getLogger("repro.sim.fleet")

#: Any array-level request source the fleet can shard.
FleetSource = Union[str, WorkloadSpec, TenantMix, Sequence[HostRequest], dict]

#: Devices dispatched (and checkpointed) per shard unless overridden.
DEFAULT_SHARD_DEVICES = 64

#: Version of the checkpoint payload layout; part of every checkpoint key,
#: so changing the serialized form orphans old entries instead of
#: misreading them.
FLEET_CHECKPOINT_SCHEMA = 1

#: Checkpoint namespaces (directories under ``<cache root>/checkpoints/``).
FLEET_SHARD_KIND = "fleet_shard"
PROBE_TRAIL_KIND = "slo_probes"


@dataclass(frozen=True)
class FleetSpec:
    """An array of identical SSDs behind a striping/replication front-end."""

    devices: int = 4
    stripe_unit_pages: int = 8
    replication: int = 1
    #: Per-device configuration (all devices share one geometry).
    config: SsdConfig = field(default_factory=SsdConfig.scaled)
    #: Operating condition shared by every device ...
    condition: Condition = field(default_factory=Condition)
    #: ... unless a per-device tuple is given (heterogeneously aged fleet).
    device_conditions: Optional[Tuple[Condition, ...]] = None

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("devices must be at least 1")
        if not 1 <= self.replication <= self.devices:
            raise ValueError("replication must be in [1, devices]")
        if self.device_conditions is not None:
            coerced = tuple(Condition.coerce(condition) for condition in self.device_conditions)
            if len(coerced) != self.devices:
                raise ValueError(f"{len(coerced)} device_conditions for {self.devices} devices")
            object.__setattr__(self, "device_conditions", coerced)

    def router(self) -> StripeRouter:
        return StripeRouter(
            devices=self.devices,
            stripe_unit_pages=self.stripe_unit_pages,
            replication=self.replication,
        )

    @property
    def array_logical_pages(self) -> int:
        """Host-visible pages of the whole array (mirrors cost capacity)."""
        return self.devices * self.config.logical_pages // self.replication

    def device_condition(self, device: int) -> Condition:
        if self.device_conditions is not None:
            return self.device_conditions[device]
        return self.condition

    # -- manifest round-trip ---------------------------------------------------
    def to_dict(self) -> dict:
        payload = {
            "devices": self.devices,
            "stripe_unit_pages": self.stripe_unit_pages,
            "replication": self.replication,
            "config": self.config.to_dict(),
            "condition": self.condition.to_dict(),
        }
        if self.device_conditions is not None:
            payload["device_conditions"] = [
                condition.to_dict() for condition in self.device_conditions
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetSpec":
        payload = dict(payload)
        payload["config"] = SsdConfig.from_dict(payload["config"])
        payload["condition"] = Condition.from_dict(payload["condition"])
        if payload.get("device_conditions") is not None:
            payload["device_conditions"] = tuple(
                Condition.from_dict(condition) for condition in payload["device_conditions"]
            )
        return cls(**payload)


def _source_payload(source: FleetSource, num_requests: Optional[int], seed: Optional[int]) -> dict:
    """Normalize an array-level request source into a picklable payload."""
    if isinstance(source, TenantMix):
        return {"tenant_mix": source.to_dict()}
    if isinstance(source, dict) and "tenants" in source:
        return {"tenant_mix": TenantMix.from_dict(source).to_dict()}
    if isinstance(source, dict) and "kind" in source:
        # Normalize through the registry so malformed payloads fail here,
        # in the parent, not inside a pool worker.
        return {"source": source_to_dict(source_from_dict(source))}
    if isinstance(source, (str, WorkloadSpec, dict)):
        spec = WorkloadSpec.coerce(source, num_requests=num_requests, seed=seed)
        return {"workload": spec.to_dict()}
    if is_workload_source(source):
        return {"source": source_to_dict(source)}
    if isinstance(source, Sequence):
        return {"requests": list(source)}
    raise TypeError(
        f"cannot shard {source!r}; pass a workload name/spec, a TenantMix, "
        "a WorkloadSource, or a sequence of HostRequest objects"
    )


def _source_stream(payload: dict, spec: FleetSpec) -> Iterable[HostRequest]:
    """Rebuild the array-level stream a payload describes (in a worker)."""
    pages = spec.array_logical_pages
    if "workload" in payload:
        workload = WorkloadSpec.from_dict(payload["workload"])
        return workload.iter_requests(spec.config, footprint_pages=pages)
    if "source" in payload:
        source = source_from_dict(payload["source"])
        return source.iter_requests(spec.config, footprint_pages=pages)
    mix = TenantMix.from_dict(payload["tenant_mix"])
    return mix.iter_requests(spec.config, footprint_pages=pages)


def _source_label(payload: dict) -> str:
    if "workload" in payload:
        return WorkloadSpec.from_dict(payload["workload"]).label
    if "source" in payload:
        return source_from_dict(payload["source"]).label
    if "tenant_mix" in payload:
        return TenantMix.from_dict(payload["tenant_mix"]).label
    return f"explicit-{len(payload['requests'])}"


def _payload_tracks_tenants(payload: dict) -> bool:
    if "tenant_mix" in payload:
        return True
    if "source" in payload:
        source = source_from_dict(payload["source"])
        return bool(getattr(source, "tracks_tenants", False))
    return False


def _requests_digest(requests: Sequence[HostRequest]) -> str:
    """Stable digest of an explicit request list (checkpoint identity).

    Hashes the requests' logical identity, not their ``repr`` — request ids
    come from a process-local counter and would defeat resume.
    """
    digest = hashlib.sha256()
    for request in requests:
        digest.update(
            f"{request.arrival_us}:{request.kind.name}:{request.start_lpn}:"
            f"{request.page_count}:{request.queue_id}\n".encode("utf-8")
        )
    return digest.hexdigest()


def _run_fleet_device(payload: dict) -> Tuple[str, int, SimulationResult]:
    """Simulate one device's shard — pure function of its payload.

    The serial and parallel paths both execute exactly this function, which
    is what makes ``processes=N`` bitwise-identical to a serial run.
    """
    spec = FleetSpec.from_dict(payload["fleet"])
    device = payload["device"]
    policy_name = payload["policy"]
    rpt = payload.get("rpt") or _default_rpt()
    config = spec.config
    slabs = payload_slabs(payload)
    if slabs:
        # Install the parent-built retry-step slabs into this process's
        # shared grid instead of recomputing them per worker (a fork-start
        # worker usually inherited them already; install_slabs then no-ops).
        shared_grid(config, rpt).install_slabs(slabs)
    policy = default_registry().create(policy_name, timing=config.timing, rpt=rpt)
    simulator = SsdSimulator(
        config=config,
        policy=policy,
        rpt=rpt,
        device_id=device,
        track_tenants=_payload_tracks_tenants(payload),
    )
    condition = spec.device_condition(device)
    simulator.precondition(
        pe_cycles=condition.pe_cycles,
        retention_months=condition.retention_months,
        fill_fraction=condition.fill_fraction,
    )
    if payload.get("faults"):
        simulator.install_faults(FaultPlan.from_dict(payload["faults"]))
    if "device_requests" in payload:
        # Explicit lists were sorted and sharded once in the parent; the
        # payload already holds this device's own sub-requests.
        shard: Iterable[HostRequest] = payload["device_requests"]
    else:
        shard = spec.router().shard(_source_stream(payload, spec), device)
    result = simulator.run(shard, lookahead=payload.get("lookahead") or DEFAULT_LOOKAHEAD_REQUESTS)
    return policy_name, device, result


@dataclass(frozen=True)
class FleetShardTiming:
    """Wall-clock accounting of one dispatched shard.

    Recorded for later multi-host placement planning; deliberately kept out
    of checkpoints and result comparisons (timings are the one
    non-deterministic output of a run).
    """

    index: int
    policy: str
    devices: int
    elapsed_s: float
    from_checkpoint: bool

    def to_dict(self) -> dict:
        return {
            "shard": self.index,
            "policy": self.policy,
            "devices": self.devices,
            "elapsed_s": round(self.elapsed_s, 6),
            "from_checkpoint": self.from_checkpoint,
        }


class FleetResult:
    """Array-level outcome of one policy's fleet run.

    A *streaming* collector: the runner folds each device's finished
    metrics in as it lands (:meth:`absorb_device`), so the result holds one
    merged :class:`~repro.ssd.metrics.SimulationMetrics` plus a tidy report
    row per device — never the per-device result objects — and a 10k-device
    run costs shard-sized, not fleet-sized, memory.  Constructing with
    ``device_results`` folds them immediately (the pre-streaming API).
    """

    def __init__(
        self,
        spec: FleetSpec,
        policy: str,
        device_results: Optional[Iterable[SimulationResult]] = None,
        workload_label: str = "",
        tenant_names: Optional[Tuple[str, ...]] = None,
    ):
        self.spec = spec
        self.policy = policy
        self.workload_label = workload_label
        self.tenant_names = tenant_names
        #: Every absorbed device's metrics folded into one collector.
        self.merged = SimulationMetrics()
        #: Per-shard wall-clock timings, appended by the runner.
        self.shard_timings: List[FleetShardTiming] = []
        self.device_count = 0
        self._rows: List[dict] = []
        self._utilizations: List[float] = []
        for result in device_results or ():
            self.absorb_device(result.device_id, result.metrics)

    # -- streaming aggregation -------------------------------------------------
    def absorb_device(self, device: int, metrics: SimulationMetrics) -> None:
        """Fold one device's finished metrics into the running aggregate.

        Devices must be absorbed in a deterministic order (the runner uses
        ascending device id per policy): the latency fold is
        Neumaier-compensated and therefore order-sensitive at the last bit.
        """
        combined = metrics.latency("all")
        utilization = metrics.die_utilization()
        self._rows.append(
            {
                "policy": self.policy,
                "device": device,
                "host_reads": metrics.host_reads,
                "host_writes": metrics.host_writes,
                "mean_response_us": round(metrics.mean_response_time_us(), 2),
                "p99_response_us": round(combined.p99(), 2),
                "p999_response_us": round(combined.p999(), 2),
                "die_utilization": round(utilization, 3),
            }
        )
        self._utilizations.append(utilization)
        self.merged.merge(metrics)
        self.device_count += 1

    def percentile(self, percentile: float, kind: str = "all") -> float:
        return self.merged.percentile_response_time_us(percentile, kind)

    def p99(self, kind: str = "all") -> float:
        return self.percentile(99.0, kind)

    def p999(self, kind: str = "all") -> float:
        return self.percentile(99.9, kind)

    def mean_response_us(self, kind: str = "all") -> float:
        return self.merged.mean_response_time_us(kind)

    # -- tenants ---------------------------------------------------------------
    def tenant_tails(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant p50/p99/p999 merged across every device."""
        tails = {}
        for tenant, histogram in sorted(self.merged.tenant_latency.items()):
            name = (
                self.tenant_names[tenant]
                if self.tenant_names and tenant < len(self.tenant_names)
                else str(tenant)
            )
            tails[name] = {
                "count": histogram.count,
                "p50_us": round(histogram.percentile(50.0), 2),
                "p99_us": round(histogram.p99(), 2),
                "p999_us": round(histogram.p999(), 2),
            }
        return tails

    # -- device balance --------------------------------------------------------
    def device_utilizations(self) -> List[float]:
        return list(self._utilizations)

    def utilization_skew(self) -> float:
        """max/mean device utilization — 1.0 is a perfectly balanced array."""
        utilizations = self._utilizations
        if not utilizations:
            return 1.0
        mean = sum(utilizations) / len(utilizations)
        if mean <= 0:
            return 1.0
        return max(utilizations) / mean

    # -- reporting -------------------------------------------------------------
    def device_rows(self) -> List[dict]:
        """One tidy row per device (the fleet report's long format)."""
        return [dict(row) for row in self._rows]

    def shard_rows(self) -> List[dict]:
        """Per-shard wall-clock rows (placement planning; not reproducible)."""
        return [timing.to_dict() for timing in self.shard_timings]

    def summary(self) -> dict:
        combined = self.merged.latency("all")
        summary = {
            "policy": self.policy,
            "devices": self.spec.devices,
            "replication": self.spec.replication,
            "workload": self.workload_label,
            "requests": self.merged.host_reads + self.merged.host_writes,
            "mean_response_us": round(self.mean_response_us(), 2),
            "p50_response_us": round(combined.percentile(50.0), 2),
            "p99_response_us": round(combined.p99(), 2),
            "p999_response_us": round(combined.p999(), 2),
            "utilization_skew": round(self.utilization_skew(), 3),
        }
        tails = self.tenant_tails()
        if len(tails) > 1:
            summary["tenants"] = tails
        return summary


@dataclass
class FleetRunResult:
    """Per-policy :class:`FleetResult` objects of one fleet run."""

    spec: FleetSpec
    results: Dict[str, FleetResult]
    manifest: dict = field(default_factory=dict)

    @property
    def policies(self) -> List[str]:
        return list(self.results)

    def __getitem__(self, policy: str) -> FleetResult:
        return self.results[policy]

    def __iter__(self):
        return iter(self.results.items())

    @property
    def result(self) -> FleetResult:
        if len(self.results) != 1:
            raise ValueError(f"run holds {len(self.results)} policies; index by name")
        return next(iter(self.results.values()))

    def rows(self) -> List[dict]:
        return [row for result in self.results.values() for row in result.device_rows()]

    def shard_rows(self) -> List[dict]:
        return [row for result in self.results.values() for row in result.shard_rows()]


class FleetRunner:
    """Executes an array-level workload across a fleet of simulated SSDs.

    :param processes: worker-process count; 1 (default) runs in-process.
    :param shard_devices: devices dispatched (and checkpointed) per shard;
        ``None`` means :data:`DEFAULT_SHARD_DEVICES`.
    :param checkpoint: a :class:`~repro.experiments.store.CheckpointStore`,
        a cache-root path for one, or ``None`` (no checkpointing).
    :param use_shared_memory: publish parent-built retry-grid slabs through
        shared memory (falls back to inline pickling when unavailable).
    """

    def __init__(
        self,
        spec: Optional[FleetSpec] = None,
        processes: int = 1,
        rpt: Optional[ReadTimingParameterTable] = None,
        shard_devices: Optional[int] = None,
        checkpoint: Union[CheckpointStore, str, None] = None,
        use_shared_memory: bool = True,
    ):
        if processes < 1:
            raise ValueError("processes must be at least 1")
        if shard_devices is not None and shard_devices < 1:
            raise ValueError("shard_devices must be at least 1")
        self.spec = spec or FleetSpec()
        self.processes = processes
        self.rpt = rpt
        self.shard_devices = DEFAULT_SHARD_DEVICES if shard_devices is None else int(shard_devices)
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CheckpointStore(checkpoint)
        self.use_shared_memory = use_shared_memory
        self._registry = default_registry()

    # -- dispatch helpers ------------------------------------------------------
    def _shard_ranges(self) -> List[range]:
        return [
            range(start, min(start + self.shard_devices, self.spec.devices))
            for start in range(0, self.spec.devices, self.shard_devices)
        ]

    def _slab_transport(self):
        """Prefill the fleet's retry-step slabs once and pick a transport.

        Returns ``(segment, inline_slabs)``: a published
        :class:`~repro.ssd.slab_transport.SlabSegment` (inline ``None``)
        when shared memory works, else ``(None, exports)`` for the pickle
        path.  Every device reads cold data at its condition and rewritten
        data at (P/E, 0), so both pairs are prefilled per distinct
        condition, in device order (deterministic slab layout).
        """
        rpt = self.rpt or _default_rpt()
        grid = shared_grid(self.spec.config, rpt)
        pairs: List[Tuple[int, float]] = []
        seen = set()
        for device in range(self.spec.devices):
            condition = self.spec.device_condition(device)
            for pair in (
                (condition.pe_cycles, float(condition.retention_months)),
                (condition.pe_cycles, 0.0),
            ):
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        exports = []
        for pair in pairs:
            # Export each slab immediately after its prefill: a fleet with
            # more conditions than the grid's slab bound would otherwise
            # evict early slabs before a batch export reads them.
            grid.prefill([pair])
            exports.extend(grid.export_slabs([pair]))
        if self.use_shared_memory:
            segment = publish_slabs(exports)
            if segment is not None:
                return segment, None
        return None, exports

    # -- execution -------------------------------------------------------------
    def run(
        self,
        source: FleetSource,
        policies: Union[str, Iterable[str]] = "Baseline",
        num_requests: Optional[int] = None,
        seed: Optional[int] = None,
        lookahead: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
    ) -> FleetRunResult:
        """Shard ``source`` across the fleet for every policy.

        Devices go through the worker pool in bounded shards; each worker
        regenerates the array-level stream from its spec/mix payload and
        filters it down to its own device, so the parent never materializes
        a declarative trace and worker results are pure functions of their
        payloads (serial == parallel, bitwise).  Explicit request lists —
        already materialized by definition — are sorted and sharded once in
        the parent, so each worker receives only its own device's
        sub-requests.  With a checkpoint store attached, finished shards
        are persisted and later runs fold them back in instead of
        re-simulating.
        """
        if isinstance(policies, str):
            policies = (policies,)
        policy_names = tuple(self._registry.canonical_name(name) for name in policies)
        if not policy_names:
            raise ValueError("no policies given")
        source_payload = _source_payload(source, num_requests, seed)
        label = _source_label(source_payload)
        fault_plan = FaultPlan.coerce(faults) if faults is not None else None
        if "requests" in source_payload:
            # Keep the single-device contract ("pre-materialized sequences
            # are sorted up front"), then split per device so payloads
            # carry 1/N of the trace instead of devices x policies copies.
            router = self.spec.router()
            ordered = sorted(source_payload.pop("requests"), key=lambda request: request.arrival_us)
            shards = {
                device: list(router.shard(ordered, device)) for device in range(self.spec.devices)
            }
        else:
            ordered = None
            shards = None
        fleet_dict = self.spec.to_dict()
        manifest_source = {key: value for key, value in source_payload.items() if key != "requests"}
        tenant_names = None
        if "tenant_mix" in source_payload:
            tenant_names = TenantMix.from_dict(source_payload["tenant_mix"]).tenant_names()
        results = {
            name: FleetResult(
                spec=self.spec, policy=name, workload_label=label, tenant_names=tenant_names
            )
            for name in policy_names
        }
        base_params = None
        if self.checkpoint is not None:
            base_params = {
                "schema": FLEET_CHECKPOINT_SCHEMA,
                "fleet": fleet_dict,
                "source": manifest_source,
                "lookahead": lookahead,
                "faults": fault_plan.to_dict() if fault_plan else None,
                "rpt": rpt_fingerprint(self.rpt) if self.rpt is not None else None,
            }
            if ordered is not None:
                base_params["requests_digest"] = _requests_digest(ordered)
        checkpoint_hits = 0
        checkpoint_stored = 0
        segment, inline_slabs = self._slab_transport()
        if segment is not None:
            transport = {"grid_segment": segment.descriptor}
        elif inline_slabs:
            transport = {"grid_slabs": inline_slabs}
        else:
            transport = {}
        shard_ranges = self._shard_ranges()
        try:
            with WorkerPool(self.processes) as pool:
                for policy in policy_names:
                    collector = results[policy]
                    for shard_index, device_range in enumerate(shard_ranges):
                        params = None
                        restored = None
                        if base_params is not None:
                            params = dict(
                                base_params,
                                policy=policy,
                                shard=shard_index,
                                devices=[device_range.start, device_range.stop],
                            )
                            restored = self.checkpoint.load(FLEET_SHARD_KIND, params)
                        started = time.perf_counter()  # repro-lint: disable=no-wall-clock
                        if restored is not None:
                            for device, state in zip(restored["devices"], restored["metrics"]):
                                collector.absorb_device(
                                    int(device), SimulationMetrics.from_state(state)
                                )
                            checkpoint_hits += 1
                            logger.info(
                                "fleet shard %d (policy %s, devices %d..%d) "
                                "served from checkpoint",
                                shard_index,
                                policy,
                                device_range.start,
                                device_range.stop - 1,
                            )
                        else:
                            payloads = [
                                dict(
                                    source_payload,
                                    fleet=fleet_dict,
                                    device=device,
                                    policy=policy,
                                    rpt=self.rpt,
                                    lookahead=lookahead,
                                    **({"faults": fault_plan.to_dict()} if fault_plan else {}),
                                    **(
                                        {"device_requests": shards[device]}
                                        if shards is not None
                                        else {}
                                    ),
                                    **transport,
                                )
                                for device in device_range
                            ]
                            devices: List[int] = []
                            states: List[dict] = []
                            for _, device, result in pool.map(_run_fleet_device, payloads):
                                if params is not None:
                                    devices.append(device)
                                    states.append(result.metrics.to_state())
                                collector.absorb_device(device, result.metrics)
                            if params is not None:
                                self.checkpoint.save(
                                    FLEET_SHARD_KIND,
                                    params,
                                    {"devices": devices, "metrics": states},
                                )
                                checkpoint_stored += 1
                        elapsed = time.perf_counter() - started  # repro-lint: disable=no-wall-clock
                        collector.shard_timings.append(
                            FleetShardTiming(
                                index=shard_index,
                                policy=policy,
                                devices=len(device_range),
                                elapsed_s=elapsed,
                                from_checkpoint=restored is not None,
                            )
                        )
        finally:
            if segment is not None:
                segment.close()
        manifest = {
            "fleet": fleet_dict,
            "source": manifest_source,
            "policies": list(policy_names),
            "shard_devices": self.shard_devices,
            "slab_transport": "shared_memory" if segment is not None else "inline",
        }
        if fault_plan:
            manifest["faults"] = fault_plan.to_dict()
        if self.checkpoint is not None:
            manifest["checkpoints"] = {"hits": checkpoint_hits, "stored": checkpoint_stored}
        return FleetRunResult(spec=self.spec, results=results, manifest=manifest)


# -- SLO capacity search -------------------------------------------------------
def _current_rate_rps(source: Union[WorkloadSpec, TenantMix]) -> float:
    if isinstance(source, TenantMix):
        return source.total_arrival_rate_rps(DEFAULT_MEAN_INTERARRIVAL_US)
    interarrival = source.mean_interarrival_us or DEFAULT_MEAN_INTERARRIVAL_US
    return 1e6 / interarrival


def _with_rate(
    source: Union[WorkloadSpec, TenantMix], rate_rps: float
) -> Union[WorkloadSpec, TenantMix]:
    if isinstance(source, TenantMix):
        return source.with_arrival_rate(rate_rps, DEFAULT_MEAN_INTERARRIVAL_US)
    return WorkloadSpec.coerce(source, mean_interarrival_us=1e6 / rate_rps)


@dataclass
class CapacityProbe:
    """One measured point of the capacity search."""

    rate_rps: float
    mean_interarrival_us: float
    p99_us: float
    meets_slo: bool


@dataclass
class CapacityResult:
    """Outcome of one SLO capacity search."""

    policy: str
    target_p99_us: float
    tolerance: float
    converged: bool
    #: Highest measured rate meeting the SLO (None if even the lowest
    #: probed rate violated it).
    max_rate_rps: Optional[float]
    #: Lowest measured rate violating the SLO (None if the search never
    #: saw a violation — the device is not the bottleneck at these rates).
    min_violating_rate_rps: Optional[float]
    probes: List[CapacityProbe]
    #: The fleet result measured at ``max_rate_rps``.
    fleet: Optional[FleetResult] = None

    @property
    def max_sustainable_interarrival_us(self) -> Optional[float]:
        if self.max_rate_rps is None:
            return None
        return 1e6 / self.max_rate_rps

    def probe_rows(self) -> List[dict]:
        return [
            {
                "probe": index,
                "rate_rps": round(probe.rate_rps, 2),
                "mean_interarrival_us": round(probe.mean_interarrival_us, 2),
                "p99_response_us": round(probe.p99_us, 2),
                "meets_slo": probe.meets_slo,
            }
            for index, probe in enumerate(self.probes)
        ]

    def summary(self) -> dict:
        return {
            "policy": self.policy,
            "target_p99_us": self.target_p99_us,
            "max_rate_rps": (
                round(self.max_rate_rps, 2) if self.max_rate_rps is not None else None
            ),
            "converged": self.converged,
            "tolerance": self.tolerance,
            "probes": len(self.probes),
        }


class SloCapacitySearch:
    """Finds the max arrival rate whose array p99 stays within a target.

    The search brackets first — doubling the rate while the SLO holds,
    halving while it is violated — then bisects geometrically until the
    sustainable/violating bracket is within ``tolerance`` (a relative rate
    width: ``converged`` means the true capacity lies within
    ``max_rate_rps * (1 + tolerance)``).  The response-time-vs-load curve
    of a work-conserving array is monotone, so bracketing plus bisection
    converges for any starting rate; every probe reuses the same stream
    seeds, which keeps the search deterministic.

    When the runner has a checkpoint store, every completed probe is
    persisted as a *probe trail*; a resumed search replays the trail
    (skipping those probes' fleet runs entirely) and continues the
    bisection mid-bracket.  The rate trajectory is exact arithmetic on the
    starting rate, so replayed probes match rate-for-rate and the resumed
    :class:`CapacityResult` is bitwise-identical to an uninterrupted one.
    """

    def __init__(
        self,
        runner: FleetRunner,
        target_p99_us: float,
        tolerance: float = 0.05,
        max_probes: int = 12,
        kind: str = "all",
    ):
        if target_p99_us <= 0:
            raise ValueError("target_p99_us must be positive")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if max_probes < 2:
            raise ValueError("max_probes must be at least 2")
        self.runner = runner
        self.target_p99_us = target_p99_us
        self.tolerance = tolerance
        self.max_probes = max_probes
        self.kind = kind

    def _trail_params(self, source, policy: str, start_rate_rps: Optional[float]) -> dict:
        runner = self.runner
        return {
            "schema": FLEET_CHECKPOINT_SCHEMA,
            "fleet": runner.spec.to_dict(),
            "source": source.to_dict(),
            "policy": policy,
            "target_p99_us": self.target_p99_us,
            "tolerance": self.tolerance,
            "max_probes": self.max_probes,
            "kind": self.kind,
            "start_rate_rps": start_rate_rps,
            "rpt": rpt_fingerprint(runner.rpt) if runner.rpt is not None else None,
        }

    def find(
        self,
        source: Union[str, WorkloadSpec, TenantMix, dict],
        policy: str = "Baseline",
        num_requests: Optional[int] = None,
        seed: Optional[int] = None,
        start_rate_rps: Optional[float] = None,
    ) -> CapacityResult:
        """Run the search for one policy and return its capacity."""
        if isinstance(source, str) or isinstance(source, dict):
            source = (
                TenantMix.from_dict(source)
                if isinstance(source, dict) and "tenants" in source
                else WorkloadSpec.coerce(source, num_requests=num_requests, seed=seed)
            )
        elif isinstance(source, WorkloadSpec):
            source = WorkloadSpec.coerce(source, num_requests=num_requests, seed=seed)
        canonical = self.runner._registry.canonical_name(policy)
        checkpoint = self.runner.checkpoint
        trail_params = None
        recorded: List[dict] = []
        if checkpoint is not None:
            trail_params = self._trail_params(source, canonical, start_rate_rps)
            stored = checkpoint.load(PROBE_TRAIL_KIND, trail_params)
            if stored is not None and stored.get("probes"):
                recorded = list(stored["probes"])
                logger.info(
                    "capacity search (policy %s): %d probe(s) served from checkpoint",
                    canonical,
                    len(recorded),
                )
        probes: List[CapacityProbe] = []
        trail: List[dict] = []
        best_fleet: Optional[FleetResult] = None
        replay_index = 0
        lo: Optional[float] = None  # highest rate meeting the SLO
        hi: Optional[float] = None  # lowest rate violating it

        rate = start_rate_rps or _current_rate_rps(source)
        for _ in range(self.max_probes):
            fleet = None
            if replay_index < len(recorded) and recorded[replay_index]["rate_rps"] == rate:
                p99 = float(recorded[replay_index]["p99_us"])
                replay_index += 1
            else:
                # A recorded probe that does not match the expected rate
                # means the trail came from different inputs; stop trusting
                # the remainder and measure live.
                replay_index = len(recorded)
                fleet = self.runner.run(_with_rate(source, rate), policies=policy).result
                p99 = fleet.p99(self.kind)
            meets = p99 <= self.target_p99_us
            probes.append(
                CapacityProbe(
                    rate_rps=rate, mean_interarrival_us=1e6 / rate, p99_us=p99, meets_slo=meets
                )
            )
            trail.append({"rate_rps": rate, "p99_us": p99})
            if fleet is not None and checkpoint is not None:
                checkpoint.save(PROBE_TRAIL_KIND, trail_params, {"probes": trail})
            if meets:
                if lo is None or rate > lo:
                    lo, best_fleet = rate, fleet
            elif hi is None or rate < hi:
                hi = rate
            if lo is not None and hi is not None:
                if hi / lo <= 1.0 + self.tolerance:
                    break
                rate = math.sqrt(lo * hi)
            elif lo is None:
                rate = rate / 2.0
            else:
                rate = rate * 2.0

        converged = lo is not None and hi is not None and hi / lo <= 1.0 + self.tolerance
        if lo is not None and best_fleet is None:
            # The winning probe was replayed from the trail; materialize its
            # fleet result.  Its shards are checkpointed, so this folds the
            # stored metrics back instead of re-simulating.
            best_fleet = self.runner.run(_with_rate(source, lo), policies=policy).result
        return CapacityResult(
            policy=canonical,
            target_p99_us=self.target_p99_us,
            tolerance=self.tolerance,
            converged=converged,
            max_rate_rps=lo,
            min_violating_rate_rps=hi,
            probes=probes,
            fleet=best_fleet,
        )
