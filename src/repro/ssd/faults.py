"""Deterministic, seeded fault injection at the flash backend.

The paper evaluates retry policies on a healthy device; a production fleet
cares at least as much about how each policy degrades when the device
misbehaves.  This module injects three failure families the SSD literature
treats as canonical, all driven by the simulation clock so runs stay
reproducible bit for bit:

* **die/plane failure** — from time ``at_us`` (optionally for
  ``duration_us``), every read served by the failed die or plane runs
  degraded: its response and die-occupancy are multiplied by
  ``latency_factor`` and it may need ``extra_retry_steps`` more retry
  steps, modelling a marginal die limping along behind retries and
  internal recovery;
* **read-disturb storm** — at ``at_us`` the storm settles on the hottest
  blocks observed so far (deterministic read counting, ties broken by
  address) and reads of those blocks need ``extra_retry_steps`` more
  retry steps until the storm passes;
* **grown bad blocks** — at ``at_us``, ``blocks`` seeded-random blocks are
  retired for good: the DFTL relocates their valid pages (real GC-stream
  flash traffic plus batched translation updates) and the blocks never
  re-enter the free pool, shrinking the overprovisioning for the rest of
  the run.  Requires ``mapping="page"``; the block-mapping FTL has no
  remap machinery, which is the point of modelling it on DFTL.

Faults are described by frozen :class:`FaultSpec` values collected in a
:class:`FaultPlan` (JSON round-trip for manifests); the mutable
:class:`FaultInjector` holds the per-run state and is installed on a
simulator via :meth:`SsdSimulator.install_faults`.  Every effect is
counted on :class:`~repro.ssd.metrics.SimulationMetrics`
(``fault_injections``, ``faulted_reads``, ``grown_bad_blocks``,
``fault_remapped_pages``), all registered in ``COUNTER_FIELDS`` so fleet
merges carry them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: The recognized fault families.
FAULT_KINDS = ("die_failure", "plane_failure", "read_disturb",
               "grown_bad_blocks")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (immutable, JSON round-trippable)."""

    kind: str
    #: Simulation time the fault activates.
    at_us: float
    #: How long the fault lasts (``None`` = until the end of the run).
    duration_us: Optional[float] = None
    #: Scope of die/plane failures.
    channel: Optional[int] = None
    die: Optional[int] = None
    plane: Optional[int] = None
    #: read_disturb: how many hot blocks the storm settles on;
    #: grown_bad_blocks: how many blocks to retire.
    blocks: int = 1
    #: Additional retry steps a penalized read needs.
    extra_retry_steps: int = 0
    #: Multiplier on a penalized read's response and die-busy time.
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.at_us < 0:
            raise ValueError("at_us must be non-negative")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError("duration_us must be positive when given")
        if self.blocks < 1:
            raise ValueError("blocks must be at least 1")
        if self.extra_retry_steps < 0:
            raise ValueError("extra_retry_steps must be non-negative")
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be at least 1.0")
        if self.kind == "die_failure":
            if self.channel is None or self.die is None:
                raise ValueError("die_failure needs channel and die")
        elif self.kind == "plane_failure":
            if self.channel is None or self.die is None or self.plane is None:
                raise ValueError("plane_failure needs channel, die and plane")
        elif self.kind == "read_disturb":
            if self.duration_us is None:
                raise ValueError("read_disturb needs duration_us (storms end)")
            if self.extra_retry_steps == 0:
                raise ValueError(
                    "read_disturb needs extra_retry_steps >= 1 to have any "
                    "effect")
        if (self.kind in ("die_failure", "plane_failure")
                and self.extra_retry_steps == 0 and self.latency_factor == 1.0):
            raise ValueError(
                f"{self.kind} needs extra_retry_steps or latency_factor > 1 "
                "to have any effect")

    def to_dict(self) -> dict:
        payload = {"kind": self.kind, "at_us": self.at_us}
        for key in ("duration_us", "channel", "die", "plane"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.blocks != 1:
            payload["blocks"] = self.blocks
        if self.extra_retry_steps:
            payload["extra_retry_steps"] = self.extra_retry_steps
        if self.latency_factor != 1.0:
            payload["latency_factor"] = self.latency_factor
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(**payload)


def die_failure(at_us: float, channel: int, die: int,
                duration_us: Optional[float] = None,
                latency_factor: float = 4.0,
                extra_retry_steps: int = 0) -> FaultSpec:
    """A die limping from ``at_us`` on (reads slowed by ``latency_factor``)."""
    return FaultSpec(kind="die_failure", at_us=at_us, duration_us=duration_us,
                     channel=channel, die=die, latency_factor=latency_factor,
                     extra_retry_steps=extra_retry_steps)


def plane_failure(at_us: float, channel: int, die: int, plane: int,
                  duration_us: Optional[float] = None,
                  latency_factor: float = 4.0,
                  extra_retry_steps: int = 0) -> FaultSpec:
    """One plane of a die degrading from ``at_us`` on."""
    return FaultSpec(kind="plane_failure", at_us=at_us,
                     duration_us=duration_us, channel=channel, die=die,
                     plane=plane, latency_factor=latency_factor,
                     extra_retry_steps=extra_retry_steps)


def read_disturb(at_us: float, duration_us: float, blocks: int = 4,
                 extra_retry_steps: int = 3) -> FaultSpec:
    """A read-disturb storm on the ``blocks`` hottest blocks observed."""
    return FaultSpec(kind="read_disturb", at_us=at_us,
                     duration_us=duration_us, blocks=blocks,
                     extra_retry_steps=extra_retry_steps)


def grown_bad_blocks(at_us: float, blocks: int = 2,
                     extra_retry_steps: int = 0) -> FaultSpec:
    """Retire ``blocks`` seeded-random blocks for good at ``at_us``."""
    return FaultSpec(kind="grown_bad_blocks", at_us=at_us, blocks=blocks,
                     extra_retry_steps=extra_retry_steps)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults for one run."""

    faults: Tuple[FaultSpec, ...] = ()
    #: Seeds the grown-bad-block victim selection (and any future random
    #: choice); two runs of the same plan pick the same victims.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"faults must be FaultSpec, got {spec!r}")

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def label(self) -> str:
        if not self.faults:
            return "no-faults"
        kinds = sorted({spec.kind for spec in self.faults})
        return "+".join(kinds)

    def to_dict(self) -> dict:
        return {"faults": [spec.to_dict() for spec in self.faults],
                "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        return cls(faults=tuple(FaultSpec.from_dict(item)
                                for item in payload.get("faults", ())),
                   seed=payload.get("seed", 0))

    @classmethod
    def coerce(cls, value, seed: Optional[int] = None) -> "FaultPlan":
        """Build a plan from a plan, spec(s), dict payload or None."""
        if value is None:
            plan = cls()
        elif isinstance(value, FaultPlan):
            plan = value
        elif isinstance(value, FaultSpec):
            plan = cls(faults=(value,))
        elif isinstance(value, dict):
            plan = cls.from_dict(value)
        else:
            plan = cls(faults=tuple(value))
        if seed is not None and seed != plan.seed:
            plan = cls(faults=plan.faults, seed=seed)
        return plan


class _ActivePenalty:
    """One active read penalty over a scope of physical addresses."""

    __slots__ = ("ends_us", "extra_retry_steps", "latency_factor")

    def __init__(self, ends_us: Optional[float], extra_retry_steps: int,
                 latency_factor: float):
        self.ends_us = ends_us
        self.extra_retry_steps = extra_retry_steps
        self.latency_factor = latency_factor

    def active_at(self, now_us: float) -> bool:
        return self.ends_us is None or now_us <= self.ends_us


class FaultInjector:
    """Per-run fault state: pending schedule, active penalties, hot blocks.

    The injector is pull-driven by the simulator: ``poll(now)`` activates
    due faults (in schedule order, so the seeded victim selection is
    deterministic), ``record_read``/``read_penalty`` sit on the read path.
    A simulator without an injector takes none of these calls — the
    fault-free path is byte-for-byte the code that ran before faults
    existed.
    """

    def __init__(self, plan: FaultPlan, simulator) -> None:
        self.plan = plan
        self.simulator = simulator
        self._rng = np.random.default_rng(plan.seed)
        #: Still-inactive specs, soonest first (stable on ties).
        self._pending: List[FaultSpec] = sorted(
            plan.faults, key=lambda spec: spec.at_us)
        #: Active penalties keyed by scope: (ch, die) for die failures,
        #: (ch, die, plane) for plane failures, (ch, die, plane, block) for
        #: read-disturb storms.
        self._die_penalties: Dict[tuple, _ActivePenalty] = {}
        self._plane_penalties: Dict[tuple, _ActivePenalty] = {}
        self._block_penalties: Dict[tuple, _ActivePenalty] = {}
        #: Deterministic per-block read counts feeding hot-block selection.
        self._read_counts: Dict[tuple, int] = {}

    # -- read-path hooks ------------------------------------------------------
    def record_read(self, physical) -> None:
        key = (physical.channel, physical.die, physical.plane, physical.block)
        self._read_counts[key] = self._read_counts.get(key, 0) + 1

    def read_penalty(self, physical, now_us: float) -> Tuple[int, float]:
        """``(extra_retry_steps, latency_factor)`` for a read at ``now_us``."""
        extra = 0
        factor = 1.0
        die_key = (physical.channel, physical.die)
        plane_key = die_key + (physical.plane,)
        block_key = plane_key + (physical.block,)
        for table, key in ((self._die_penalties, die_key),
                           (self._plane_penalties, plane_key),
                           (self._block_penalties, block_key)):
            penalty = table.get(key)
            if penalty is None:
                continue
            if not penalty.active_at(now_us):
                del table[key]
                continue
            extra += penalty.extra_retry_steps
            factor *= penalty.latency_factor
        return extra, factor

    # -- activation -----------------------------------------------------------
    def poll(self, now_us: float) -> None:
        """Activate every pending fault whose time has come."""
        while self._pending and self._pending[0].at_us <= now_us:
            spec = self._pending.pop(0)
            self._activate(spec)
            self.simulator.metrics.fault_injections += 1

    def _activate(self, spec: FaultSpec) -> None:
        ends = (None if spec.duration_us is None
                else spec.at_us + spec.duration_us)
        if spec.kind == "die_failure":
            self._die_penalties[(spec.channel, spec.die)] = _ActivePenalty(
                ends, spec.extra_retry_steps, spec.latency_factor)
        elif spec.kind == "plane_failure":
            key = (spec.channel, spec.die, spec.plane)
            self._plane_penalties[key] = _ActivePenalty(
                ends, spec.extra_retry_steps, spec.latency_factor)
        elif spec.kind == "read_disturb":
            for key in self._hottest_blocks(spec.blocks):
                self._block_penalties[key] = _ActivePenalty(
                    ends, spec.extra_retry_steps, spec.latency_factor)
        else:  # grown_bad_blocks
            self._grow_bad_blocks(spec)

    def _hottest_blocks(self, count: int) -> List[tuple]:
        """The ``count`` most-read blocks so far (ties broken by address).

        A storm arriving before any read lands on the lowest-addressed
        blocks — still deterministic, and a storm somewhere beats no storm.
        """
        ranked = sorted(self._read_counts,
                        key=lambda key: (-self._read_counts[key], key))
        chosen = ranked[:count]
        if len(chosen) < count:
            config = self.simulator.config
            for channel in range(config.channels):
                for die in range(config.dies_per_channel):
                    for plane in range(config.planes_per_die):
                        for block in range(config.blocks_per_plane):
                            key = (channel, die, plane, block)
                            if key not in chosen:
                                chosen.append(key)
                            if len(chosen) == count:
                                return chosen
        return chosen

    def _grow_bad_blocks(self, spec: FaultSpec) -> None:
        """Retire ``spec.blocks`` seeded-random blocks via the DFTL remap.

        Victims are drawn plane-by-plane; a draw is skipped when the plane
        could not absorb the relocation without starving its GC watermark
        (retiring blocks shrinks overprovisioning — the model must degrade,
        not deadlock).  Attempts are bounded so a saturated device ends the
        fault instead of spinning.
        """
        dftl = self.simulator.dftl
        if dftl is None:
            raise RuntimeError(
                "grown_bad_blocks requires the page-mapped FTL "
                '(SsdConfig(mapping="page")); the block-mapping FTL has no '
                "remap machinery")
        config = self.simulator.config
        threshold = config.gc_free_block_threshold
        retired = 0
        for _ in range(max(16, 8 * spec.blocks)):
            if retired >= spec.blocks:
                break
            plane_index = int(self._rng.integers(len(dftl.planes)))
            block_id = int(self._rng.integers(config.blocks_per_plane))
            plane = dftl.planes[plane_index]
            if plane.is_retired(block_id):
                continue
            if plane.free_block_count <= threshold + 1:
                continue
            self.simulator.retire_bad_block(plane_index, block_id)
            retired += 1
