"""Tests for the shared experiment plumbing and the CLI runner."""

import json

import pytest

import repro
from repro.experiments.common import (
    DEFAULT_CONDITION_GRID,
    compare_policies,
    default_experiment_config,
    normalize_grid,
    run_workload_grid,
)
from repro.experiments.runner import main as runner_main
from repro.ssd.config import SsdConfig


class TestVersion:
    def test_version_exported(self):
        assert repro.__version__.count(".") == 2


class TestDefaultConfig:
    def test_default_experiment_config_is_scaled(self):
        config = default_experiment_config()
        assert isinstance(config, SsdConfig)
        assert config.blocks_per_plane < 1888
        assert config.channels == 4

    def test_overrides_pass_through(self):
        config = default_experiment_config(blocks_per_plane=10)
        assert config.blocks_per_plane == 10


class TestRunWorkloadGrid:
    @pytest.fixture(scope="class")
    def grid(self, default_rpt):
        config = SsdConfig.tiny()
        return run_workload_grid(("Baseline", "NoRR"), ("usr_1",),
                                 conditions=((1000, 6.0),), num_requests=60,
                                 config=config, rpt=default_rpt)

    def test_grid_structure(self, grid):
        assert set(grid) == {"usr_1"}
        assert set(grid["usr_1"]) == {(1000, 6.0)}
        assert set(grid["usr_1"][(1000, 6.0)]) == {"Baseline", "NoRR"}

    def test_normalize_grid_rows(self, grid):
        rows = list(normalize_grid(grid))
        assert len(rows) == 2
        baseline = next(row for row in rows if row["policy"] == "Baseline")
        norr = next(row for row in rows if row["policy"] == "NoRR")
        assert baseline["normalized_response_time"] == pytest.approx(1.0)
        assert norr["normalized_response_time"] < 1.0
        assert baseline["class"] == "read-dominant"

    def test_unknown_workload_rejected(self, default_rpt):
        with pytest.raises(KeyError):
            run_workload_grid(("Baseline",), ("not-a-workload",),
                              conditions=((0, 0.0),), num_requests=10,
                              config=SsdConfig.tiny(), rpt=default_rpt)

    def test_default_condition_grid_shape(self):
        assert len(DEFAULT_CONDITION_GRID) == 9
        assert (0, 0.0) in DEFAULT_CONDITION_GRID
        assert (2000, 12.0) in DEFAULT_CONDITION_GRID


class TestComparePolicies:
    def test_compare_policies_returns_means(self, tiny_ssd_config):
        result = compare_policies(policies=("Baseline", "NoRR"),
                                  num_requests=60, pe_cycles=1000,
                                  retention_months=6.0,
                                  config=tiny_ssd_config)
        assert result["NoRR"] < result["Baseline"]

    def test_quick_ssd_comparison_wrapper(self):
        result = repro.quick_ssd_comparison(num_requests=60, seed=1)
        assert set(result) == {"Baseline", "PR2", "AR2", "PnAR2", "NoRR"}


class TestRunnerCli:
    def test_cli_runs_single_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "table1.txt"
        exit_code = runner_main(["run", "table1", "--out", str(out_file)])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert out_file.read_text().startswith("Table 1")

    def test_cli_profile_and_max_rows(self, capsys):
        exit_code = runner_main(["run", "fig11", "--profile", "fast",
                                 "--max-rows", "3"])
        assert exit_code == 0
        assert "Figure 11" in capsys.readouterr().out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            runner_main(["figure-zero"])

    def test_cli_rejects_unknown_subtarget(self):
        with pytest.raises(SystemExit):
            runner_main(["run", "figure-zero"])


class TestHeadlineReportScript:
    def test_report_configs_cover_all_experiments(self):
        """The EXPERIMENTS.md generator runs every registered experiment."""
        import importlib.util
        import pathlib

        from repro.experiments import EXPERIMENT_NAMES

        script = (pathlib.Path(__file__).resolve().parents[1]
                  / "scripts" / "generate_experiments_report.py")
        module_spec = importlib.util.spec_from_file_location("report", script)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        assert set(module.CONFIGS) == set(EXPERIMENT_NAMES)

    def test_headline_artifact_is_valid_json_when_present(self):
        import pathlib

        artifact = (pathlib.Path(__file__).resolve().parents[1]
                    / "experiments_headlines.json")
        if not artifact.exists():
            pytest.skip("headline report not generated")
        report = json.loads(artifact.read_text())
        assert "fig14" in report and "headline" in report["fig14"]
