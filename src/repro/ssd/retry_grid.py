"""Precomputed retry-step grid backing the simulator's read hot path.

Every simulated read needs a :class:`~repro.ssd.flash_backend.ReadBehaviour`
for its (operating condition, page type, per-block variation corner).  The
seed implementation walked the retry table twice per novel key and memoized
into an unbounded dict that silently stopped caching at 500k entries.  This
module replaces that with a *grid*:

* the variation corners of an SSD are a fixed, enumerable lattice (one
  corner per physical block, derived deterministically from the config
  seed), so for any operating condition the behaviours of **all** corners
  and page types can be computed in one vectorized pass through
  :class:`repro.errors.batch.BatchErrorModel` — bit-for-bit equal to the
  scalar walks;
* conditions are discovered at run time (the preconditioned condition, the
  fresh-write condition, and P/E levels GC creates), so the grid fills
  per-condition *slabs* lazily: the first few queries of a novel condition
  are served by exact scalar walks, and once a condition proves hot its
  whole slab is built vectorized;
* slabs and the scalar memo are bounded with **explicit** eviction policies
  (LRU slabs, FIFO scalar memo — no silent stop-caching cliff), and slabs
  can be serialized so sweep/suite workers install a parent-built grid
  instead of recomputing.

Grids are shared process-wide per (geometry, seed, temperature, RPT): every
simulator with default error models gets the same grid, so repeated runs —
benchmark rounds, per-policy runs of one sweep cell, suite experiments —
pay the precompute once.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.rpt import ReadTimingParameterTable
from repro.errors.batch import BatchErrorModel, VariationArrays
from repro.errors.condition import OperatingCondition
from repro.errors.rber import CodewordErrorModel
from repro.errors.timing import TimingReduction
from repro.errors.variation import ProcessVariation
from repro.nand.geometry import PageType
from repro.nand.voltage import ReadRetryTable
from repro.ssd.config import SsdConfig
from repro.ssd.flash_backend import ReadBehaviour

#: A slab: behaviours of every (page type, corner) under one condition.
Slab = Dict[PageType, List[ReadBehaviour]]


def rpt_fingerprint(rpt: ReadTimingParameterTable) -> tuple:
    """Hashable value identity of an RPT's behaviour-relevant content.

    Two RPTs with the same fingerprint produce identical read behaviours
    (only the per-bin ``pre_reduction`` enters the error model), so the
    fingerprint — not object identity — keys the process-wide grid cache.
    Object identity would go stale across pickling boundaries: sweep
    workers unpickle a fresh RPT object per payload.
    """
    return (
        rpt.pec_bin_edges,
        rpt.retention_bin_edges_months,
        tuple((key, entry.pre_reduction) for key, entry in rpt.iter_entries()),
    )


class RetryStepGrid:
    """Lazily filled (condition x page type x corner) behaviour lattice.

    :param promote_threshold: scalar queries a novel condition absorbs
        before its full slab is built vectorized.  ``None`` scales the
        threshold with the corner count so small configs build immediately
        and huge configs only vectorize conditions that are actually hot.
    :param max_conditions: bound on cached slabs (LRU eviction).
    :param max_scalar_entries: bound on the scalar memo (FIFO eviction) —
        the explicit replacement of the seed's silent 500k stop-caching cap.
    """

    def __init__(
        self,
        config: SsdConfig,
        rpt: ReadTimingParameterTable = None,
        error_model: CodewordErrorModel = None,
        retry_table: ReadRetryTable = None,
        promote_threshold: Optional[int] = None,
        max_conditions: int = 64,
        max_scalar_entries: int = 262_144,
    ):
        self.config = config
        self.error_model = error_model or CodewordErrorModel()
        self.retry_table = retry_table or ReadRetryTable()
        self._rpt = rpt
        self._batch = BatchErrorModel(self.error_model)
        self._variation = ProcessVariation(seed=config.seed)
        self._variation_arrays: Optional[VariationArrays] = None
        self.max_conditions = max_conditions
        self.max_scalar_entries = max_scalar_entries
        if promote_threshold is None:
            promote_threshold = max(1, self.corner_count // 160)
        self.promote_threshold = promote_threshold

        #: condition key -> slab (recency-ordered for LRU eviction).
        self._slabs: "OrderedDict[tuple, Slab]" = OrderedDict()
        #: scalar queries seen per not-yet-promoted condition key.
        self._pending_queries: Dict[tuple, int] = {}
        #: (condition key, page type, corner) -> ReadBehaviour
        self._scalar_memo: "OrderedDict[tuple, ReadBehaviour]" = OrderedDict()
        #: (steps, reduced, fallback) -> the one shared ReadBehaviour object.
        self._interned: Dict[tuple, ReadBehaviour] = {}
        self.slab_builds = 0

    # -- geometry -------------------------------------------------------------
    @property
    def rpt(self) -> ReadTimingParameterTable:
        if self._rpt is None:
            self._rpt = ReadTimingParameterTable.default()
        return self._rpt

    @property
    def chips(self) -> int:
        return self.config.channels * self.config.dies_per_channel

    @property
    def blocks_per_chip(self) -> int:
        return self.config.planes_per_die * self.config.blocks_per_plane

    @property
    def corner_count(self) -> int:
        """One variation corner per physical block of the SSD."""
        return self.chips * self.blocks_per_chip

    def corner_index(self, chip: int, block: int) -> int:
        return chip * self.blocks_per_chip + block

    def variation_arrays(self) -> VariationArrays:
        """Per-corner variation multipliers, enumerated in corner order.

        The sample population is a pure function of (seed, chips, blocks),
        so the enumerated arrays are cached process-wide and shared by
        every grid over the same silicon.
        """
        if self._variation_arrays is None:
            key = (self.config.seed, self.chips, self.blocks_per_chip)
            arrays = _VARIATION_ARRAYS_CACHE.get(key)
            if arrays is None:
                samples = [
                    self._variation.block_sample(chip=chip, block=block)
                    for chip in range(self.chips)
                    for block in range(self.blocks_per_chip)
                ]
                arrays = VariationArrays.from_samples(samples)
                while len(_VARIATION_ARRAYS_CACHE) >= _MAX_SHARED_GRIDS:
                    _VARIATION_ARRAYS_CACHE.popitem(last=False)
                _VARIATION_ARRAYS_CACHE[key] = arrays
            self._variation_arrays = arrays
        return self._variation_arrays

    # -- statistics -----------------------------------------------------------
    @property
    def cached_conditions(self) -> int:
        return len(self._slabs)

    @property
    def scalar_memo_size(self) -> int:
        return len(self._scalar_memo)

    @property
    def cache_size(self) -> int:
        """Total cached behaviours (slab entries plus scalar memo)."""
        per_slab = self.corner_count * len(PageType)
        return len(self._slabs) * per_slab + len(self._scalar_memo)

    # -- main query -----------------------------------------------------------
    def behaviour(
        self,
        page_type: PageType,
        pe_cycles: int,
        retention_months: float,
        chip: int,
        block: int,
        prepared: Optional[ReadBehaviour] = None,
    ) -> Tuple[ReadBehaviour, bool]:
        """Behaviour of one read; the flag reports a grid (slab) hit.

        Slab lookups and scalar fallbacks are computed from the *exact*
        per-block variation sample, so results are independent of query
        order (the seed's rounded-key memo could alias two nearby corners
        depending on which was read first).

        ``prepared`` is a dispatch-time batch-computed behaviour for this
        exact (condition, page type, corner) — see :meth:`peek_batch`.  It
        substitutes only for the scalar walk on a memo miss; slab lookups,
        promotion, pending counts and memo maintenance are untouched, so the
        grid's state trajectory is identical with and without it.
        """
        key = (pe_cycles, retention_months)
        slab = self._slabs.get(key)
        corner = chip * self.blocks_per_chip + block
        if slab is not None:
            # LRU touch: long GC-heavy runs create a stream of (pe, 0.0)
            # conditions, and without recency the hot preconditioned slab
            # would be the first one evicted.
            self._slabs.move_to_end(key)
            return slab[page_type][corner], True

        queries = self._pending_queries.get(key, 0) + 1
        if queries >= self.promote_threshold:
            slab = self._build_slab(key)
            return slab[page_type][corner], True
        self._pending_queries[key] = queries

        memo_key = (key, page_type, corner)
        behaviour = self._scalar_memo.get(memo_key)
        if behaviour is None:
            if prepared is not None:
                behaviour = prepared
            else:
                behaviour = self._scalar_behaviour(key, page_type, chip, block)
            if len(self._scalar_memo) >= self.max_scalar_entries:
                self._scalar_memo.popitem(last=False)
            self._scalar_memo[memo_key] = behaviour
        return behaviour, False

    # -- dispatch-time batch preparation --------------------------------------
    def peek_batch(
        self,
        items: Sequence[Tuple[PageType, int, float, int, int]],
    ) -> Tuple[List[Optional[ReadBehaviour]], int]:
        """Batch-compute the behaviours a group of reads will need, purely.

        :param items: ``(page_type, pe_cycles, retention_months, chip,
            block)`` per read, in dispatch order.
        :return: per-item prepared behaviours (``None`` where the service-
            time query is predicted to be served from a slab or the scalar
            memo) and the number of vectorized lattice walks issued.

        This is the read-side of batched same-die completion: instead of N
        scalar retry-table walks when N reads of a request resolve cold, the
        distinct cold conditions are each walked once through the vectorized
        :class:`~repro.errors.batch.BatchErrorModel` restricted to the
        corners and page types actually referenced.  The method inspects the
        slab/memo/pending state WITHOUT mutating it (``OrderedDict.get``
        does not reorder, so LRU/FIFO trajectories are unaffected); the only
        side effect is interning, which dedupes immutable value objects and
        is observability-neutral.  Predictions may go stale before service
        (GC can rebuild the block, interleaved queries can promote the
        condition): a prepared value handed to :meth:`behaviour` is consumed
        only on the exact branch it precomputes, so a stale or superfluous
        prediction costs nothing but the preparation itself.
        """
        prepared: List[Optional[ReadBehaviour]] = [None] * len(items)
        cold: "OrderedDict[tuple, List[Tuple[int, PageType, int]]]" = OrderedDict()
        batch_queries: Dict[tuple, int] = {}
        for index, (page_type, pe_cycles, retention_months, chip, block) in enumerate(items):
            key = (pe_cycles, retention_months)
            if key in self._slabs:
                continue
            # Count this batch's earlier same-condition queries: each one
            # bumps the pending counter at service time, so a condition that
            # crosses the promote threshold mid-batch slab-serves the rest.
            seen = batch_queries.get(key, 0)
            batch_queries[key] = seen + 1
            if self._pending_queries.get(key, 0) + seen + 1 >= self.promote_threshold:
                continue
            corner = chip * self.blocks_per_chip + block
            if (key, page_type, corner) in self._scalar_memo:
                continue
            cold.setdefault(key, []).append((index, page_type, corner))
        walks = 0
        for key, group in cold.items():
            pe_cycles, retention_months = key
            condition = OperatingCondition(
                pe_cycles=pe_cycles,
                retention_months=retention_months,
                temperature_c=self.config.temperature_c,
            )
            entry = self.rpt.entry_for(pe_cycles, retention_months)
            corners = sorted({corner for _, _, corner in group})
            needed = {page_type for _, page_type, _ in group}
            page_types = tuple(p for p in PageType if p in needed)
            lattice = self._batch.read_behaviour_lattice(
                condition,
                self.variation_arrays().take(np.array(corners, dtype=np.intp)),
                pre_reduction=entry.pre_reduction,
                page_types=page_types,
                table=self.retry_table,
            )
            walks += 1
            position = {corner: offset for offset, corner in enumerate(corners)}
            behaviours = {
                page_type: self._intern_lattice(
                    batch.retry_steps,
                    batch.retry_steps_reduced,
                    batch.reduced_timing_fallback,
                )
                for page_type, batch in lattice.items()
            }
            for index, page_type, corner in group:
                prepared[index] = behaviours[page_type][position[corner]]
        return prepared, walks

    # -- slab construction ----------------------------------------------------
    def prefill(self, conditions: Iterable[Tuple[int, float]]) -> None:
        """Vectorize the slabs of known-upcoming conditions eagerly.

        The simulator calls this at precondition time with the aged-data
        condition, which serves nearly every read of a run; the fresh-write
        condition and GC-created P/E levels fill lazily.
        """
        for pe_cycles, retention_months in conditions:
            key = (int(pe_cycles), float(retention_months))
            if key not in self._slabs:
                self._build_slab(key)

    def _build_slab(self, key: tuple) -> Slab:
        pe_cycles, retention_months = key
        condition = OperatingCondition(
            pe_cycles=pe_cycles,
            retention_months=retention_months,
            temperature_c=self.config.temperature_c,
        )
        entry = self.rpt.entry_for(pe_cycles, retention_months)
        lattice = self._batch.read_behaviour_lattice(
            condition,
            self.variation_arrays(),
            pre_reduction=entry.pre_reduction,
            table=self.retry_table,
        )
        slab = {
            page_type: self._intern_lattice(
                batch.retry_steps,
                batch.retry_steps_reduced,
                batch.reduced_timing_fallback,
            )
            for page_type, batch in lattice.items()
        }
        self._install_slab(key, slab)
        self.slab_builds += 1
        return slab

    def _install_slab(self, key: tuple, slab: Slab) -> None:
        while len(self._slabs) >= self.max_conditions:
            self._slabs.popitem(last=False)
        self._slabs[key] = slab
        self._pending_queries.pop(key, None)

    def _intern_lattice(
        self,
        steps: np.ndarray,
        reduced: np.ndarray,
        fallback: np.ndarray,
    ) -> List[ReadBehaviour]:
        interned = self._interned
        behaviours = []
        for index in range(len(steps)):
            signature = (int(steps[index]), int(reduced[index]), bool(fallback[index]))
            behaviour = interned.get(signature)
            if behaviour is None:
                behaviour = ReadBehaviour(
                    retry_steps=signature[0],
                    retry_steps_reduced=signature[1],
                    reduced_timing_fallback=signature[2],
                )
                interned[signature] = behaviour
            behaviours.append(behaviour)
        return behaviours

    # -- scalar fallback ------------------------------------------------------
    def _scalar_behaviour(
        self,
        key: tuple,
        page_type: PageType,
        chip: int,
        block: int,
    ) -> ReadBehaviour:
        """One exact scalar evaluation (cold conditions, pre-promotion)."""
        pe_cycles, retention_months = key
        condition = OperatingCondition(
            pe_cycles=pe_cycles,
            retention_months=retention_months,
            temperature_c=self.config.temperature_c,
        )
        variation = self._variation.block_sample(chip=chip, block=block)
        default_walk = self.error_model.walk_retry_table(
            condition,
            page_type,
            table=self.retry_table,
            variation=variation,
        )
        if default_walk.retry_steps is None:
            default_steps = self.retry_table.num_entries
        else:
            default_steps = default_walk.retry_steps

        entry = self.rpt.entry_for(pe_cycles, retention_months)
        if entry.pre_reduction > 0.0 and default_steps > 0:
            reduction = TimingReduction(pre=entry.pre_reduction)
            reduced_walk = self.error_model.walk_retry_table(
                condition,
                page_type,
                table=self.retry_table,
                variation=variation,
                retry_timing_reduction=reduction,
            )
            if reduced_walk.retry_steps is None:
                signature = (default_steps, default_steps, True)
            else:
                signature = (default_steps, reduced_walk.retry_steps, False)
        else:
            signature = (default_steps, default_steps, False)
        behaviour = self._interned.get(signature)
        if behaviour is None:
            behaviour = ReadBehaviour(*signature)
            self._interned[signature] = behaviour
        return behaviour

    # -- worker hand-off ------------------------------------------------------
    def export_slabs(self, conditions: Iterable[Tuple[int, float]] = None) -> List[dict]:
        """Serialize cached slabs (compact arrays, pickle-friendly).

        :param conditions: restrict the export to these (P/E, retention)
            keys; conditions without a cached slab are skipped.
        """
        if conditions is None:
            selected = list(self._slabs.items())
        else:
            keys = [(int(pe), float(ret)) for pe, ret in conditions]
            selected = [(key, self._slabs[key]) for key in keys if key in self._slabs]
        payload = []
        for (pe_cycles, retention_months), slab in selected:
            entry = {
                "pe_cycles": pe_cycles,
                "retention_months": retention_months,
                "page_types": {},
            }
            for page_type, behaviours in slab.items():
                steps = np.array([b.retry_steps for b in behaviours], dtype=np.int16)
                reduced = np.array([b.retry_steps_reduced for b in behaviours], dtype=np.int16)
                fallback = np.array([b.reduced_timing_fallback for b in behaviours], dtype=bool)
                entry["page_types"][page_type.name] = {
                    "retry_steps": steps,
                    "retry_steps_reduced": reduced,
                    "reduced_timing_fallback": fallback,
                }
            payload.append(entry)
        return payload

    def install_slabs(self, payload: Sequence[dict]) -> int:
        """Install serialized slabs; returns how many were new."""
        installed = 0
        for entry in payload:
            key = (int(entry["pe_cycles"]), float(entry["retention_months"]))
            if key in self._slabs:
                continue
            slab = {}
            for name, arrays in entry["page_types"].items():
                slab[PageType[name]] = self._intern_lattice(
                    arrays["retry_steps"],
                    arrays["retry_steps_reduced"],
                    arrays["reduced_timing_fallback"],
                )
            if len(slab) != len(PageType):
                missing = sorted(p.name for p in PageType if p not in slab)
                raise ValueError(f"slab for condition {key} misses page types: {missing}")
            self._install_slab(key, slab)
            installed += 1
        return installed


# -- process-wide sharing -----------------------------------------------------
_SHARED_GRIDS: "OrderedDict[tuple, RetryStepGrid]" = OrderedDict()
_VARIATION_ARRAYS_CACHE: "OrderedDict[tuple, VariationArrays]" = OrderedDict()
_MAX_SHARED_GRIDS = 16


def _config_key(config: SsdConfig) -> tuple:
    return (
        config.channels,
        config.dies_per_channel,
        config.planes_per_die,
        config.blocks_per_plane,
        config.temperature_c,
        config.seed,
    )


def shared_grid(config: SsdConfig, rpt: ReadTimingParameterTable) -> RetryStepGrid:
    """The process-wide grid for a (geometry, seed, temperature, RPT).

    Simulators with default error models share one grid per configuration,
    so per-policy runs, benchmark rounds and suite experiments reuse each
    other's slabs.  Custom error models or retry tables get private grids
    (see :class:`repro.ssd.flash_backend.FlashBackend`).
    """
    key = (_config_key(config), rpt_fingerprint(rpt))
    grid = _SHARED_GRIDS.get(key)
    if grid is None:
        grid = RetryStepGrid(config, rpt=rpt)
        while len(_SHARED_GRIDS) >= _MAX_SHARED_GRIDS:
            _SHARED_GRIDS.popitem(last=False)
        _SHARED_GRIDS[key] = grid
    else:
        _SHARED_GRIDS.move_to_end(key)
    return grid


def clear_shared_grids() -> None:
    """Drop all process-wide grids (test isolation hook)."""
    _SHARED_GRIDS.clear()
    _VARIATION_ARRAYS_CACHE.clear()
