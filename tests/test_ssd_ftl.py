"""Tests for the page-mapping FTL."""

import pytest

from repro.nand.geometry import PageType
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import FlashTranslationLayer


@pytest.fixture()
def ftl():
    return FlashTranslationLayer(SsdConfig.tiny())


class TestMapping:
    def test_unmapped_lookup_returns_none(self, ftl):
        assert ftl.lookup(0) is None
        assert not ftl.is_mapped(0)

    def test_write_then_lookup(self, ftl):
        physical, old = ftl.write(7)
        assert old is None
        assert ftl.lookup(7) == physical
        assert ftl.is_mapped(7)

    def test_overwrite_invalidates_old_page(self, ftl):
        first, _ = ftl.write(7)
        second, invalidated = ftl.write(7)
        assert invalidated == first
        assert second != first
        old_block = ftl.plane_for(first).blocks[first.block]
        assert old_block.page_lpns[first.page] is None

    def test_writes_stripe_across_planes(self, ftl):
        locations = [ftl.write(lpn)[0] for lpn in range(8)]
        die_keys = {physical.die_key() for physical in locations}
        assert len(die_keys) > 1

    def test_lpn_out_of_range_rejected(self, ftl):
        with pytest.raises(ValueError):
            ftl.write(ftl.config.logical_pages)

    def test_mapped_pages_counter(self, ftl):
        for lpn in range(10):
            ftl.write(lpn)
        ftl.write(3)
        assert ftl.mapped_pages == 10

    def test_page_type_cycles(self, ftl):
        physical, _ = ftl.write(0, plane_index=0)
        assert ftl.page_type_of(physical) in PageType


class TestBlockMetadata:
    def test_retention_recorded_per_page(self, ftl):
        physical, _ = ftl.write(1, retention_months=9.0)
        assert ftl.retention_months_of(physical) == 9.0
        fresh, _ = ftl.write(2, retention_months=0.0)
        assert ftl.retention_months_of(fresh) == 0.0

    def test_uniform_pe_cycles(self, ftl):
        ftl.set_uniform_pe_cycles(1500)
        physical, _ = ftl.write(0)
        assert ftl.pe_cycles_of(physical) == 1500
        with pytest.raises(ValueError):
            ftl.set_uniform_pe_cycles(-1)

    def test_valid_counts_track_overwrites(self, ftl):
        physical, _ = ftl.write(5)
        block = ftl.block_metadata(physical)
        assert block.valid_count == 1
        ftl.write(5)
        assert block.valid_count == 0
        assert block.invalid_count == 1


class TestPlaneManager:
    def test_active_block_rolls_over_when_full(self, ftl):
        plane = ftl.planes[0]
        pages_per_block = ftl.config.pages_per_block
        for lpn in range(pages_per_block + 1):
            ftl.write(lpn, plane_index=0)
        used_blocks = {entry for entry in (ftl.lookup(lpn).block
                                           for lpn in range(pages_per_block + 1))}
        assert len(used_blocks) == 2
        # One block is completely full; the newly opened active block still
        # counts toward the free pool.
        assert plane.free_block_count == ftl.config.blocks_per_plane - 1

    def test_erase_returns_block_to_free_pool(self, ftl):
        plane = ftl.planes[0]
        before = plane.free_block_count
        physical, _ = ftl.write(0, plane_index=0)
        pe_before = plane.blocks[physical.block].pe_cycles
        plane.erase(physical.block)
        assert plane.blocks[physical.block].pe_cycles == pe_before + 1
        assert plane.free_block_count == before

    def test_gc_victim_prefers_most_invalid(self, ftl):
        plane = ftl.planes[0]
        pages_per_block = ftl.config.pages_per_block
        # Fill two blocks on plane 0, then invalidate most of the first one.
        for lpn in range(2 * pages_per_block):
            ftl.write(lpn, plane_index=0)
        for lpn in range(pages_per_block - 2):
            ftl.write(lpn, plane_index=1)  # rewrite elsewhere -> invalidate
        victim = plane.gc_victim()
        assert victim is not None
        assert plane.blocks[victim].invalid_count >= pages_per_block - 2

    def test_wear_leveling_prefers_low_pe_blocks(self, ftl):
        plane = ftl.planes[0]
        # Artificially wear every block except block 5; the next block the
        # allocator opens must be the least-worn one.
        for block in plane.blocks:
            block.pe_cycles = 100
        plane.blocks[5].pe_cycles = 1
        physical, _ = ftl.write(0, plane_index=0)
        assert physical.block == 5

    def test_needs_gc_threshold(self, ftl):
        plane = ftl.planes[0]
        assert not plane.needs_gc()
