"""Shared result container, run manifests and serialization for experiments.

An :class:`ExperimentResult` is the unit the experiment layer passes around:
tidy rows plus the headline numbers the paper quotes.  Since the registry
redesign it also carries a :class:`RunManifest` (the exact resolved
parameters, profile, seed and repro version that produced it) and
round-trips losslessly through plain dicts / JSON / CSV, which is what lets
the :class:`~repro.experiments.store.ArtifactStore` content-address results
and serve byte-identical cached copies.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: Version of the serialized result layout.  Part of every cache key, so
#: bumping it invalidates all stored artifacts at once.  Version 2: sweep
#: rows and metric summaries carry tail-latency columns (p99/p999), and
#: percentiles are histogram estimates rather than exact order statistics.
#: Version 3: sweep rows and metric summaries carry the wear-dynamics
#: columns (write_amplification, mapping_cache_hit_rate, gc_invocations,
#: translation_reads/writes) introduced with the DFTL page mapping.
SCHEMA_VERSION = 3


def jsonify(value):
    """Canonicalize ``value`` into plain JSON-native Python types.

    Tuples become lists and numpy scalars become their Python equivalents,
    so that a result serialized before and after a JSON round-trip compares
    (and dumps) identically — the property the artifact cache's
    "cached == fresh" guarantee rests on.
    """
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if hasattr(value, "item") and type(value).__module__ == "numpy":
        return value.item()
    return value


@dataclass
class RunManifest:
    """Provenance of one experiment run.

    :param experiment: registry name of the experiment.
    :param params: the fully resolved parameters passed to ``run()``.
    :param profile: the profile the parameters were resolved from.
    :param seed: the run's seed parameter, if the experiment declares one.
    :param repro_version: ``repro.__version__`` that produced the result.
    :param schema_version: serialized-layout version (cache-key component).
    :param cache_key: content address in the artifact store, if computed.
    """

    experiment: str
    params: Dict[str, object] = field(default_factory=dict)
    profile: Optional[str] = None
    seed: Optional[int] = None
    repro_version: str = ""
    schema_version: int = SCHEMA_VERSION
    cache_key: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "params": jsonify(self.params),
            "profile": self.profile,
            "seed": self.seed,
            "repro_version": self.repro_version,
            "schema_version": self.schema_version,
            "cache_key": self.cache_key,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunManifest":
        return cls(experiment=data["experiment"],
                   params=dict(data.get("params") or {}),
                   profile=data.get("profile"),
                   seed=data.get("seed"),
                   repro_version=data.get("repro_version", ""),
                   schema_version=data.get("schema_version", SCHEMA_VERSION),
                   cache_key=data.get("cache_key"))


@dataclass
class ExperimentResult:
    """Tabular result of one experiment.

    :param name: experiment identifier (``"fig05"`` etc.).
    :param title: human-readable title referencing the paper artifact.
    :param rows: list of dict rows; all rows share the same keys.
    :param headline: the headline numbers the paper quotes in prose, used by
        EXPERIMENTS.md and the regression tests.
    :param notes: free-form caveats (e.g. reduced sample counts).
    :param manifest: provenance of the run (attached by the runner).
    """

    name: str
    title: str
    rows: List[dict] = field(default_factory=list)
    headline: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    manifest: Optional[RunManifest] = None

    def columns(self) -> List[str]:
        if not self.rows:
            return []
        return list(self.rows[0].keys())

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]

    def filter_rows(self, approx: Optional[Mapping[str, float]] = None,
                    tolerance: float = 1e-9, **criteria) -> List[dict]:
        """Rows matching all the given column values.

        ``criteria`` columns are compared with exact ``==``; ``approx``
        columns are numeric and match within ``tolerance``, which is what
        float-valued sweep axes (e.g. ``pre_reduction``) need — ``0.54``
        recomputed through arithmetic rarely equals the literal exactly.

        >>> result.filter_rows(pe_cycles=1000, approx={"reduction": 0.47})
        """
        approx = approx or {}

        def approx_match(row) -> bool:
            for key, value in approx.items():
                actual = row.get(key)
                if actual is None or abs(actual - value) > tolerance:
                    return False
            return True

        return [row for row in self.rows
                if all(row.get(key) == value
                       for key, value in criteria.items())
                and approx_match(row)]

    def first_row(self, approx: Optional[Mapping[str, float]] = None,
                  tolerance: float = 1e-9, **criteria) -> Optional[dict]:
        """First matching row, or None (lookup sugar for headline code)."""
        matched = self.filter_rows(approx=approx, tolerance=tolerance,
                                   **criteria)
        return matched[0] if matched else None

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (canonical JSON-native types, see :func:`jsonify`)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "rows": jsonify(self.rows),
            "headline": jsonify(self.headline),
            "notes": list(self.notes),
            "manifest": self.manifest.to_dict() if self.manifest else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"cannot load result with schema version {version!r} "
                f"(this build reads version {SCHEMA_VERSION})")
        manifest = data.get("manifest")
        return cls(name=data["name"], title=data["title"],
                   rows=[dict(row) for row in data.get("rows", [])],
                   headline=dict(data.get("headline") or {}),
                   notes=list(data.get("notes") or []),
                   manifest=RunManifest.from_dict(manifest)
                   if manifest else None)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON document (ends with a newline)."""
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def to_csv(self) -> str:
        """The rows as an RFC-4180 CSV document (header + one line per row)."""
        import csv

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        columns = self.columns()
        writer.writerow(columns)
        for row in jsonify(self.rows):
            writer.writerow([row[column] for column in columns])
        return buffer.getvalue()

    # -- rendering ---------------------------------------------------------------
    def to_text(self, max_rows: Optional[int] = None) -> str:
        """Render the result as a fixed-width text table."""
        lines = [self.title, "=" * len(self.title)]
        if self.headline:
            lines.append("")
            lines.append("Headline numbers:")
            for key, value in self.headline.items():
                lines.append(f"  - {key}: {value}")
        if self.rows:
            lines.append("")
            columns = self.columns()
            rows = self.rows if max_rows is None else self.rows[:max_rows]
            widths = {column: max(len(str(column)),
                                  *(len(str(row[column])) for row in rows))
                      for column in columns}
            header = "  ".join(str(column).ljust(widths[column])
                               for column in columns)
            lines.append(header)
            lines.append("-" * len(header))
            for row in rows:
                lines.append("  ".join(str(row[column]).ljust(widths[column])
                                       for column in columns))
            if max_rows is not None and len(self.rows) > max_rows:
                lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text(max_rows=30)
