"""Controller write buffer.

Host writes are acknowledged as soon as their data lands in the controller's
DRAM write buffer; the buffered pages are then flushed to flash in the
background.  When the buffer is full, incoming writes must wait for flush
completions — which is how flash program latency (and GC pressure) shows up
in the response time of write-heavy workloads such as ``stg_0``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional


@dataclass
class BufferedWrite:
    """One page-sized write held in the buffer until its flash program ends."""

    lpn: int
    request_id: int
    admitted_us: float


class WriteBuffer:
    """Fixed-capacity FIFO write buffer."""

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self.capacity_pages = capacity_pages
        self._in_flight: int = 0
        self._admitted: int = 0
        self._waiting: Deque[object] = deque()

    # -- occupancy -----------------------------------------------------------------
    @property
    def used_pages(self) -> int:
        return self._in_flight

    @property
    def free_pages(self) -> int:
        return self.capacity_pages - self._in_flight

    @property
    def is_full(self) -> bool:
        return self._in_flight >= self.capacity_pages

    @property
    def total_admitted(self) -> int:
        return self._admitted

    # -- admission -----------------------------------------------------------------
    def try_admit(self, pages: int = 1) -> bool:
        """Admit ``pages`` page writes if space allows."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if self._in_flight + pages > self.capacity_pages:
            return False
        self._in_flight += pages
        self._admitted += pages
        return True

    def release(self, pages: int = 1) -> None:
        """Release buffer slots once their flash programs complete."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if pages > self._in_flight:
            raise ValueError("releasing more pages than are buffered")
        self._in_flight -= pages

    # -- back-pressure queue ----------------------------------------------------------
    def enqueue_waiter(self, waiter) -> None:
        """Remember a request waiting for buffer space (FIFO order)."""
        self._waiting.append(waiter)

    def pop_waiter(self) -> Optional[object]:
        """Next waiting request, or ``None``."""
        if self._waiting:
            return self._waiting.popleft()
        return None

    def requeue_waiter_front(self, waiter) -> None:
        """Put a waiter back at the head (it still does not fit)."""
        self._waiting.appendleft(waiter)

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)
