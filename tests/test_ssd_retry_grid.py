"""The retry-step grid: slab building, lazy promotion, eviction, sharing."""

import pickle

import pytest

from repro.core.rpt import ReadTimingParameterTable
from repro.errors.rber import CodewordErrorModel
from repro.nand.geometry import PageType
from repro.nand.voltage import ReadRetryTable
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator
from repro.ssd.flash_backend import FlashBackend
from repro.ssd.ftl import PhysicalPage
from repro.ssd.request import HostRequest, RequestKind
from repro.ssd.retry_grid import (
    RetryStepGrid,
    clear_shared_grids,
    rpt_fingerprint,
    shared_grid,
)


@pytest.fixture()
def config() -> SsdConfig:
    return SsdConfig.tiny()


@pytest.fixture()
def grid(config, default_rpt) -> RetryStepGrid:
    return RetryStepGrid(config, rpt=default_rpt)


class TestGridGeometry:
    def test_one_corner_per_physical_block(self, grid, config):
        assert grid.corner_count == (config.channels * config.dies_per_channel
                                     * config.planes_per_die
                                     * config.blocks_per_plane)

    def test_corner_variation_matches_backend(self, grid, config, default_rpt):
        backend = FlashBackend(config, rpt=default_rpt)
        physical = PhysicalPage(channel=1, die=0, plane=0, block=5, page=0)
        chip = physical.channel * config.dies_per_channel + physical.die
        block = physical.plane * config.blocks_per_plane + physical.block
        arrays = grid.variation_arrays()
        sample = arrays.sample_at(grid.corner_index(chip, block))
        assert sample == backend.block_variation(physical)


class TestSlabLifecycle:
    def test_prefill_builds_vectorized_slab(self, grid):
        grid.prefill([(1000, 6.0)])
        assert grid.cached_conditions == 1
        assert grid.slab_builds == 1
        behaviour, from_grid = grid.behaviour(PageType.CSB, 1000, 6.0, 0, 3)
        assert from_grid
        assert behaviour.retry_steps > 0

    def test_grid_matches_scalar_fallback(self, config, default_rpt):
        """The slab and the scalar path must agree behaviour-for-behaviour."""
        eager = RetryStepGrid(config, rpt=default_rpt, promote_threshold=1)
        lazy = RetryStepGrid(config, rpt=default_rpt,
                             promote_threshold=10_000)
        for page_type in PageType:
            for chip in range(eager.chips):
                for block in (0, 7, 15):
                    fast, from_grid = eager.behaviour(page_type, 2000, 12.0,
                                                      chip, block)
                    slow, from_slab = lazy.behaviour(page_type, 2000, 12.0,
                                                     chip, block)
                    assert from_grid and not from_slab
                    assert fast == slow

    def test_promotion_after_threshold(self, config, default_rpt):
        grid = RetryStepGrid(config, rpt=default_rpt, promote_threshold=3)
        for query in range(2):
            _, from_grid = grid.behaviour(PageType.LSB, 500, 3.0, 0, query)
            assert not from_grid
        assert grid.cached_conditions == 0
        _, from_grid = grid.behaviour(PageType.LSB, 500, 3.0, 0, 2)
        assert from_grid
        assert grid.cached_conditions == 1

    def test_slab_eviction_is_bounded(self, config, default_rpt):
        grid = RetryStepGrid(config, rpt=default_rpt, promote_threshold=1,
                             max_conditions=2)
        for pe_cycles in (100, 200, 300, 400):
            grid.behaviour(PageType.CSB, pe_cycles, 0.0, 0, 0)
        assert grid.cached_conditions == 2

    def test_scalar_memo_eviction_is_bounded(self, config, default_rpt):
        grid = RetryStepGrid(config, rpt=default_rpt,
                             promote_threshold=10_000, max_scalar_entries=5)
        for block in range(8):
            grid.behaviour(PageType.CSB, 1000, 6.0, 0, block)
        assert grid.scalar_memo_size <= 5


class TestSlabSerialization:
    def test_export_install_roundtrip(self, config, default_rpt):
        source = RetryStepGrid(config, rpt=default_rpt)
        source.prefill([(1000, 6.0), (1000, 0.0)])
        payload = pickle.loads(pickle.dumps(source.export_slabs()))

        target = RetryStepGrid(config, rpt=default_rpt)
        assert target.install_slabs(payload) == 2
        assert target.slab_builds == 0
        for page_type in PageType:
            for block in (0, 9):
                original, _ = source.behaviour(page_type, 1000, 6.0, 1, block)
                installed, from_grid = target.behaviour(page_type, 1000, 6.0,
                                                        1, block)
                assert from_grid
                assert installed == original

    def test_install_skips_existing_conditions(self, config, default_rpt):
        source = RetryStepGrid(config, rpt=default_rpt)
        source.prefill([(500, 1.0)])
        payload = source.export_slabs()
        target = RetryStepGrid(config, rpt=default_rpt)
        target.prefill([(500, 1.0)])
        assert target.install_slabs(payload) == 0

    def test_export_filter(self, config, default_rpt):
        grid_obj = RetryStepGrid(config, rpt=default_rpt)
        grid_obj.prefill([(100, 0.0), (200, 0.0)])
        only = grid_obj.export_slabs([(200, 0.0)])
        assert len(only) == 1
        assert only[0]["pe_cycles"] == 200


class TestSharedGrids:
    def test_same_config_and_rpt_share_a_grid(self, config, default_rpt):
        clear_shared_grids()
        try:
            first = shared_grid(config, default_rpt)
            second = shared_grid(SsdConfig.tiny(), default_rpt)
            assert first is second
        finally:
            clear_shared_grids()

    def test_fingerprint_is_value_based(self, default_rpt):
        rebuilt = pickle.loads(pickle.dumps(default_rpt))
        assert rebuilt is not default_rpt
        assert rpt_fingerprint(rebuilt) == rpt_fingerprint(default_rpt)
        assert (rpt_fingerprint(ReadTimingParameterTable.conservative())
                != rpt_fingerprint(default_rpt))

    def test_custom_models_get_private_grids(self, config, default_rpt):
        clear_shared_grids()
        try:
            custom = FlashBackend(config, rpt=default_rpt,
                                  retry_table=ReadRetryTable(num_entries=4))
            default = FlashBackend(config, rpt=default_rpt)
            assert custom.grid is not default.grid
            assert custom.grid is not shared_grid(config, default_rpt)
            other = FlashBackend(config, rpt=default_rpt,
                                 error_model=CodewordErrorModel())
            assert other.grid is not default.grid
        finally:
            clear_shared_grids()


class TestSimulatorIntegration:
    def test_metrics_expose_grid_counters(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="PnAR2", rpt=default_rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0)
        requests = [HostRequest(i * 50.0, RequestKind.READ, i * 7)
                    for i in range(30)]
        result = simulator.run(requests)
        metrics = result.metrics
        assert metrics.grid_hits > 0
        assert metrics.grid_hits + metrics.scalar_fallbacks >= 30
        summary = metrics.summary()
        assert summary["grid_hits"] == metrics.grid_hits
        assert summary["scalar_fallbacks"] == metrics.scalar_fallbacks

    def test_preconditioned_reads_hit_the_grid(self, config, default_rpt):
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        simulator.precondition(pe_cycles=2000, retention_months=12.0)
        requests = [HostRequest(i * 50.0, RequestKind.READ, i * 3)
                    for i in range(20)]
        result = simulator.run(requests)
        # The cold-data slab was prefilled, so no read needed a scalar walk.
        assert result.metrics.scalar_fallbacks == 0
        assert result.metrics.grid_hits >= 20
