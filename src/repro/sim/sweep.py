"""Parallel (workload x condition x policy) sweep execution.

The Figure 14/15 grids are embarrassingly parallel: every (workload,
condition) cell is an independent simulation.  :class:`SweepRunner` fans the
cells out over a ``multiprocessing`` pool — the first time this codebase can
use more than one core — while guaranteeing that ``processes=N`` produces
*bitwise-identical* rows to a serial run:

* every cell is executed by the same pure worker function, seeded only by
  its own (workload, condition) payload;
* configs and workload specs travel to the workers as plain dicts (the same
  JSON round-trip a run manifest uses); a custom RPT, being immutable
  tabular data, is pickled as-is;
* results come back in deterministic (workload, condition) submission order.

The pool uses the ``fork`` start method where available so that policies
registered at runtime (via :func:`repro.sim.register_policy`) remain
resolvable inside workers; on spawn-only platforms, third-party policies
must be registered at import time of a module the workers import.

Request streams depend only on (workload spec, seed, footprint), not on the
operating condition, so each process keeps a small per-stream cache instead
of regenerating the stream for every condition cell the way the seed's
``run_workload_grid`` did.  Since the simulator stopped mutating host
requests, the cache holds the :class:`HostRequest` objects themselves and
every (condition, policy) cell replays them directly.

Retry-step grids are likewise built once, not per worker: the parent
vectorizes the slabs of every condition in the sweep and publishes them
through :mod:`repro.ssd.slab_transport` (one shared-memory segment whose
descriptor rides in every payload; inline pickled slabs when shared memory
is unavailable), and workers install them into their process-shared
:func:`repro.ssd.retry_grid.shared_grid` (a no-op under ``fork``, where the
parent's grids are inherited) instead of recomputing behaviour lattices.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union
from zlib import crc32

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.registry import default_registry
from repro.sim.spec import Condition, WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, SsdSimulator
from repro.ssd.metrics import normalized_response_times
from repro.ssd.request import HostRequest
from repro.ssd.retry_grid import shared_grid
from repro.ssd.slab_transport import payload_slabs, publish_slabs
from repro.workloads.catalog import WORKLOAD_CATALOG

#: Default mean inter-arrival time of generated streams; matches the seed's
#: system-level experiments (keeps the Baseline SSD below saturation at the
#: worst condition, so the results measure mechanisms, not queueing collapse).
DEFAULT_MEAN_INTERARRIVAL_US = 700.0

# -- per-process state ---------------------------------------------------------
#: Generated HostRequest lists per stream key.  Streams are
#: condition-independent and the simulator no longer mutates host requests,
#: so one generation serves every (condition, policy) cell a process
#: executes — the requests themselves are shared, not copied.
_STREAM_CACHE: Dict[tuple, List[HostRequest]] = {}
_STREAM_CACHE_STATS = {"hits": 0, "misses": 0}

#: Lazily built default RPT, shared by every cell a process executes.
_DEFAULT_RPT: List[Optional[ReadTimingParameterTable]] = [None]


def _default_rpt() -> ReadTimingParameterTable:
    if _DEFAULT_RPT[0] is None:
        _DEFAULT_RPT[0] = ReadTimingParameterTable.default()
    return _DEFAULT_RPT[0]


def pool_map(func, payloads: Sequence, processes: int, on_result=None) -> List:
    """``[func(p) for p in payloads]``, optionally over a process pool.

    The shared fan-out primitive of the sweep runner and the experiment
    suite runner.  Prefers the ``fork`` start method so objects registered
    at runtime (policies, experiments) remain resolvable inside workers; on
    spawn-only platforms workers re-import the registering modules, so only
    import-time registrations resolve.  Falls back to a serial map when a
    pool would not help (one payload) or is impossible (already inside a
    daemonic pool worker, which may not spawn children).

    :param on_result: optional callback invoked in the parent, in payload
        order, as each result arrives — results completed before a later
        payload fails have already been delivered, which is what lets the
        suite runner persist partial progress.
    """
    count = min(processes, len(payloads))
    if count <= 1 or multiprocessing.current_process().daemon:
        results = []
        for payload in payloads:
            result = func(payload)
            if on_result is not None:
                on_result(result)
            results.append(result)
        return results
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    with context.Pool(count) as pool:
        if on_result is None:
            return pool.map(func, payloads)
        results = []
        for result in pool.imap(func, payloads):
            on_result(result)
            results.append(result)
        return results


class WorkerPool:
    """A reusable process pool with :func:`pool_map` semantics.

    :func:`pool_map` spins a pool up and tears it down per call — fine for
    one sweep grid, wasteful for a fleet streaming dozens of shards through
    the same workers.  ``WorkerPool`` keeps one pool alive across
    :meth:`map` calls (created lazily on the first call that can actually
    use it) and mirrors ``pool_map``'s serial fallbacks, so results stay
    bitwise-identical to a serial run.  Use as a context manager; on a
    clean exit the pool is closed and joined, on an exception it is
    terminated.
    """

    def __init__(self, processes: int):
        if processes < 1:
            raise ValueError("processes must be at least 1")
        self.processes = processes
        self._pool = None

    def map(self, func, payloads: Sequence) -> List:
        count = min(self.processes, len(payloads))
        if count <= 1 or multiprocessing.current_process().daemon:
            return [func(payload) for payload in payloads]
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context("fork" if "fork" in methods else None)
            self._pool = context.Pool(self.processes)
        return self._pool.map(func, payloads)

    def close(self, terminate: bool = False) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        if terminate:
            pool.terminate()
        else:
            pool.close()
        pool.join()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(terminate=exc_type is not None)


def _cached_stream(spec: WorkloadSpec, config: SsdConfig) -> List[HostRequest]:
    key = spec.stream_key(config)
    requests = _STREAM_CACHE.get(key)
    if requests is None:
        _STREAM_CACHE_STATS["misses"] += 1
        requests = spec.build_requests(config)
        _STREAM_CACHE[key] = requests
    else:
        _STREAM_CACHE_STATS["hits"] += 1
    return requests


def _run_cell(payload: dict) -> Tuple[str, Tuple[int, float], Dict[str, SimulationResult]]:
    """Execute one (workload, condition) cell against every policy.

    Pure function of its payload — the serial and parallel paths both call
    it, which is what makes ``processes=N`` bitwise-identical to serial.
    """
    config = SsdConfig.from_dict(payload["config"])
    spec = WorkloadSpec.from_dict(payload["workload"])
    condition = Condition.from_dict(payload["condition"])
    rpt = payload.get("rpt") or _default_rpt()
    slabs = payload_slabs(payload)
    if slabs:
        # Install the parent-built retry-step slabs into this process's
        # shared grid instead of recomputing them per worker (a fork-start
        # worker usually inherited them already; install_slabs then no-ops).
        shared_grid(config, rpt).install_slabs(slabs)
    registry = default_registry()
    stream = _cached_stream(spec, config)
    results: Dict[str, SimulationResult] = {}
    for name in payload["policies"]:
        policy = registry.create(name, timing=config.timing, rpt=rpt)
        simulator = SsdSimulator(config=config, policy=policy, rpt=rpt)
        simulator.precondition(
            pe_cycles=condition.pe_cycles, retention_months=condition.retention_months
        )
        result = simulator.run(stream)
        results[result.policy_name] = result
    return spec.label, condition.as_tuple(), results


def _workload_class(spec: WorkloadSpec) -> str:
    if spec.name is not None:
        read_dominant = WORKLOAD_CATALOG[spec.name].read_dominant
    else:
        read_dominant = spec.shape.read_ratio >= 0.75
    return "read-dominant" if read_dominant else "write-dominant"


def rows_from_cells(
    workloads: Sequence[WorkloadSpec],
    conditions: Sequence[Condition],
    cells: Dict[tuple, Dict[str, SimulationResult]],
    baseline: str = "Baseline",
) -> List[dict]:
    """Tidy normalized-response-time rows (the Figure 14/15 long format)."""
    rows = []
    for spec in workloads:
        for condition in conditions:
            cell = cells[(spec.label,) + condition.as_tuple()]
            normalized = normalized_response_times(
                {name: result.metrics for name, result in cell.items()}, baseline=baseline
            )
            for policy, value in normalized.items():
                metrics = cell[policy].metrics
                combined = metrics.latency("all")
                rows.append(
                    {
                        "workload": spec.label,
                        "class": _workload_class(spec),
                        "pe_cycles": condition.pe_cycles,
                        "retention_months": condition.retention_months,
                        "policy": policy,
                        "normalized_response_time": round(value, 4),
                        "mean_response_us": round(metrics.mean_response_time_us(), 2),
                        "p99_response_us": round(combined.p99(), 2),
                        "p999_response_us": round(combined.p999(), 2),
                        "write_amplification": round(metrics.write_amplification(), 4),
                        "mapping_cache_hit_rate": round(metrics.mapping_cache_hit_rate(), 4),
                        "gc_invocations": metrics.gc_invocations,
                        "translation_reads": metrics.translation_reads,
                        "translation_writes": metrics.translation_writes,
                    }
                )
    return rows


@dataclass
class SweepResult:
    """Tidy result of one sweep: long-format rows plus the raw cells."""

    workloads: List[WorkloadSpec]
    conditions: List[Condition]
    policies: List[str]
    baseline: str
    cells: Dict[tuple, Dict[str, SimulationResult]]
    rows: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.rows:
            self.rows = rows_from_cells(
                self.workloads, self.conditions, self.cells, baseline=self.baseline
            )

    # -- access ---------------------------------------------------------------
    def cell(self, workload: str, pe_cycles: int, retention_months: float):
        return self.cells[(workload, pe_cycles, float(retention_months))]

    def filter_rows(self, **criteria) -> List[dict]:
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def to_grid(self) -> dict:
        """Legacy nested layout: ``grid[workload][(pec, months)][policy]``."""
        grid: dict = {}
        for (workload, pec, months), cell in self.cells.items():
            grid.setdefault(workload, {})[(pec, months)] = cell
        return grid

    # -- rendering ------------------------------------------------------------
    def table(self, max_rows: Optional[int] = None) -> str:
        """Fixed-width text table of the rows."""
        if not self.rows:
            return "(empty sweep)"
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        columns = list(rows[0].keys())
        widths = {
            column: max(len(str(column)), *(len(str(row[column])) for row in rows))
            for column in columns
        }
        lines = ["  ".join(str(column).ljust(widths[column]) for column in columns)]
        lines.append("-" * len(lines[0]))
        for row in rows:
            lines.append("  ".join(str(row[column]).ljust(widths[column]) for column in columns))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.table(max_rows=30)


class SweepRunner:
    """Executes a (workload x condition x policy) grid, optionally in parallel.

    :param processes: worker-process count; 1 (default) runs in-process.
    :param per_cell_seeds: derive an independent stream seed per (workload,
        condition) cell instead of sharing the workload's seed across
        conditions.  Defaults to False, which matches the seed harnesses'
        semantics and lets the stream cache serve every condition cell.
    """

    def __init__(
        self,
        config: Optional[SsdConfig] = None,
        processes: int = 1,
        rpt: Optional[ReadTimingParameterTable] = None,
        mean_interarrival_us: float = DEFAULT_MEAN_INTERARRIVAL_US,
        footprint_fraction: float = 0.8,
        per_cell_seeds: bool = False,
        use_shared_memory: bool = True,
    ):
        if processes < 1:
            raise ValueError("processes must be at least 1")
        self.config = config or SsdConfig.scaled()
        self.processes = processes
        self.rpt = rpt
        self.mean_interarrival_us = mean_interarrival_us
        self.footprint_fraction = footprint_fraction
        self.per_cell_seeds = per_cell_seeds
        self.use_shared_memory = use_shared_memory
        self._registry = default_registry()

    # -- grid construction ----------------------------------------------------
    def _coerce_workloads(self, workloads, num_requests, seed):
        specs = []
        for workload in workloads:
            if isinstance(workload, WorkloadSpec):
                # An explicit spec keeps its own arrival rate and footprint;
                # only the run() arguments the caller actually passed win.
                specs.append(WorkloadSpec.coerce(workload, num_requests=num_requests, seed=seed))
            else:
                specs.append(
                    WorkloadSpec.coerce(
                        workload,
                        num_requests=num_requests,
                        seed=seed,
                        mean_interarrival_us=self.mean_interarrival_us,
                        footprint_fraction=self.footprint_fraction,
                    )
                )
        return specs

    def _cell_seed(self, spec: WorkloadSpec, condition: Condition) -> int:
        if not self.per_cell_seeds:
            return spec.seed
        digest = crc32(
            f"{spec.label}|{condition.pe_cycles}|{condition.retention_months:g}".encode()
        )
        return (spec.seed * 1_000_003 + digest) % (2**31)

    def _payloads(self, specs, conditions, policies):
        config_dict = self.config.to_dict()
        payloads = []
        for spec in specs:
            for condition in conditions:
                cell_spec = spec
                cell_seed = self._cell_seed(spec, condition)
                if cell_seed != spec.seed:
                    cell_spec = WorkloadSpec.coerce(spec, seed=cell_seed)
                payloads.append(
                    {
                        "config": config_dict,
                        "workload": cell_spec.to_dict(),
                        "condition": condition.to_dict(),
                        "policies": tuple(policies),
                        "rpt": self.rpt,
                    }
                )
        return payloads

    def _attach_grid_slabs(self, payloads, conditions):
        """Precompute retry-step slabs once and ship them with each cell.

        Every cell reads cold data at its condition and rewritten data at
        (P/E, 0); building those slabs in the parent means workers install
        the grid instead of each recomputing it (the point of sharing — one
        vectorized pass serves the whole sweep).  The slabs travel through
        shared memory when available (payloads then carry only the
        segment's descriptor); otherwise each payload gets its own cell's
        slabs inline, exactly the old pickle path.  Returns the published
        :class:`~repro.ssd.slab_transport.SlabSegment` (or ``None``); the
        caller must ``close()`` it after the map.
        """
        grid = shared_grid(self.config, self.rpt or _default_rpt())
        pairs = set()
        for condition in conditions:
            pairs.add((condition.pe_cycles, float(condition.retention_months)))
            pairs.add((condition.pe_cycles, 0.0))
        exports = {}
        for pair in sorted(pairs):
            # Export each slab immediately after its prefill: a sweep with
            # more conditions than the grid's slab bound would otherwise
            # evict early slabs before the batch export reads them.
            grid.prefill([pair])
            exports[pair] = grid.export_slabs([pair])[0]
        segment = None
        if self.use_shared_memory:
            segment = publish_slabs([exports[pair] for pair in sorted(exports)])
        if segment is not None:
            for payload in payloads:
                payload["grid_segment"] = segment.descriptor
            return segment
        for payload in payloads:
            cell = payload["condition"]
            cell_pairs = [
                (cell["pe_cycles"], float(cell["retention_months"])),
                (cell["pe_cycles"], 0.0),
            ]
            payload["grid_slabs"] = [exports[pair] for pair in dict.fromkeys(cell_pairs)]
        return None

    # -- execution ------------------------------------------------------------
    def run(
        self,
        policies: Optional[Iterable[str]] = None,
        workloads: Iterable[Union[str, WorkloadSpec]] = (),
        conditions: Iterable[Union[Condition, tuple]] = ((0, 0.0),),
        num_requests: Optional[int] = None,
        seed: Optional[int] = None,
        baseline: str = "Baseline",
    ) -> SweepResult:
        """Run the grid and return a :class:`SweepResult`.

        :param policies: registry names (defaults to every registered policy).
        :param workloads: Table 2 names or :class:`WorkloadSpec` objects.
        :param conditions: ``(pe_cycles, retention_months)`` pairs or
            :class:`Condition` objects.
        """
        policy_names = tuple(
            self._registry.canonical_name(name)
            for name in (policies if policies is not None else self._registry.names())
        )
        specs = self._coerce_workloads(workloads, num_requests, seed)
        if not specs:
            raise ValueError("no workloads given")
        labels = [spec.label for spec in specs]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"workload labels collide: {labels}; cells are keyed by "
                "label, so each workload needs a distinct one"
            )
        condition_objs = [Condition.coerce(condition) for condition in conditions]
        if not condition_objs:
            raise ValueError("no conditions given")
        if baseline not in policy_names:
            # Normalizing needs a reference that actually ran; fall back to
            # the first policy (its rows then read exactly 1.0).
            baseline = policy_names[0]
        payloads = self._payloads(specs, condition_objs, policy_names)
        segment = self._attach_grid_slabs(payloads, condition_objs)
        try:
            outcomes = pool_map(_run_cell, payloads, self.processes)
        finally:
            if segment is not None:
                segment.close()

        cells = {(label, pec, months): results for label, (pec, months), results in outcomes}
        return SweepResult(
            workloads=specs,
            conditions=condition_objs,
            policies=list(policy_names),
            baseline=baseline,
            cells=cells,
        )
