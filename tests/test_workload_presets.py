"""Tests for the MSRC and YCSB generator presets."""

import pytest

from repro.ssd.request import RequestKind
from repro.workloads.msrc import make_msrc_workload, msrc_shape
from repro.workloads.ycsb import make_ycsb_workload, ycsb_shape


class TestMsrcPreset:
    def test_shape_carries_ratios(self):
        shape = msrc_shape(read_ratio=0.36, cold_ratio=0.22)
        assert shape.read_ratio == 0.36
        assert shape.cold_ratio == 0.22
        assert shape.zipf_theta == 0.0
        assert shape.sequential_fraction > 0.2

    def test_generator_produces_multi_page_requests(self):
        workload = make_msrc_workload(0.75, 0.72, footprint_pages=4096, seed=1)
        requests = workload.generate(400)
        assert any(request.page_count > 1 for request in requests)

    def test_interarrival_override(self):
        workload = make_msrc_workload(0.9, 0.9, footprint_pages=4096, seed=1,
                                      mean_interarrival_us=50.0)
        requests = workload.generate(300)
        duration = requests[-1].arrival_us
        assert duration / len(requests) < 120.0


class TestYcsbPreset:
    def test_shape_is_skewed_and_small_requests(self):
        shape = ycsb_shape(read_ratio=0.99, cold_ratio=0.6)
        assert shape.zipf_theta == pytest.approx(0.99)
        assert shape.mean_request_pages < 2.0

    def test_scan_heavy_variant(self):
        shape = ycsb_shape(read_ratio=0.99, cold_ratio=0.98, scan_heavy=True)
        assert shape.mean_request_pages > 2.0
        assert shape.sequential_fraction >= 0.4

    def test_generator_is_read_dominated(self):
        workload = make_ycsb_workload(0.98, 0.72, footprint_pages=4096, seed=2)
        requests = workload.generate(500)
        reads = sum(1 for request in requests
                    if request.kind is RequestKind.READ)
        assert reads / len(requests) > 0.93

    def test_zipf_concentrates_accesses(self):
        workload = make_ycsb_workload(1.0, 0.0, footprint_pages=8192, seed=3)
        requests = workload.generate(800)
        # With theta ~ 0.99, a small fraction of pages receives a large share
        # of the accesses.
        counts = {}
        for request in requests:
            counts[request.start_lpn] = counts.get(request.start_lpn, 0) + 1
        top_share = sum(sorted(counts.values(), reverse=True)[:20]) / len(requests)
        assert top_share > 0.15
