#!/usr/bin/env python3
"""Replay an MSRC-format block trace on the simulated SSD — streaming.

Demonstrates the streaming trace substrate: the example first synthesizes a
trace file in the MSRC CSV layout (the same layout the public enterprise
traces use), so the script is self-contained, then replays it through the
iterator-based reader — CSV rows flow through
``iter_msrc_csv -> iter_records_to_requests -> SsdSimulator.run`` one
request at a time, so the trace is never materialized in memory and the
same command handles a million-line file.  Each policy re-opens the file
via a stream factory, and the fixed-memory histogram recorder reports the
latency tail (p50/p99/p999) alongside the mean.

Point ``--trace`` at a real MSRC CSV file to replay it instead.

Usage::

    python examples/trace_replay.py [--trace FILE] [--requests N]
"""

import argparse
import os
import tempfile

from repro.sim import Simulation
from repro.ssd.config import SsdConfig
from repro.workloads import (
    iter_msrc_csv,
    iter_records_to_requests,
    iter_workload,
    write_msrc_csv,
)
from repro.workloads.trace import TraceRecord


def synthesize_trace(path: str, num_requests: int, page_size: int) -> None:
    """Stream a prn_1-like request sequence into an MSRC CSV file."""
    records = (TraceRecord(timestamp_us=request.arrival_us,
                           is_read=request.is_read,
                           offset_bytes=request.start_lpn * page_size,
                           size_bytes=request.page_count * page_size,
                           hostname="prn", disk_number=1)
               for request in iter_workload("prn_1", num_requests,
                                            footprint_pages=8192, seed=11))
    write_msrc_csv(records, path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=str, default=None,
                        help="MSRC CSV trace to replay (synthesized if omitted)")
    parser.add_argument("--requests", type=int, default=500,
                        help="max requests to replay (and to synthesize)")
    parser.add_argument("--pe-cycles", type=int, default=1000)
    parser.add_argument("--retention-months", type=float, default=6.0)
    args = parser.parse_args()

    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)
    page_size = config.page_size_kib * 1024

    trace_path = args.trace
    synthesized = False
    if trace_path is None:
        handle, trace_path = tempfile.mkstemp(suffix=".csv", prefix="msrc_")
        os.close(handle)
        synthesize_trace(trace_path, args.requests, page_size)
        synthesized = True
        print(f"Synthesized an MSRC-format trace at {trace_path}")

    def request_stream():
        # Re-opened per policy: CSV rows stream straight into the simulator
        # through the bounded-lookahead pump, one request in memory at a time.
        return iter_records_to_requests(
            iter_msrc_csv(trace_path, max_records=args.requests),
            page_size_bytes=page_size,
            logical_pages=config.logical_pages)

    run = (Simulation(config)
           .policies("Baseline", "PnAR2")
           .stream(request_stream)
           # Real multi-disk captures can be locally out of timestamp
           # order; a generous pump window absorbs that while still keeping
           # memory O(window).  Sort heavily-shuffled traces once offline.
           .lookahead(4096)
           .condition(pec=args.pe_cycles, months=args.retention_months)
           .run())
    first = next(iter(run.results.values()))
    replayed = first.metrics.host_reads + first.metrics.host_writes
    print(f"Replayed {replayed} requests per policy "
          "(streaming, trace never materialized)")
    for policy, result in run:
        metrics = result.metrics
        combined = metrics.latency("all")  # one merge serves all percentiles
        print(f"  {policy:<9} mean "
              f"{metrics.mean_response_time_us():8.1f} us | "
              f"p50 {combined.percentile(50.0):8.1f} us | "
              f"p99 {combined.p99():8.1f} us | "
              f"p999 {combined.p999():8.1f} us | "
              f"mean retry steps {metrics.mean_retry_steps():.1f}")

    if synthesized:
        os.unlink(trace_path)


if __name__ == "__main__":
    main()
