"""Tests for operating conditions and the characterization grid."""

import pytest

from repro.errors.condition import (
    CHARACTERIZATION_PE_CYCLES,
    CHARACTERIZATION_RETENTION_MONTHS,
    MANUFACTURER_WORST_CASE,
    OperatingCondition,
    characterization_grid,
)


class TestOperatingCondition:
    def test_defaults(self):
        condition = OperatingCondition()
        assert condition.pe_cycles == 0
        assert condition.retention_months == 0.0
        assert condition.temperature_c == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingCondition(pe_cycles=-1)
        with pytest.raises(ValueError):
            OperatingCondition(retention_months=-0.5)
        with pytest.raises(ValueError):
            OperatingCondition(temperature_c=200.0)

    def test_kilo_pe_cycles(self):
        assert OperatingCondition(pe_cycles=1500).kilo_pe_cycles == 1.5

    def test_with_helpers_return_new_instances(self):
        base = OperatingCondition(pe_cycles=1000)
        warmer = base.with_temperature(85.0)
        assert warmer.temperature_c == 85.0
        assert base.temperature_c == 30.0
        assert base.with_retention(6.0).retention_months == 6.0
        assert base.with_pe_cycles(2000).pe_cycles == 2000

    def test_key_is_hashable_and_stable(self):
        first = OperatingCondition(1000, 6.0, 30.0)
        second = OperatingCondition(1000, 6.0, 30.0)
        assert first.key() == second.key()
        assert hash(first.key()) == hash(second.key())

    def test_label_formats_kilocycles(self):
        assert "1K PEC" in OperatingCondition(1000, 6.0, 85.0).label()
        assert "500 PEC" in OperatingCondition(500, 0.0, 85.0).label()

    def test_manufacturer_worst_case(self):
        # Section 5.1: a 1-year retention age at 1.5K P/E cycles.
        assert MANUFACTURER_WORST_CASE.pe_cycles == 1500
        assert MANUFACTURER_WORST_CASE.retention_months == 12.0


class TestCharacterizationGrid:
    def test_grid_size(self):
        grid = list(characterization_grid())
        assert len(grid) == (len(CHARACTERIZATION_PE_CYCLES)
                             * len(CHARACTERIZATION_RETENTION_MONTHS))

    def test_grid_with_multiple_temperatures(self):
        grid = list(characterization_grid(temperatures=(85.0, 30.0)))
        assert len({condition.temperature_c for condition in grid}) == 2
