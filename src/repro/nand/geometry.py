"""Physical organization of 3D NAND flash memory and address arithmetic.

The hierarchy follows Section 2.1 and Figure 1 of the paper: flash cells are
stacked vertically into NAND strings, strings at different bitlines form a
sub-block, several sub-blocks form a block, thousands of blocks form a plane,
multiple planes form a die and multiple dies form a chip.  For the purposes
of this reproduction the externally visible units are:

``chip -> die -> plane -> block -> wordline -> page``

A TLC wordline stores three pages (LSB, CSB, MSB), each read with a different
number of sensing operations (``N_SENSE`` = 2, 3, 2 respectively, footnote 14
of the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class PageType(enum.Enum):
    """Bit position of a page within a TLC wordline.

    The page type determines how many threshold-voltage boundaries must be
    sensed to read the page and therefore how long the page sensing takes
    (Equation (1) of the paper).
    """

    LSB = "lsb"
    CSB = "csb"
    MSB = "msb"

    @property
    def n_sense(self) -> int:
        """Number of sensing operations required to read this page type."""
        return _N_SENSE[self]

    @property
    def sensed_boundaries(self) -> tuple:
        """Indices of the V_REF boundaries sensed for this page type.

        TLC NAND flash distinguishes eight threshold-voltage states with
        seven read-reference voltages ``VREF0 .. VREF6``.  With the standard
        2-3-2 Gray code (Figure 3(b)), the LSB page is resolved by sensing
        boundaries 0 and 4, the CSB page by boundaries 1, 3 and 5, and the
        MSB page by boundaries 2 and 6.
        """
        return _SENSED_BOUNDARIES[self]


_N_SENSE = {PageType.LSB: 2, PageType.CSB: 3, PageType.MSB: 2}

_SENSED_BOUNDARIES = {
    PageType.LSB: (0, 4),
    PageType.CSB: (1, 3, 5),
    PageType.MSB: (2, 6),
}

#: Order in which the three pages of a wordline are laid out.
PAGE_TYPE_ORDER = (PageType.LSB, PageType.CSB, PageType.MSB)


@dataclass(frozen=True)
class ChipGeometry:
    """Dimensions of a NAND flash chip.

    The defaults reproduce the simulated SSD of Section 7.1: 4 dies per
    channel and 2 planes per die, 1,888 blocks per plane, 576 16-KiB pages
    per block.  576 pages over 3 pages per wordline gives 192 wordlines per
    block.
    """

    dies_per_chip: int = 4
    planes_per_die: int = 2
    blocks_per_plane: int = 1888
    wordlines_per_block: int = 192
    page_size_bytes: int = 16 * 1024
    codeword_data_bytes: int = 1024

    def __post_init__(self) -> None:
        for name in ("dies_per_chip", "planes_per_die", "blocks_per_plane",
                     "wordlines_per_block", "page_size_bytes",
                     "codeword_data_bytes"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.page_size_bytes % self.codeword_data_bytes:
            raise ValueError(
                "page_size_bytes must be a multiple of codeword_data_bytes")

    # -- derived quantities -------------------------------------------------
    @property
    def pages_per_wordline(self) -> int:
        """Three pages (LSB/CSB/MSB) per TLC wordline."""
        return len(PAGE_TYPE_ORDER)

    @property
    def pages_per_block(self) -> int:
        return self.wordlines_per_block * self.pages_per_wordline

    @property
    def pages_per_plane(self) -> int:
        return self.pages_per_block * self.blocks_per_plane

    @property
    def pages_per_die(self) -> int:
        return self.pages_per_plane * self.planes_per_die

    @property
    def pages_per_chip(self) -> int:
        return self.pages_per_die * self.dies_per_chip

    @property
    def blocks_per_die(self) -> int:
        return self.blocks_per_plane * self.planes_per_die

    @property
    def blocks_per_chip(self) -> int:
        return self.blocks_per_die * self.dies_per_chip

    @property
    def codewords_per_page(self) -> int:
        return self.page_size_bytes // self.codeword_data_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.pages_per_chip * self.page_size_bytes

    # -- address helpers ----------------------------------------------------
    def page_type_of(self, page_in_block: int) -> PageType:
        """Return the page type of the ``page_in_block``-th page of a block."""
        self._check_range(page_in_block, self.pages_per_block, "page_in_block")
        return PAGE_TYPE_ORDER[page_in_block % self.pages_per_wordline]

    def wordline_of(self, page_in_block: int) -> int:
        """Return the wordline index of the ``page_in_block``-th page."""
        self._check_range(page_in_block, self.pages_per_block, "page_in_block")
        return page_in_block // self.pages_per_wordline

    def make_address(self, die: int, plane: int, block: int,
                     page: int) -> "PageAddress":
        """Build a validated :class:`PageAddress`."""
        self._check_range(die, self.dies_per_chip, "die")
        self._check_range(plane, self.planes_per_die, "plane")
        self._check_range(block, self.blocks_per_plane, "block")
        self._check_range(page, self.pages_per_block, "page")
        return PageAddress(die=die, plane=plane, block=block, page=page,
                           page_type=self.page_type_of(page),
                           wordline=self.wordline_of(page))

    def flat_page_index(self, address: "PageAddress") -> int:
        """Map an address to a dense integer in ``[0, pages_per_chip)``."""
        return (((address.die * self.planes_per_die + address.plane)
                 * self.blocks_per_plane + address.block)
                * self.pages_per_block + address.page)

    def address_from_flat(self, index: int) -> "PageAddress":
        """Inverse of :meth:`flat_page_index`."""
        self._check_range(index, self.pages_per_chip, "index")
        page = index % self.pages_per_block
        index //= self.pages_per_block
        block = index % self.blocks_per_plane
        index //= self.blocks_per_plane
        plane = index % self.planes_per_die
        die = index // self.planes_per_die
        return self.make_address(die, plane, block, page)

    def flat_block_index(self, die: int, plane: int, block: int) -> int:
        """Map ``(die, plane, block)`` to a dense integer block identifier."""
        self._check_range(die, self.dies_per_chip, "die")
        self._check_range(plane, self.planes_per_die, "plane")
        self._check_range(block, self.blocks_per_plane, "block")
        return ((die * self.planes_per_die + plane)
                * self.blocks_per_plane + block)

    def iter_block_addresses(self):
        """Yield ``(die, plane, block)`` triples for every block in the chip."""
        for die in range(self.dies_per_chip):
            for plane in range(self.planes_per_die):
                for block in range(self.blocks_per_plane):
                    yield die, plane, block

    @staticmethod
    def _check_range(value: int, upper: int, name: str) -> None:
        if not 0 <= value < upper:
            raise ValueError(f"{name} out of range: {value} (limit {upper})")

    @classmethod
    def small(cls) -> "ChipGeometry":
        """A reduced geometry used in tests and fast examples."""
        return cls(dies_per_chip=2, planes_per_die=2, blocks_per_plane=32,
                   wordlines_per_block=16)


@dataclass(frozen=True)
class PageAddress:
    """Fully qualified physical address of one page within a chip."""

    die: int
    plane: int
    block: int
    page: int
    page_type: PageType = field(default=PageType.LSB)
    wordline: int = field(default=0)

    def same_wordline(self, other: "PageAddress") -> bool:
        """Whether two addresses refer to pages of the same wordline."""
        return (self.die == other.die and self.plane == other.plane
                and self.block == other.block
                and self.wordline == other.wordline)

    def block_key(self) -> tuple:
        """A hashable identifier of the block containing this page."""
        return (self.die, self.plane, self.block)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"die{self.die}/plane{self.plane}/blk{self.block}"
                f"/pg{self.page}({self.page_type.value})")
