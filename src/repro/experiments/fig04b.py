"""Figure 4(b): RBER reduction over the last retry steps of a read.

The paper shows two example pages whose reads need 16 and 21 retry steps;
the raw bit error count stays in the hundreds until the very last steps and
collapses below the 72-bit ECC capability only in the final step, because
only the final step's read voltages are close to optimal.
"""

from __future__ import annotations

from repro.characterization.margin import rber_per_retry_step
from repro.errors.calibration import ECC_CALIBRATION
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult


@register_experiment(
    "fig04b",
    artifact="Figure 4(b) — RBER over the last retry steps",
    tags=("paper", "figure", "characterization"),
    params=(
        param("last_steps", 4, "how many final retry steps to report"),
        param("seed", 0, "stream seed (the error model is deterministic; "
                         "declared so the cache key carries it)"),
    ))
def run(last_steps: int = 4, seed: int = 0) -> ExperimentResult:
    rows = rber_per_retry_step(last_steps=last_steps)
    headline = {
        "ECC capability [errors/KiB]": ECC_CALIBRATION.capability_bits,
    }
    for row in rows:
        headline[f"retry steps @ {row['condition']}"] = row["total_retry_steps"]
        headline[f"final-step errors @ {row['condition']}"] = row["final_step_errors"]
    return ExperimentResult(
        name="fig04b",
        title="Figure 4(b): raw bit errors over the last retry steps",
        rows=rows,
        headline=headline,
        notes=["the paper's example pages need 16 and 21 retry steps; the "
               "two aged conditions used here produce comparable counts"],
    )


def main() -> None:  # pragma: no cover
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
