"""Tests for the analysis helpers."""

import pytest

from repro.analysis import (
    bootstrap_confidence_interval,
    format_table,
    geometric_mean,
    rows_to_csv,
    summarize,
)
from repro.analysis.tables import save_rows


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_bootstrap_interval_contains_mean(self):
        values = [10.0, 12.0, 11.0, 9.0, 13.0, 10.5]
        low, high = bootstrap_confidence_interval(values, seed=1)
        mean = sum(values) / len(values)
        assert low <= mean <= high
        assert low < high

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([1.0], confidence=1.5)

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        with pytest.raises(ValueError):
            summarize([])


class TestTables:
    ROWS = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]

    def test_format_table(self):
        text = format_table(self.ROWS)
        assert "name" in text and "bb" in text
        assert format_table([]) == "(empty table)"

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(self.ROWS)
        assert csv_text.splitlines()[0] == "name,value"
        assert rows_to_csv([]) == ""

    def test_save_rows(self, tmp_path):
        path = tmp_path / "rows.csv"
        count = save_rows(self.ROWS, str(path))
        assert count == 2
        assert path.read_text().startswith("name,value")
