#!/usr/bin/env python
"""Run the benchmark suite and maintain the ``BENCH_<rev>.json`` trajectory.

Wraps ``pytest-benchmark`` so that performance tracking is one command:

* runs the selected benchmark suite (``micro`` by default — the hot-path
  micro-benchmarks; ``figures`` or ``all`` for the paper-artifact
  regeneration benchmarks),
* emits a machine-readable ``BENCH_<rev>.json`` snapshot keyed by the git
  revision (the repo's performance trajectory),
* compares the hot-path means against a committed baseline
  (``benchmarks/baseline.json``) and exits non-zero when any benchmark
  regressed by more than ``--max-regression`` (CI's perf gate),
* regenerates the baseline with ``--update-baseline`` (run on the reference
  machine after an intentional perf change; absolute times are
  machine-dependent, so regenerate it when the reference hardware changes).

Examples::

    python scripts/run_benchmarks.py
    python scripts/run_benchmarks.py --suite all --no-compare
    python scripts/run_benchmarks.py --update-baseline
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_BASELINE = BENCH_DIR / "baseline.json"

SUITES = {
    "micro": ["benchmarks/test_bench_micro.py"],
    "figures": [
        "benchmarks/test_bench_characterization_figures.py",
        "benchmarks/test_bench_fig14.py",
        "benchmarks/test_bench_fig15.py",
        "benchmarks/test_bench_tables.py",
    ],
    "all": ["benchmarks"],
}


def git_revision() -> str:
    command = ["git", "rev-parse", "--short=10", "HEAD"]
    try:
        output = subprocess.run(command, cwd=REPO_ROOT, capture_output=True, text=True, check=True)
        return output.stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def run_pytest_benchmarks(suite: str, pytest_args: list) -> dict:
    """Run the suite under pytest-benchmark and return its JSON report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        report_path = handle.name
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = f"{src}:{env['PYTHONPATH']}" if env.get("PYTHONPATH") else src
    command = [
        sys.executable,
        "-m",
        "pytest",
        *SUITES[suite],
        "--benchmark-only",
        f"--benchmark-json={report_path}",
        "-q",
        *pytest_args,
    ]
    try:
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {completed.returncode})")
        with open(report_path) as report:
            return json.load(report)
    finally:
        os.unlink(report_path)


def summarize(report: dict, suite: str) -> dict:
    """Reduce the pytest-benchmark report to the trajectory schema."""
    benchmarks = {}
    for entry in report.get("benchmarks", []):
        stats = entry["stats"]
        benchmarks[entry["name"]] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "median_s": stats["median"],
            "min_s": stats["min"],
            "rounds": stats["rounds"],
            "iterations": stats.get("iterations", 1),
        }
    generated_at = datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    return {
        "schema_version": 1,
        "revision": git_revision(),
        "generated_at": generated_at,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "suite": suite,
        "benchmarks": benchmarks,
    }


def compare_to_baseline(
    snapshot: dict,
    baseline: dict,
    max_regression: float,
    min_gate_mean_s: float = 0.0,
) -> list:
    """Mean-time regressions beyond the threshold, worst first.

    Benchmarks whose baseline mean is below ``min_gate_mean_s`` are
    reported but never gated: microsecond-scale means are dominated by
    scheduler jitter on shared CI runners, where a 30% swing carries no
    signal.
    """
    regressions = []
    for name, reference in baseline.get("benchmarks", {}).items():
        current = snapshot["benchmarks"].get(name)
        if current is None:
            continue
        if reference["mean_s"] < min_gate_mean_s:
            continue
        ratio = current["mean_s"] / reference["mean_s"]
        if ratio > 1.0 + max_regression:
            regressions.append(
                {
                    "name": name,
                    "baseline_mean_s": reference["mean_s"],
                    "current_mean_s": current["mean_s"],
                    "slowdown": ratio,
                }
            )
    regressions.sort(key=lambda entry: entry["slowdown"], reverse=True)
    return regressions


def print_report(snapshot: dict, baseline: dict | None) -> None:
    reference = (baseline or {}).get("benchmarks", {})
    width = max((len(name) for name in snapshot["benchmarks"]), default=10)
    print(f"\n{'benchmark'.ljust(width)}  {'mean':>12}  {'vs baseline':>12}")
    for name, stats in sorted(snapshot["benchmarks"].items()):
        mean_us = stats["mean_s"] * 1e6
        if name in reference:
            ratio = stats["mean_s"] / reference[name]["mean_s"]
            delta = f"{(ratio - 1.0) * 100.0:+7.1f}%"
        else:
            delta = "new"
        print(f"{name.ljust(width)}  {mean_us:10.1f}us  {delta:>12}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="micro",
        help="benchmark selection (default: micro)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="snapshot path (default: benchmarks/BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline to gate against (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fail when a hot-path mean regresses by more than this fraction (default: 0.30)",
    )
    parser.add_argument(
        "--min-gate-mean-us",
        type=float,
        default=100.0,
        help="only gate benchmarks whose baseline mean exceeds this many "
        "microseconds; faster ones are jitter-bound on shared runners "
        "(default: 100)",
    )
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="record the snapshot without gating",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the snapshot as the new baseline",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    report = run_pytest_benchmarks(args.suite, args.pytest_args)
    snapshot = summarize(report, args.suite)

    output = args.output
    if output is None:
        output = BENCH_DIR / f"BENCH_{snapshot['revision']}.json"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")

    if args.update_baseline:
        args.baseline.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.baseline}")
        return 0

    baseline = None
    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    print_report(snapshot, baseline)

    if args.no_compare:
        return 0
    if baseline is None:
        print(f"no baseline at {args.baseline}; skipping the perf gate")
        print("generate one with --update-baseline")
        return 0

    regressions = compare_to_baseline(
        snapshot,
        baseline,
        args.max_regression,
        min_gate_mean_s=args.min_gate_mean_us * 1e-6,
    )
    if regressions:
        threshold = f"{args.max_regression:.0%}"
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond {threshold}:")
        for entry in regressions:
            baseline_us = entry["baseline_mean_s"] * 1e6
            current_us = entry["current_mean_s"] * 1e6
            times = f"{baseline_us:.1f}us -> {current_us:.1f}us"
            print(f"  {entry['name']}: {times} ({entry['slowdown']:.2f}x)")
        return 1
    print(f"\nOK: no benchmark regressed beyond {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
