"""Tests for the fixed-memory simulation metrics."""

import pickle

import numpy as np
import pytest

from repro.ssd.metrics import (
    LatencyHistogram,
    SUBBUCKETS_PER_OCTAVE,
    SimulationMetrics,
    improvement_over,
    normalized_response_times,
)

#: One histogram bucket spans 1/SUBBUCKETS of an octave; estimates mirror
#: numpy's interpolation at bucket resolution, so allow two bucket widths.
BUCKET_TOLERANCE = 2.0 / SUBBUCKETS_PER_OCTAVE


def make_metrics(read_times, write_times=(), record_samples=False):
    metrics = SimulationMetrics(record_samples=record_samples)
    for value in read_times:
        metrics.record_read(value, retry_steps=2)
    for value in write_times:
        metrics.record_write(value)
    return metrics


class TestRecording:
    def test_mean_and_percentiles(self):
        metrics = make_metrics([100.0, 200.0, 300.0], [50.0])
        assert metrics.mean_response_time_us("read") == pytest.approx(200.0)
        assert metrics.mean_response_time_us("write") == pytest.approx(50.0)
        assert metrics.mean_response_time_us("all") == pytest.approx(162.5)
        assert metrics.max_response_time_us() == 300.0
        assert metrics.percentile_response_time_us(50.0, "read") == \
            pytest.approx(200.0, rel=BUCKET_TOLERANCE)

    def test_retry_steps_tracking(self):
        metrics = make_metrics([10.0, 20.0])
        assert metrics.mean_retry_steps() == 2.0
        assert metrics.pages_read == 2
        assert metrics.retry_step_counts == {2: 2}

    def test_counts(self):
        metrics = make_metrics([1.0, 2.0], [3.0])
        assert metrics.host_reads == 2
        assert metrics.host_writes == 1

    def test_empty_metrics_are_zero(self):
        metrics = SimulationMetrics()
        assert metrics.mean_response_time_us() == 0.0
        assert metrics.percentile_response_time_us(99.0) == 0.0
        assert metrics.mean_retry_steps() == 0.0
        assert metrics.die_utilization() == 0.0
        assert metrics.max_response_time_us() == 0.0

    def test_negative_values_rejected(self):
        metrics = SimulationMetrics()
        with pytest.raises(ValueError):
            metrics.record_read(-1.0, 0)
        with pytest.raises(ValueError):
            metrics.record_write(-1.0)
        with pytest.raises(ValueError):
            metrics.record_retry_steps(-1)

    def test_non_finite_values_rejected_without_corruption(self):
        histogram = LatencyHistogram()
        histogram.record(10.0)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                histogram.record(bad)
        # The rejected values must not have poisoned any state.
        assert histogram.count == 1
        assert histogram.mean() == 10.0
        assert histogram.max_us == 10.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            make_metrics([1.0]).mean_response_time_us("bogus")

    def test_die_utilization(self):
        metrics = make_metrics([1.0])
        metrics.simulated_time_us = 1000.0
        metrics.record_die_busy((0, 0), 500.0)
        metrics.record_die_busy((0, 1), 250.0)
        assert metrics.die_utilization() == pytest.approx(0.375)

    def test_summary_keys(self):
        summary = make_metrics([1.0]).summary()
        assert "mean_response_us" in summary
        assert "mean_retry_steps" in summary
        assert "p99_response_us" in summary
        assert "p999_response_us" in summary
        assert "p99_read_response_us" in summary

    def test_zero_latency_writes_supported(self):
        # Buffered write hits complete in exactly 0.0 us; the floor bucket
        # must absorb them without distorting mean or percentile.
        metrics = make_metrics([], [0.0, 0.0, 0.0])
        assert metrics.mean_response_time_us("write") == 0.0
        assert metrics.percentile_response_time_us(99.0, "write") == 0.0


class TestFixedMemoryContract:
    def test_samples_unavailable_by_default(self):
        metrics = make_metrics([1.0, 2.0], [3.0])
        for name in ("read_response_times_us", "write_response_times_us",
                     "retry_steps_per_read"):
            with pytest.raises(RuntimeError, match="record_samples=True"):
                getattr(metrics, name)

    def test_record_samples_debug_mode(self):
        metrics = make_metrics([1.0, 2.0], [3.0], record_samples=True)
        assert metrics.read_response_times_us == [1.0, 2.0]
        assert metrics.write_response_times_us == [3.0]
        assert metrics.retry_steps_per_read == [2, 2]

    def test_bucket_count_independent_of_sample_count(self):
        rng = np.random.default_rng(0)
        histogram = LatencyHistogram()
        small_count = None
        for total in (1_000, 100_000):
            for value in rng.lognormal(mean=5.0, sigma=1.0, size=total):
                histogram.record(float(value))
            if small_count is None:
                small_count = histogram.bucket_count
        # 100x the samples widens the observed range by at most a couple of
        # octaves of tail buckets — never by 100x.
        assert histogram.bucket_count < small_count * 3
        assert histogram.bucket_count < 1500  # hard structural bound: 3265
        assert histogram.count == 101_000

    def test_histogram_pickles(self):
        histogram = LatencyHistogram()
        for value in (1.0, 50.0, 5000.0):
            histogram.record(value)
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone == histogram
        assert clone.mean() == histogram.mean()


class TestHistogramAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("draw", [
        lambda rng, n: rng.lognormal(mean=6.0, sigma=1.5, size=n),
        lambda rng, n: rng.exponential(scale=800.0, size=n),
        lambda rng, n: rng.uniform(10.0, 10_000.0, size=n),
    ])
    def test_percentiles_within_bucket_tolerance(self, seed, draw):
        rng = np.random.default_rng(seed)
        samples = draw(rng, 20_000)
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(float(value))
        for percentile in (1.0, 25.0, 50.0, 90.0, 99.0, 99.9):
            exact = float(np.percentile(samples, percentile))
            estimate = histogram.percentile(percentile)
            assert estimate == pytest.approx(exact, rel=BUCKET_TOLERANCE), \
                f"p{percentile}: {estimate} vs exact {exact}"

    def test_mean_matches_exact_mean(self, rng):
        samples = rng.lognormal(mean=6.0, sigma=2.0, size=50_000)
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(float(value))
        assert histogram.mean() == pytest.approx(float(np.mean(samples)),
                                                 rel=1e-12)
        assert histogram.min_us == float(np.min(samples))
        assert histogram.max_us == float(np.max(samples))

    def test_extremes_clamped_not_lost(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(1e15)  # far beyond the tracked cap
        assert histogram.count == 2
        assert histogram.max_us == 1e15
        assert histogram.percentile(100.0) == 1e15

    def test_single_value_percentiles_exact(self):
        histogram = LatencyHistogram()
        histogram.record(123.456)
        for percentile in (0.0, 50.0, 100.0):
            assert histogram.percentile(percentile) == 123.456

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101.0)


class TestMerge:
    @staticmethod
    def _histogram(rng, n):
        histogram = LatencyHistogram()
        for value in rng.exponential(scale=500.0, size=n):
            histogram.record(float(value))
        return histogram

    def test_merge_matches_combined_recording(self, rng):
        samples = rng.exponential(scale=500.0, size=2000)
        left, right, combined = (LatencyHistogram() for _ in range(3))
        for value in samples[:900]:
            left.record(float(value))
        for value in samples[900:]:
            right.record(float(value))
        for value in samples:
            combined.record(float(value))
        merged = left.copy().merge(right)
        assert merged._counts == combined._counts
        assert merged.count == combined.count
        assert merged.min_us == combined.min_us
        assert merged.max_us == combined.max_us
        assert merged.mean() == pytest.approx(combined.mean(), rel=1e-12)

    def test_merge_associative(self, rng):
        a = self._histogram(rng, 700)
        b = self._histogram(rng, 1300)
        c = self._histogram(rng, 400)
        left_first = a.copy().merge(b).merge(c)
        right_first = a.copy().merge(b.copy().merge(c))
        assert left_first._counts == right_first._counts
        assert left_first.count == right_first.count
        assert left_first.min_us == right_first.min_us
        assert left_first.max_us == right_first.max_us
        assert left_first.mean() == pytest.approx(right_first.mean(),
                                                  rel=1e-12)
        for percentile in (50.0, 99.0, 99.9):
            assert left_first.percentile(percentile) == \
                right_first.percentile(percentile)

    def test_merge_into_sample_keeping_collector_rejected(self):
        keeper = make_metrics([1.0], record_samples=True)
        plain = make_metrics([2.0])
        with pytest.raises(ValueError, match="record_samples"):
            keeper.merge(plain)
        # The safe directions still work.
        plain.merge(keeper)
        assert plain.host_reads == 2
        other_keeper = make_metrics([3.0], record_samples=True)
        keeper.merge(other_keeper)
        assert keeper.read_response_times_us == [1.0, 3.0]

    def test_metrics_merge_folds_counters(self):
        first = make_metrics([100.0], [10.0])
        first.gc_erases = 2
        first.simulated_time_us = 500.0
        second = make_metrics([300.0, 500.0])
        second.gc_erases = 1
        second.simulated_time_us = 900.0
        first.merge(second)
        assert first.host_reads == 3
        assert first.host_writes == 1
        assert first.gc_erases == 3
        assert first.pages_read == 3
        # Simulated times add up, so utilization stays a true time-weighted
        # average instead of being inflated by summed busy time.
        assert first.simulated_time_us == 1400.0
        assert first.mean_response_time_us("read") == pytest.approx(300.0)

    def test_merged_die_utilization_is_time_weighted(self):
        first = make_metrics([1.0])
        first.simulated_time_us = 1000.0
        first.record_die_busy((0, 0), 600.0)
        second = make_metrics([1.0])
        second.simulated_time_us = 1000.0
        second.record_die_busy((0, 0), 600.0)
        first.merge(second)
        assert first.die_utilization() == pytest.approx(0.6)


class TestNormalization:
    def test_normalized_response_times(self):
        results = {"Baseline": make_metrics([200.0]),
                   "PnAR2": make_metrics([100.0])}
        normalized = normalized_response_times(results)
        assert normalized["Baseline"] == pytest.approx(1.0)
        assert normalized["PnAR2"] == pytest.approx(0.5)

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalized_response_times({"PnAR2": make_metrics([100.0])})

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_response_times({"Baseline": SimulationMetrics()})

    def test_improvement_over(self):
        results = {"PSO": make_metrics([200.0]),
                   "PSO+PnAR2": make_metrics([150.0])}
        assert improvement_over(results, "PSO+PnAR2", "PSO") == pytest.approx(0.25)
