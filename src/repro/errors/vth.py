"""Threshold-voltage distribution model of 3D TLC NAND flash cells.

Each of the eight V_TH states is modelled as a Gaussian whose mean shifts
downwards and whose standard deviation widens as a function of the operating
condition (P/E cycles, retention age) — the behaviour sketched in Figures 3
and 4(a) of the paper and quantified by the calibration constants in
:mod:`repro.errors.calibration`.

The model exposes three quantities the rest of the stack needs:

* the per-state means and sigmas under a condition (used by the RBER model),
* the *optimal* read-reference shift, i.e. how far the default V_REF values
  are from the optimal ones (this determines how many retry steps a read
  needs, Section 3.1),
* the per-boundary optimal read voltages (used to quantify the error floor
  in the final retry step, Section 5.1).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors.calibration import VTH_CALIBRATION, VthCalibration
from repro.errors.condition import OperatingCondition
from repro.errors.variation import VariationSample
from repro.nand.voltage import (
    NUM_BOUNDARIES,
    NUM_STATES,
    fresh_state_means_mv,
)


class ThresholdVoltageModel:
    """Analytic model of the V_TH distributions of a TLC wordline."""

    def __init__(self, calibration: VthCalibration = VTH_CALIBRATION):
        self._calibration = calibration
        self._fresh_means = np.asarray(fresh_state_means_mv(), dtype=float)

    @property
    def calibration(self) -> VthCalibration:
        return self._calibration

    # -- aging laws -----------------------------------------------------------
    def retention_shift_mv(self, condition: OperatingCondition,
                           variation: VariationSample = None) -> float:
        """Downward V_TH shift of the programmed states (mV, positive value).

        The shift grows logarithmically with retention age and is amplified
        by P/E cycling (worn cells leak charge faster), reproducing the
        retry-step counts of Figure 5.
        """
        cal = self._calibration
        shift = (cal.shift_scale_mv
                 * math.log1p(condition.retention_months / cal.shift_tau_months)
                 * (1.0 + cal.shift_pec_coefficient
                    * condition.kilo_pe_cycles ** cal.shift_pec_exponent))
        if variation is not None:
            shift *= variation.shift_multiplier
        return shift

    def sigma_multiplier(self, condition: OperatingCondition) -> float:
        """Widening factor of the V_TH distributions under a condition."""
        cal = self._calibration
        return (1.0
                + cal.sigma_pec_coefficient
                * condition.kilo_pe_cycles ** cal.sigma_pec_exponent
                + cal.sigma_retention_coefficient
                * math.log1p(condition.retention_months
                             / cal.sigma_retention_tau_months))

    # -- distributions --------------------------------------------------------
    def state_means_mv(self, condition: OperatingCondition,
                       variation: VariationSample = None) -> np.ndarray:
        """Means of the eight V_TH states under ``condition`` (mV)."""
        shift = self.retention_shift_mv(condition, variation)
        means = self._fresh_means.copy()
        # The erased state holds almost no charge and barely moves; every
        # programmed state loses charge and moves down by the same amount
        # (to first order), which is why a uniform V_REF shift per retry step
        # works well (Figure 4(a)).
        means[0] -= shift * self._calibration.erased_shift_fraction
        means[1:] -= shift
        return means

    def state_sigmas_mv(self, condition: OperatingCondition,
                        variation: VariationSample = None) -> np.ndarray:
        """Standard deviations of the eight V_TH states (mV)."""
        cal = self._calibration
        multiplier = self.sigma_multiplier(condition)
        if variation is not None:
            multiplier *= variation.sigma_multiplier
        sigmas = np.full(NUM_STATES, cal.sigma_programmed_fresh_mv * multiplier)
        sigmas[0] = cal.sigma_erased_fresh_mv * multiplier
        return sigmas

    # -- optimal read voltages ------------------------------------------------
    def optimal_boundary_voltages_mv(
            self, condition: OperatingCondition,
            variation: VariationSample = None) -> np.ndarray:
        """Per-boundary optimal read voltages V_OPT (mV).

        For two Gaussians with similar widths the RBER-minimizing read voltage
        is very close to the sigma-weighted midpoint of the adjacent state
        means; that approximation is used here.
        """
        means = self.state_means_mv(condition, variation)
        sigmas = self.state_sigmas_mv(condition, variation)
        voltages = np.empty(NUM_BOUNDARIES)
        for boundary in range(NUM_BOUNDARIES):
            lo, hi = boundary, boundary + 1
            voltages[boundary] = (
                (means[lo] * sigmas[hi] + means[hi] * sigmas[lo])
                / (sigmas[lo] + sigmas[hi]))
        return voltages

    def optimal_shift_mv(self, condition: OperatingCondition,
                         variation: VariationSample = None) -> float:
        """Uniform V_REF shift that best tracks the optimal read voltages.

        This is the quantity the read-retry table is chasing: the number of
        retry steps a page needs is roughly ``optimal_shift / step`` of the
        table (the shift is negative, i.e. downwards, matching the table's
        negative step direction).
        """
        from repro.nand.voltage import default_read_references_mv

        optimal = self.optimal_boundary_voltages_mv(condition, variation)
        defaults = np.asarray(default_read_references_mv())
        # Boundary 0 separates the erased state from P1 and has a much wider
        # margin, so it does not constrain the uniform shift; use the
        # programmed-state boundaries only.
        return float(np.mean(optimal[1:] - defaults[1:]))

    def temperature_extra_errors_per_kib(
            self, condition: OperatingCondition) -> float:
        """Additional raw bit errors per KiB caused by a low read temperature.

        Electron mobility in the poly-silicon channel drops with temperature,
        reducing the bitline current so that erased-ish cells may be sensed
        as programmed; the paper measures roughly +5 errors/KiB at 30 degC and
        +3 at 55 degC relative to 85 degC (Section 5.1).
        """
        cal = self._calibration
        delta = cal.temperature_reference_c - condition.temperature_c
        if delta <= 0:
            return 0.0
        return cal.temperature_error_slope_per_kib * delta / cal.temperature_error_span_c

    # -- convenience ----------------------------------------------------------
    def boundary_parameters(self, condition: OperatingCondition,
                            variation: VariationSample = None
                            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (lower means, lower sigmas, upper means, upper sigmas).

        One entry per V_REF boundary; used by the RBER model to evaluate the
        two-sided tail probabilities efficiently.
        """
        means = self.state_means_mv(condition, variation)
        sigmas = self.state_sigmas_mv(condition, variation)
        return means[:-1], sigmas[:-1], means[1:], sigmas[1:]
