"""Tests for Arrhenius-accelerated retention."""

import pytest

from repro.errors.retention import (
    arrhenius_acceleration_factor,
    effective_retention_months,
    required_bake_hours,
)


class TestAcceleration:
    def test_identity_at_equal_temperature(self):
        assert arrhenius_acceleration_factor(30.0, 30.0) == pytest.approx(1.0)

    def test_hotter_bake_accelerates(self):
        assert arrhenius_acceleration_factor(85.0, 30.0) > 100.0
        assert (arrhenius_acceleration_factor(85.0, 30.0)
                > arrhenius_acceleration_factor(55.0, 30.0))

    def test_paper_equivalence_13_hours_at_85c_is_about_a_year(self):
        # Section 4: 13 hours at 85C is approximately 1 year at 30C.
        months = effective_retention_months(13.0, 85.0)
        assert 8.0 < months < 18.0

    def test_roundtrip(self):
        hours = required_bake_hours(12.0, 85.0)
        assert effective_retention_months(hours, 85.0) == pytest.approx(12.0)

    def test_monotonic_in_duration(self):
        assert (effective_retention_months(10.0, 85.0)
                > effective_retention_months(5.0, 85.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_retention_months(-1.0, 85.0)
        with pytest.raises(ValueError):
            required_bake_hours(-1.0, 85.0)
        with pytest.raises(ValueError):
            arrhenius_acceleration_factor(85.0, 30.0, activation_energy_ev=0.0)
        with pytest.raises(ValueError):
            arrhenius_acceleration_factor(-300.0, 30.0)
