"""Calibration constants of the error models.

Every constant is annotated with the paper observation it is meant to
reproduce.  The values are fitted analytically (see DESIGN.md, "Calibration
constants"); ``tests/test_calibration_targets.py`` checks that the headline
characterization numbers come out of the full model within loose tolerances.

All voltages are millivolts on the scale defined in
:mod:`repro.nand.voltage` (600 mV between adjacent programmed states); all
times are microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VthCalibration:
    """Constants of the threshold-voltage distribution model.

    The fitted targets are:

    * fresh pages (0 PEC, 0 retention) read with the default V_REF values
      decode without read-retry (Figure 5, left plot at 0 months);
    * the V_TH shift grows with retention age and P/E cycles such that the
      retry-step counts of Figure 5 are reproduced: a median of about 7 steps
      at (0 PEC, 6 months), at least 8 steps at (1K PEC, 3 months), and an
      average of about 20 steps at (2K PEC, 12 months);
    * the distribution widening reproduces the final-retry-step error counts
      of Figure 7 (which are population *maxima* across the tested pages):
      roughly 15 errors/KiB at (0 PEC, 3 months, 85C), about 30 at
      (1K, 12 months, 85C) and about 35-40 at (2K, 12 months, 30C), i.e. a
      greater than 44% ECC-capability margin even in the worst case.
    """

    # Fresh per-state standard deviation of programmed states (mV).
    sigma_programmed_fresh_mv: float = 95.0
    # The erased state is much wider than programmed states.
    sigma_erased_fresh_mv: float = 170.0

    # Sigma widening: sigma = sigma_fresh * (1 + a_pec * (PEC/1000)^p_pec
    #                                          + a_ret * log1p(t / tau_ret)).
    # Fitted so that the *population maximum* of the final-step error count
    # (nominal value times the worst-case process-variation corner) matches
    # Figure 7.
    sigma_pec_coefficient: float = 0.0587
    sigma_pec_exponent: float = 0.54
    sigma_retention_coefficient: float = 0.0264
    sigma_retention_tau_months: float = 0.3

    # Retention-induced V_TH shift of the programmed states (mV):
    # shift = shift_scale * log1p(t / tau)
    #         * (1 + pec_coefficient * (PEC/1000)^pec_exponent).
    # Fitted to Figure 5's retry-step counts: ~4-5 steps at (0 PEC, 3 mo),
    # ~7 at (0 PEC, 6 mo), >= 8 at (1K PEC, 3 mo), ~20 on average at
    # (2K PEC, 12 mo).
    shift_scale_mv: float = 142.0
    shift_tau_months: float = 1.0
    shift_pec_coefficient: float = 0.63
    shift_pec_exponent: float = 0.38

    # The erased state barely moves with retention (it has little charge to
    # lose); programmed states move together.
    erased_shift_fraction: float = 0.1

    # Reading at low temperature reduces the cell current through the bitline
    # which adds a roughly condition-independent number of raw bit errors:
    # +5 errors/KiB at 30C and +3 at 55C relative to 85C (Section 5.1,
    # third observation).
    temperature_reference_c: float = 85.0
    temperature_error_slope_per_kib: float = 5.0
    temperature_error_span_c: float = 55.0


@dataclass(frozen=True)
class TimingCalibration:
    """Constants of the reduced read-timing error model (Section 5.2).

    Each phase has a lognormal population of per-bitline time requirements;
    shortening the phase below a bitline's requirement corrupts the bits
    sensed through that bitline.  The fitted targets are:

    * tPRE can be reduced by 47% at (2K PEC, 12 months) and by 54% at
      (1K PEC, 0 months) while staying within the ECC capability
      (Figure 8(a)); a 1-year retention age increases the tPRE-induced error
      count by about 60% at 2K P/E cycles;
    * reducing tEVAL by 20% adds about 30 errors/KiB even on a fresh page,
      while a 10% reduction is safe (Figure 8(b));
    * reducing tDISCH by 7% adds at most ~4 errors/KiB; 20% adds ~8 at
      (1K, 0); ~27% is the limit at the worst condition (Figure 8(c));
    * reducing tPRE and tDISCH together couples through the partially
      discharged bitlines: (54% tPRE, 20% tDISCH) at (1K, 0) exceeds the ECC
      capability even though the individual reductions cost only 35 and 8
      errors (Figure 9).
    """

    # Lognormal parameters (of the per-bitline required time, microseconds).
    pre_log_median_us: float = 1.14   # ln(3.13 us)
    pre_log_sigma: float = 0.48
    eval_log_median_us: float = 1.079  # ln(2.94 us)
    eval_log_sigma: float = 0.119
    disch_log_median_us: float = 0.839  # ln(2.31 us)
    disch_log_sigma: float = 0.40

    # Severity scaling with operating condition, normalized to (1K PEC, 0 mo):
    # severity = (1 + pec_coeff*PEC/1000) * (1 + ret_coeff*log1p(t/tau)) / norm.
    severity_pec_coefficient: float = 0.33
    severity_retention_coefficient: float = 0.546
    severity_retention_tau_months: float = 6.0

    # Lower operating temperature slows the bitline current, amplifying
    # timing-induced errors by up to ~15% at 30C, but the extra errors are
    # bounded by the small population of temperature-marginal bitlines
    # (Figure 10 shows at most ~7 additional errors even at the worst
    # condition and the largest reduction).
    temperature_amplification_at_30c: float = 0.15
    temperature_extra_error_cap_at_30c: float = 7.0

    # Coupling of simultaneous tPRE and tDISCH reduction: the discharge
    # deficit adds quadratically to the effective precharge reduction
    # (Figure 9; a 7% tDISCH reduction is nearly free, 20% is not).
    disch_to_pre_coupling: float = 2.0

    #: Bits per ECC codeword (1 KiB of data).
    codeword_bits: int = 8192


@dataclass(frozen=True)
class VariationCalibration:
    """Process-variation magnitudes across chips, blocks and wordlines.

    Variation is multiplicative and lognormal; the listed values are the
    standard deviations of the underlying normal.  They reproduce the spread
    of retry-step counts visible in Figure 5 (several steps of spread within
    one operating condition) and the existence of outlier pages motivating
    the paper's 7-bit outlier safety margin (Section 5.2.3).
    """

    chip_shift_sigma: float = 0.04
    block_shift_sigma: float = 0.05
    wordline_shift_sigma: float = 0.07
    chip_sigma_sigma: float = 0.010
    block_sigma_sigma: float = 0.010
    wordline_sigma_sigma: float = 0.014
    chip_timing_sigma: float = 0.04
    block_timing_sigma: float = 0.04


@dataclass(frozen=True)
class EccCalibration:
    """ECC configuration of the simulated SSD (Sections 4 and 7.1)."""

    #: Correctable raw bit errors per 1-KiB codeword.
    capability_bits: int = 72
    #: Codeword payload size in bytes.
    codeword_bytes: int = 1024
    #: Decode latency of the controller's ECC engine (microseconds).
    decode_latency_us: float = 20.0
    #: Safety margin reserved by AR2 when selecting reduced tPRE values:
    #: 7 bits for temperature-induced errors plus 7 bits for outlier pages
    #: (Section 5.2.3 / Figure 11).
    ar2_safety_margin_bits: int = 14


#: Module-level defaults shared by the characterization and the simulator.
VTH_CALIBRATION = VthCalibration()
TIMING_CALIBRATION = TimingCalibration()
VARIATION_CALIBRATION = VariationCalibration()
ECC_CALIBRATION = EccCalibration()
