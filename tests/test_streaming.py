"""Tests for the streaming request path: pump, generators, no-mutation."""

import pytest

from repro.core.rpt import ReadTimingParameterTable
from repro.sim import Simulation
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator, simulate_policies
from repro.ssd.request import HostRequest, RequestKind
from repro.workloads import generate_workload, iter_workload
from repro.workloads.catalog import WORKLOAD_CATALOG


@pytest.fixture(scope="module")
def config():
    return SsdConfig.tiny()


@pytest.fixture(scope="module")
def rpt():
    return ReadTimingParameterTable.default()


def _footprint(config):
    return int(config.logical_pages * 0.5)


def _run(config, rpt, requests, **kwargs):
    simulator = SsdSimulator(config, policy="PnAR2", rpt=rpt)
    simulator.precondition(pe_cycles=1000, retention_months=6.0)
    return simulator.run(requests, **kwargs)


class TestGeneratorInjection:
    def test_generator_matches_list(self, config, rpt):
        footprint = _footprint(config)
        args = ("YCSB-C", 300, footprint)
        kwargs = {"seed": 1, "mean_interarrival_us": 500.0}
        from_list = _run(config, rpt, generate_workload(*args, **kwargs))
        from_generator = _run(config, rpt, iter_workload(*args, **kwargs))
        assert from_list.metrics.summary() == from_generator.metrics.summary()
        assert from_list.metrics.read_latency == \
            from_generator.metrics.read_latency
        assert from_list.metrics.mean_response_time_us() == \
            from_generator.metrics.mean_response_time_us()

    def test_iter_workload_draws_identical_requests(self, config):
        footprint = _footprint(config)
        generated = generate_workload("usr_1", 100, footprint, seed=7)
        streamed = list(iter_workload("usr_1", 100, footprint, seed=7))
        assert [(r.arrival_us, r.kind, r.start_lpn, r.page_count)
                for r in generated] == \
            [(r.arrival_us, r.kind, r.start_lpn, r.page_count)
             for r in streamed]

    def test_every_catalog_workload_streams(self, config):
        footprint = _footprint(config)
        for name in WORKLOAD_CATALOG:
            first = next(iter_workload(name, 5, footprint, seed=0))
            assert first.arrival_us >= 0.0

    def test_interleaved_iterators_stay_independent(self, config):
        footprint = _footprint(config)
        workload = WORKLOAD_CATALOG["usr_1"].build(footprint, seed=0)
        reference = workload.generate(120)
        # Interleave a second, differently-sized stream: the first stream's
        # address selection must not be perturbed by the other iterator.
        first = workload.iter_requests(120)
        drawn = [next(first) for _ in range(10)]
        list(workload.iter_requests(5000))
        drawn.extend(first)
        assert [(r.arrival_us, r.start_lpn, r.page_count) for r in drawn] == \
            [(r.arrival_us, r.start_lpn, r.page_count) for r in reference]

    def test_bad_request_count_raises_at_call_site(self, config):
        # The generator split keeps validation eager: errors surface where
        # the stream is built, not on first pull inside the pump.
        with pytest.raises(ValueError, match="num_requests"):
            iter_workload("usr_1", 0, _footprint(config))


class TestBoundedLookahead:
    def test_event_queue_stays_bounded(self, config, rpt):
        footprint = _footprint(config)
        lookahead = 16
        total_dies = config.channels * config.dies_per_channel
        simulator = SsdSimulator(config, policy="Baseline", rpt=rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0)
        observed = {"max_scheduled": 0, "max_events": 0}

        def probed_stream():
            for request in iter_workload("usr_1", 2000, footprint, seed=3,
                                         mean_interarrival_us=300.0):
                observed["max_scheduled"] = max(
                    observed["max_scheduled"], simulator._scheduled_arrivals)
                observed["max_events"] = max(observed["max_events"],
                                             len(simulator.events))
                yield request

        result = simulator.run(probed_stream(), lookahead=lookahead)
        assert result.metrics.host_reads + result.metrics.host_writes == 2000
        # The pump never holds more than the window of future arrivals, and
        # beyond those the queue only carries one in-service completion per
        # die — the queue is O(window), not O(trace).
        assert observed["max_scheduled"] <= lookahead
        assert observed["max_events"] <= lookahead + total_dies + 4

    def test_unsorted_list_is_sorted_up_front(self, config, rpt):
        footprint = _footprint(config)
        requests = generate_workload("usr_1", 50, footprint, seed=2)
        shuffled = list(reversed(requests))
        from_sorted = _run(config, rpt, requests)
        from_shuffled = _run(config, rpt, shuffled)
        assert from_sorted.metrics.summary() == from_shuffled.metrics.summary()

    def test_out_of_order_stream_rejected(self, config, rpt):
        def bad_stream():
            yield HostRequest(arrival_us=100_000.0, kind=RequestKind.READ,
                              start_lpn=0)
            yield HostRequest(arrival_us=0.0, kind=RequestKind.READ,
                              start_lpn=1)

        with pytest.raises(ValueError, match="ordered by arrival"):
            _run(config, rpt, bad_stream(), lookahead=1)

    def test_lookahead_validation(self, config, rpt):
        with pytest.raises(ValueError):
            _run(config, rpt, [], lookahead=0)

    def test_aborted_run_closes_generator_source(self, config, rpt):
        closed = []

        def stream():
            try:
                yield HostRequest(arrival_us=100_000.0,
                                  kind=RequestKind.READ, start_lpn=0)
                yield HostRequest(arrival_us=0.0, kind=RequestKind.READ,
                                  start_lpn=1)
            finally:
                # Stands in for iter_msrc_csv's open file handle: the abort
                # path must finalize the suspended generator promptly.
                closed.append(True)

        with pytest.raises(ValueError, match="ordered by arrival"):
            _run(config, rpt, stream(), lookahead=1)
        assert closed == [True]


class TestNoCallerMutation:
    def test_requests_unchanged_after_run(self, config, rpt):
        footprint = _footprint(config)
        requests = generate_workload("usr_1", 60, footprint, seed=5)
        before = [(r.arrival_us, r.kind, r.start_lpn, r.page_count,
                   r.completion_us, r.pending_pages) for r in requests]
        _run(config, rpt, requests)
        after = [(r.arrival_us, r.kind, r.start_lpn, r.page_count,
                  r.completion_us, r.pending_pages) for r in requests]
        assert before == after

    def test_same_list_replays_identically(self, config, rpt):
        footprint = _footprint(config)
        requests = generate_workload("YCSB-B", 80, footprint, seed=6)
        first = _run(config, rpt, requests)
        second = _run(config, rpt, requests)
        assert first.metrics.summary() == second.metrics.summary()

    def test_simulate_policies_accepts_plain_sequence(self, config, rpt):
        footprint = _footprint(config)
        requests = generate_workload("usr_1", 80, footprint, seed=4,
                                     mean_interarrival_us=800.0)
        results = simulate_policies(["Baseline", "PnAR2"], requests,
                                    config=config, pe_cycles=1000,
                                    retention_months=6.0, rpt=rpt)
        assert results["PnAR2"].mean_response_time_us < \
            results["Baseline"].mean_response_time_us

    def test_simulate_policies_factory_matches_sequence(self, config, rpt):
        footprint = _footprint(config)

        def factory():
            return iter_workload("usr_1", 80, footprint, seed=4,
                                 mean_interarrival_us=800.0)

        streaming = simulate_policies(["Baseline", "PnAR2"], factory,
                                      config=config, pe_cycles=1000,
                                      retention_months=6.0, rpt=rpt)
        materialized = simulate_policies(
            ["Baseline", "PnAR2"], list(factory()), config=config,
            pe_cycles=1000, retention_months=6.0, rpt=rpt)
        for policy in ("Baseline", "PnAR2"):
            assert streaming[policy].metrics.summary() == \
                materialized[policy].metrics.summary()

    def test_simulate_policies_materializes_bare_iterator(self, config, rpt):
        footprint = _footprint(config)
        iterator = iter_workload("usr_1", 60, footprint, seed=4,
                                 mean_interarrival_us=800.0)
        results = simulate_policies(["Baseline", "NoRR"], iterator,
                                    config=config, pe_cycles=1000,
                                    retention_months=6.0, rpt=rpt)
        # Both policies saw the full stream even though the iterator is
        # one-shot (it is drained once, then replayed).
        reads = {name: result.metrics.host_reads
                 for name, result in results.items()}
        assert reads["Baseline"] == reads["NoRR"] > 0


class TestSessionStreaming:
    def test_stream_factory_matches_workload_spec(self, tiny_ssd_config):
        footprint = _footprint(tiny_ssd_config)

        def factory():
            return iter_workload("usr_1", 60, footprint, seed=1,
                                 mean_interarrival_us=700.0)

        streamed = (Simulation(tiny_ssd_config)
                    .policy("PnAR2")
                    .stream(factory)
                    .condition(pec=1000, months=6.0)
                    .run())
        explicit = (Simulation(tiny_ssd_config)
                    .policy("PnAR2")
                    .requests(list(factory()))
                    .condition(pec=1000, months=6.0)
                    .run())
        assert streamed.result.metrics.summary() == \
            explicit.result.metrics.summary()
        assert streamed.manifest["workload"] == {"stream": "factory"}

    def test_stream_requires_callable(self, tiny_ssd_config):
        with pytest.raises(TypeError):
            Simulation(tiny_ssd_config).stream([1, 2, 3])

    def test_shared_exhausted_iterator_rejected(self, tiny_ssd_config):
        footprint = _footprint(tiny_ssd_config)
        shared = iter_workload("usr_1", 40, footprint, seed=1)
        with pytest.raises(ValueError, match="same exhausted iterator"):
            (Simulation(tiny_ssd_config)
             .policies("Baseline", "NoRR")
             .stream(lambda: shared)
             .run())

    def test_rewrapped_shared_iterator_rejected(self, tiny_ssd_config):
        footprint = _footprint(tiny_ssd_config)
        shared = iter_workload("usr_1", 40, footprint, seed=1)
        # Each call returns a fresh generator object, defeating the identity
        # guard — the completed-count consistency check must still catch it.
        with pytest.raises(ValueError, match="different request counts"):
            (Simulation(tiny_ssd_config)
             .policies("Baseline", "NoRR")
             .stream(lambda: (request for request in shared))
             .run())

    def test_head_disordered_msrc_timestamps_clamp_to_zero(self):
        import io

        from repro.workloads import iter_msrc_csv
        rows = "100,host,0,Read,0,4096\n40,host,1,Read,4096,4096\n" \
               "150,host,0,Write,8192,4096\n"
        records = list(iter_msrc_csv(io.StringIO(rows)))
        assert [r.timestamp_us for r in records] == [0.0, 0.0, 5.0]

    def test_lookahead_widens_reorder_tolerance(self, tiny_ssd_config):
        # Two requests swapped in stream order but within a wide window
        # replay fine; with a window of 1 the same stream is rejected.
        def swapped():
            yield HostRequest(arrival_us=500.0, kind=RequestKind.READ,
                              start_lpn=0)
            yield HostRequest(arrival_us=100.0, kind=RequestKind.READ,
                              start_lpn=1)

        run = (Simulation(tiny_ssd_config)
               .policy("NoRR")
               .stream(swapped)
               .lookahead(64)
               .run())
        assert run.result.metrics.host_reads == 2
        with pytest.raises(ValueError, match="ordered by arrival"):
            (Simulation(tiny_ssd_config)
             .policy("NoRR")
             .stream(swapped)
             .lookahead(1)
             .run())
        with pytest.raises(ValueError):
            Simulation(tiny_ssd_config).lookahead(0)

    def test_summary_rows_carry_tail_columns(self, tiny_ssd_config):
        run = (Simulation(tiny_ssd_config)
               .policies("Baseline", "PnAR2")
               .workload("usr_1", n=60)
               .condition(pec=1000, months=6.0)
               .run())
        for row in run.summary_rows():
            assert "p99_response_us" in row
            assert "p999_response_us" in row
            assert row["p999_response_us"] >= row["p99_response_us"]
