"""The built-in ``repro-lint`` rule set."""

from repro.lint.rules.counter_registration import CounterRegistrationRule
from repro.lint.rules.dict_order_pool import NoDictOrderAcrossPoolRule
from repro.lint.rules.global_random import NoGlobalRandomRule
from repro.lint.rules.pickle_safe_pool import PickleSafePoolRule
from repro.lint.rules.registration_sync import ExperimentRegistrationSyncRule
from repro.lint.rules.seed_param import ExperimentSeedParamRule
from repro.lint.rules.unordered_iteration import NoUnorderedIterationRule
from repro.lint.rules.wall_clock import NoWallClockRule

#: Every built-in rule class, in documentation order.
RULE_CLASSES = (
    NoWallClockRule,
    NoGlobalRandomRule,
    NoUnorderedIterationRule,
    CounterRegistrationRule,
    PickleSafePoolRule,
    NoDictOrderAcrossPoolRule,
    ExperimentRegistrationSyncRule,
    ExperimentSeedParamRule,
)

RULE_NAMES = tuple(rule_class.name for rule_class in RULE_CLASSES)


def default_rules():
    """Fresh instances of every built-in rule."""
    return tuple(rule_class() for rule_class in RULE_CLASSES)


def rules_by_name(names):
    """Instances of the named rules, preserving documentation order.

    :raises KeyError: for a name no built-in rule carries.
    """
    requested = set(names)
    unknown = requested - set(RULE_NAMES)
    if unknown:
        raise KeyError(
            f"unknown rule(s) {sorted(unknown)}; available: {list(RULE_NAMES)}"
        )
    return tuple(
        rule_class() for rule_class in RULE_CLASSES if rule_class.name in requested
    )
