"""Codeword layout of a NAND flash page.

A 16-KiB page is protected as sixteen independent 1-KiB codewords, each
carrying its own ECC parity in the page's spare area (Section 2.4).  The
read-retry mechanism operates at page granularity — the page is re-read when
*any* codeword fails — so the layout matters for two things:

* mapping a raw-bit-error budget per codeword to a page-level success
  condition (the worst codeword decides), and
* accounting for the parity overhead when sizing the spare area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class PageLayout:
    """How a page's data area is split into ECC codewords.

    :param page_data_bytes: user-data bytes per page (16 KiB by default).
    :param codeword_data_bytes: payload bytes per codeword (1 KiB).
    :param parity_bits_per_codeword: ECC parity bits per codeword.  The
        default corresponds to a BCH-like code correcting 72 errors over a
        GF(2^14) field (72 * 14 = 1008 parity bits).
    """

    page_data_bytes: int = 16 * 1024
    codeword_data_bytes: int = 1024
    parity_bits_per_codeword: int = 72 * 14

    def __post_init__(self) -> None:
        if self.page_data_bytes <= 0 or self.codeword_data_bytes <= 0:
            raise ValueError("sizes must be positive")
        if self.page_data_bytes % self.codeword_data_bytes:
            raise ValueError(
                "page_data_bytes must be a multiple of codeword_data_bytes")
        if self.parity_bits_per_codeword < 0:
            raise ValueError("parity_bits_per_codeword must be non-negative")

    @property
    def codewords_per_page(self) -> int:
        return self.page_data_bytes // self.codeword_data_bytes

    @property
    def spare_bytes_per_page(self) -> int:
        """Spare-area bytes needed to store all codewords' parity."""
        total_bits = self.parity_bits_per_codeword * self.codewords_per_page
        return (total_bits + 7) // 8

    @property
    def code_rate(self) -> float:
        """Fraction of stored bits that are user data."""
        data_bits = self.codeword_data_bytes * 8
        return data_bits / (data_bits + self.parity_bits_per_codeword)

    def page_decodes(self, codeword_errors: Iterable[int],
                     capability_bits: int) -> bool:
        """Whether a page decodes given per-codeword raw bit error counts."""
        errors = list(codeword_errors)
        self._validate_codeword_count(errors)
        return all(count <= capability_bits for count in errors)

    def worst_codeword(self, codeword_errors: Iterable[int]) -> int:
        """Error count of the codeword that decides the page's fate."""
        errors = list(codeword_errors)
        self._validate_codeword_count(errors)
        return max(errors)

    def split_errors(self, page_error_count: int) -> List[int]:
        """Evenly spread a page-level error count across codewords.

        Used by coarse models that track errors per page: the resulting
        per-codeword counts preserve the total while keeping the worst
        codeword realistic (errors spread roughly uniformly across a page
        when data is randomized, Section 4 footnote 6).
        """
        if page_error_count < 0:
            raise ValueError("page_error_count must be non-negative")
        codewords = self.codewords_per_page
        base, remainder = divmod(page_error_count, codewords)
        return [base + (1 if index < remainder else 0)
                for index in range(codewords)]

    def _validate_codeword_count(self, errors: List[int]) -> None:
        if len(errors) != self.codewords_per_page:
            raise ValueError(
                f"expected {self.codewords_per_page} codeword error counts, "
                f"got {len(errors)}")
