"""Micro-benchmarks of the performance-critical building blocks.

These are not paper artifacts; they track the cost of the hot paths that the
figure-level benchmarks depend on (error-model evaluation, retry-table walks,
BCH decoding, the event engine and the end-to-end simulator throughput).
"""

import numpy as np
import pytest

from repro.ecc.bch import BchCode
from repro.errors import CodewordErrorModel, OperatingCondition
from repro.experiments.store import CheckpointStore
from repro.errors.batch import BatchErrorModel
from repro.nand.geometry import PageType
from repro.sim.fleet import FleetRunner, FleetSpec
from repro.sim.spec import Condition
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator
from repro.ssd.engine import EventQueue
from repro.ssd.retry_grid import RetryStepGrid
from repro.workloads import generate_workload


@pytest.fixture(scope="module")
def model():
    return CodewordErrorModel()


def test_bench_expected_errors(benchmark, model):
    condition = OperatingCondition(1000, 6.0, 30.0)
    result = benchmark(model.expected_errors, condition, PageType.CSB, -300.0)
    assert result >= 0.0


def test_bench_retry_table_walk(benchmark, model):
    condition = OperatingCondition(2000, 12.0, 30.0)
    outcome = benchmark(model.walk_retry_table, condition, PageType.CSB)
    assert outcome.succeeded


def test_bench_bch_decode_8_errors(benchmark):
    code = BchCode(m=8, t=8)
    rng = np.random.default_rng(0)
    message = rng.integers(0, 2, code.k)
    codeword = code.encode(message)
    corrupted = codeword.copy()
    positions = rng.choice(code.n, size=8, replace=False)
    corrupted[positions] ^= 1

    result = benchmark(code.decode, corrupted)
    assert result.success


def test_bench_batch_walk_lattice(benchmark, model, bench_rpt):
    """One vectorized behaviour pass over a tiny SSD's full corner lattice."""
    grid = RetryStepGrid(SsdConfig.tiny(), rpt=bench_rpt)
    batch = BatchErrorModel(model)
    variation = grid.variation_arrays()
    condition = OperatingCondition(1000, 6.0, 30.0)

    lattice = benchmark(batch.read_behaviour_lattice, condition, variation,
                        0.4)
    assert len(lattice) == len(PageType)


def test_bench_grid_cold_build(benchmark, bench_rpt):
    """Grid construction plus the first (cold) slab build."""
    config = SsdConfig.tiny()

    def build():
        grid = RetryStepGrid(config, rpt=bench_rpt)
        grid.prefill([(1000, 6.0)])
        return grid

    grid = benchmark(build)
    assert grid.cached_conditions == 1


def test_bench_event_queue_throughput(benchmark):
    def run_queue():
        queue = EventQueue()
        for i in range(2000):
            queue.schedule(float(i % 97), lambda: None)
        return queue.run()

    assert benchmark(run_queue) == 2000


def test_bench_simulator_throughput(benchmark, bench_rpt):
    """Host requests simulated per call on an aged, read-dominant workload."""
    config = SsdConfig.tiny()
    footprint = int(config.logical_pages * 0.5)

    def run_simulation():
        simulator = SsdSimulator(config, policy="PnAR2", rpt=bench_rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0)
        requests = generate_workload("YCSB-C", 200, footprint, seed=1,
                                     mean_interarrival_us=500.0)
        return simulator.run(requests)

    # One warmup round: the first simulation of a process pays one-time
    # costs (numpy ufunc dispatch, lazily built model tables) that belong
    # to cold-start, not to the steady-state throughput tracked here.
    result = benchmark.pedantic(run_simulation, iterations=1, rounds=5,
                                warmup_rounds=1)
    assert result.metrics.host_reads > 150


def test_bench_dftl_steady_state(benchmark, bench_rpt):
    """Write-heavy page-mapped run that drives the DFTL into GC steady state.

    Tracks the cost of the full wear-dynamics path: CMT misses with
    translation-page traffic, GC victim selection/relocation and the
    per-read condition lookups against GC-diversified blocks.
    """
    config = SsdConfig(channels=2, dies_per_channel=1, planes_per_die=1,
                       blocks_per_plane=12, pages_per_block=24,
                       write_buffer_pages=16, mapping="page",
                       cmt_capacity_entries=64,
                       translation_entries_per_page=32,
                       gc_free_block_threshold=3, gc_stop_free_blocks=5)
    footprint = int(config.logical_pages * 0.5)

    def run_simulation():
        simulator = SsdSimulator(config, policy="PnAR2", rpt=bench_rpt)
        simulator.precondition(pe_cycles=1000, retention_months=6.0,
                               fill_fraction=0.6)
        requests = generate_workload("stg_0", 300, footprint, seed=1,
                                     mean_interarrival_us=500.0)
        return simulator.run(requests)

    result = benchmark.pedantic(run_simulation, iterations=1, rounds=5,
                                warmup_rounds=1)
    assert result.metrics.gc_invocations > 0
    assert result.metrics.translation_writes > 0


def test_bench_fleet_throughput(benchmark, bench_rpt):
    """Serial 8-device fleet run: the multi-device hot path end to end.

    Covers what the single-device micro cannot: the striping router's
    shard filtering, per-device stream regeneration, and the histogram
    merge across devices.  Serial (``processes=1``) so the number tracks
    simulator cost, not pool spin-up.
    """
    spec = FleetSpec(devices=8, stripe_unit_pages=4, replication=1,
                     config=SsdConfig.tiny(),
                     condition=Condition(pe_cycles=1000,
                                         retention_months=6.0))
    runner = FleetRunner(spec, processes=1, rpt=bench_rpt)

    def run_fleet():
        return runner.run("YCSB-C", policies="PnAR2", num_requests=400,
                          seed=7).result

    result = benchmark.pedantic(run_fleet, iterations=1, rounds=5,
                                warmup_rounds=1)
    merged = result.merged
    assert merged.host_reads > 300
    assert result.device_count == 8


def test_bench_fleet_sharded_resume(benchmark, bench_rpt, tmp_path):
    """Resume of a fully checkpointed sharded fleet run.

    Every shard is served from the checkpoint store, so the number tracks
    the resume overhead itself: checkpoint key hashing, JSON load + digest
    verification, and the streaming histogram fold — the fixed cost a
    rack-scale rerun pays before any new simulation work starts.
    """
    spec = FleetSpec(devices=16, stripe_unit_pages=4, replication=1,
                     config=SsdConfig.tiny(),
                     condition=Condition(pe_cycles=1000,
                                         retention_months=6.0))
    store = CheckpointStore(tmp_path)
    # Populate every shard checkpoint once, outside the timed region.
    FleetRunner(spec, processes=1, rpt=bench_rpt, shard_devices=4,
                checkpoint=store).run("YCSB-C", policies="PnAR2",
                                      num_requests=400, seed=7)

    def resume_fleet():
        runner = FleetRunner(spec, processes=1, rpt=bench_rpt,
                             shard_devices=4, checkpoint=store)
        return runner.run("YCSB-C", policies="PnAR2", num_requests=400,
                          seed=7)

    run = benchmark.pedantic(resume_fleet, iterations=1, rounds=5,
                             warmup_rounds=1)
    assert run.manifest["checkpoints"] == {"hits": 4, "stored": 0}
    assert run.result.device_count == 16
