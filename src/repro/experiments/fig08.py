"""Figure 8: effect of reducing each read-timing parameter individually."""

from __future__ import annotations

from repro.characterization.timing_sweep import individual_parameter_sweep
from repro.experiments.reporting import ExperimentResult


def run(num_chips: int = 8, blocks_per_chip: int = 3,
        seed: int = 0) -> ExperimentResult:
    from repro.characterization.platform import VirtualTestPlatform

    platform = VirtualTestPlatform(num_chips=num_chips,
                                   blocks_per_chip=blocks_per_chip,
                                   wordlines_per_block=1, seed=seed)
    sweeps = individual_parameter_sweep(platform)
    rows = []
    for parameter, entries in sweeps.items():
        for entry in entries:
            row = {"parameter": parameter}
            row.update(entry)
            rows.append(row)

    def delta(parameter, pec, months, reduction):
        for entry in sweeps[parameter]:
            if (entry["pe_cycles"] == pec and entry["retention_months"] == months
                    and abs(entry["reduction"] - reduction) < 1e-9):
                return entry["delta_m_err"]
        return None

    headline = {
        "Delta M_ERR for 47% tPRE reduction at (2K, 12 mo)":
            delta("pre", 2000, 12.0, 0.47),
        "Delta M_ERR for 47% tPRE reduction at (2K, 0 mo)":
            delta("pre", 2000, 0.0, 0.47),
        "Delta M_ERR for 20% tEVAL reduction on a fresh page":
            delta("eval", 0, 0.0, 0.20),
        "Delta M_ERR for 20% tDISCH reduction at (1K, 0 mo)":
            delta("disch", 1000, 0.0, 0.20),
    }
    return ExperimentResult(
        name="fig08",
        title="Figure 8: effect of reducing individual read-timing parameters",
        rows=rows,
        headline=headline,
        notes=["the paper reports ~30 additional errors for a 20% tEVAL "
               "reduction even on fresh pages, a ~60% retention-induced "
               "increase of the tPRE penalty at 2K P/E cycles, and safe "
               "reductions of 47%/10%/27% for tPRE/tEVAL/tDISCH at the worst "
               "condition"],
    )


def main() -> None:  # pragma: no cover
    print(run().to_text(max_rows=60))


if __name__ == "__main__":  # pragma: no cover
    main()
