"""Adversarial scenarios, the WorkloadSource protocol and deprecation shims."""

import warnings

import pytest

from repro.ssd.config import SsdConfig
from repro.ssd.request import RequestKind
from repro.workloads.catalog import (
    catalog_workload,
    generate_workload,
    iter_workload,
)
from repro.workloads.msrc import make_msrc_workload
from repro.workloads.scenarios import (
    PATTERNS,
    BurstTrain,
    ControlEvents,
    DiurnalCycle,
    HotColdZone,
    SequentialThenRandomRead,
    SnakeSweep,
    StridedRead,
    make_pattern,
)
from repro.workloads.source import (
    as_workload_source,
    is_workload_source,
    source_from_dict,
    source_kinds,
    source_to_dict,
)
from repro.workloads.ycsb import make_ycsb_workload

CONFIG = SsdConfig.tiny()


def _stream(source, n=None):
    requests = list(source.iter_requests(CONFIG))
    return requests if n is None else requests[:n]


def _key(request):
    return (request.arrival_us, request.kind, request.start_lpn,
            request.page_count)


# -- leaf patterns -------------------------------------------------------------
class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_same_seed_replays_identically(self, name):
        a = _stream(make_pattern(name, num_requests=60, seed=7))
        b = _stream(make_pattern(name, num_requests=60, seed=7))
        assert [_key(r) for r in a] == [_key(r) for r in b]
        assert len(a) == 60

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_arrivals_are_increasing(self, name):
        stream = _stream(make_pattern(name, num_requests=60, seed=1))
        arrivals = [r.arrival_us for r in stream]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_seq_then_random_prefix_is_sequential(self):
        source = SequentialThenRandomRead(num_requests=40,
                                          sequential_fraction=0.5, seed=0)
        stream = _stream(source)
        footprint = source._footprint(CONFIG, None)
        assert [r.start_lpn for r in stream[:20]] == [
            i % footprint for i in range(20)]
        assert all(r.kind is RequestKind.READ for r in stream)

    def test_snake_reverses_at_edges(self):
        source = SnakeSweep(num_requests=50, seed=0)
        lpns = [r.start_lpn for r in
                source.iter_requests(CONFIG, footprint_pages=10)]
        deltas = {b - a for a, b in zip(lpns, lpns[1:])}
        assert deltas == {1, -1}
        assert min(lpns) == 0 and max(lpns) == 9

    def test_stride_wraps_the_footprint(self):
        source = StridedRead(num_requests=12, stride=7, seed=0)
        lpns = [r.start_lpn for r in
                source.iter_requests(CONFIG, footprint_pages=10)]
        assert lpns == [(i * 7) % 10 for i in range(12)]

    def test_hot_cold_confines_writes_to_the_hot_zone(self):
        source = HotColdZone(num_requests=400, hot_fraction=0.1,
                             read_ratio=0.5, seed=3)
        footprint = 100
        stream = list(source.iter_requests(CONFIG, footprint_pages=footprint))
        hot_pages = 10
        writes = [r for r in stream if r.kind is RequestKind.WRITE]
        assert writes and all(r.start_lpn < hot_pages for r in writes)
        assert any(r.start_lpn >= hot_pages for r in stream)

    def test_unknown_pattern_raises(self):
        with pytest.raises(KeyError):
            make_pattern("tsunami")

    def test_validation(self):
        with pytest.raises(ValueError):
            SnakeSweep(num_requests=0)
        with pytest.raises(ValueError):
            StridedRead(stride=0)
        with pytest.raises(ValueError):
            HotColdZone(hot_fraction=1.5)


# -- arrival modulators and control events -------------------------------------
class TestWrappers:
    BASE = dict(num_requests=90, seed=5)

    def test_burst_train_keeps_the_request_mix(self):
        base = HotColdZone(**self.BASE)
        wrapped = BurstTrain(base, burst_length=16, compression=8.0,
                             idle_factor=4.0)
        plain = _stream(HotColdZone(**self.BASE))
        bursty = _stream(wrapped)
        assert [(r.kind, r.start_lpn) for r in bursty] == [
            (r.kind, r.start_lpn) for r in plain]
        arrivals = [r.arrival_us for r in bursty]
        assert arrivals == sorted(arrivals)

    def test_burst_train_compresses_within_bursts(self):
        base = SnakeSweep(**self.BASE)
        plain = _stream(SnakeSweep(**self.BASE))
        bursty = _stream(BurstTrain(base, burst_length=16, compression=8.0,
                                    idle_factor=1.0))
        # Idle factor 1 means every non-boundary gap shrinks 8x, so the
        # whole stream finishes well ahead of the unwrapped one.
        assert bursty[-1].arrival_us < plain[-1].arrival_us / 4

    def test_diurnal_cycle_preserves_order_and_mix(self):
        base = SnakeSweep(**self.BASE)
        wrapped = DiurnalCycle(base, period_us=5_000.0, amplitude=0.8)
        stream = _stream(wrapped)
        arrivals = [r.arrival_us for r in stream]
        assert arrivals == sorted(arrivals)
        assert [r.start_lpn for r in stream] == [
            r.start_lpn for r in _stream(SnakeSweep(**self.BASE))]

    def test_control_events_cadence(self):
        base = SnakeSweep(num_requests=60, seed=2)
        wrapped = ControlEvents(base, barrier_every=20, mark_every=15,
                                discard_every=12, discard_pages=2)
        stream = _stream(wrapped)
        kinds = [r.kind for r in stream]
        assert kinds.count(RequestKind.BARRIER) == 3
        assert kinds.count(RequestKind.MARK) == 4
        assert kinds.count(RequestKind.DISCARD) == 5
        assert kinds.count(RequestKind.READ) == 60
        discards = [r for r in stream if r.kind is RequestKind.DISCARD]
        assert all(r.page_count == 2 for r in discards)

    def test_wrappers_compose(self):
        source = BurstTrain(DiurnalCycle(SnakeSweep(num_requests=30, seed=1)))
        stream = _stream(source)
        assert len(stream) == 30
        assert source.label == "burst_train(diurnal(snake))"

    def test_validation(self):
        base = SnakeSweep(num_requests=10)
        with pytest.raises(ValueError):
            BurstTrain(base, burst_length=1)
        with pytest.raises(ValueError):
            DiurnalCycle(base, amplitude=1.0)
        with pytest.raises(ValueError):
            ControlEvents(base, discard_pages=0)


# -- the WorkloadSource protocol -----------------------------------------------
class TestSourceProtocol:
    def test_registry_covers_the_scenario_vocabulary(self):
        kinds = source_kinds()
        for expected in ("seq_then_random", "snake", "stride", "hot_cold",
                         "burst_train", "diurnal", "control_events",
                         "workload", "tenant_mix", "closed_loop"):
            assert expected in kinds

    @pytest.mark.parametrize("source", [
        SequentialThenRandomRead(num_requests=50, seed=4),
        SnakeSweep(num_requests=50, seed=4),
        StridedRead(num_requests=50, stride=5, seed=4),
        HotColdZone(num_requests=50, seed=4),
        BurstTrain(SnakeSweep(num_requests=50, seed=4)),
        DiurnalCycle(HotColdZone(num_requests=50, seed=4)),
        ControlEvents(SnakeSweep(num_requests=50, seed=4), barrier_every=10),
    ])
    def test_round_trip_preserves_stream(self, source):
        payload = source_to_dict(source)
        assert payload["kind"] == source.source_kind
        rebuilt = source_from_dict(payload)
        assert source_to_dict(rebuilt) == payload
        assert [_key(r) for r in _stream(rebuilt)] == [
            _key(r) for r in _stream(source)]

    def test_is_workload_source(self):
        assert is_workload_source(SnakeSweep(num_requests=10))
        assert not is_workload_source(object())
        assert not is_workload_source("snake")

    def test_as_workload_source_passthrough_and_coercions(self):
        ready = SnakeSweep(num_requests=10)
        assert as_workload_source(ready) is ready
        from repro.sim.spec import WorkloadSpec
        by_name = as_workload_source("usr_1", num_requests=20, seed=1)
        assert isinstance(by_name, WorkloadSpec)
        assert by_name.name == "usr_1" and by_name.num_requests == 20
        tagged = as_workload_source({"kind": "snake", "num_requests": 10})
        assert isinstance(tagged, SnakeSweep)

    def test_as_workload_source_rejects_junk(self):
        with pytest.raises((TypeError, KeyError, ValueError)):
            as_workload_source(42)


# -- deprecated entry points ---------------------------------------------------
class TestDeprecatedShims:
    def test_generate_workload_warns_and_matches_catalog_path(self):
        with pytest.warns(DeprecationWarning, match="generate_workload"):
            legacy = list(generate_workload("usr_1", num_requests=30,
                                            footprint_pages=256, seed=2))
        fresh = list(catalog_workload("usr_1", footprint_pages=256,
                                      seed=2).iter_requests(30))
        assert [_key(r) for r in legacy] == [_key(r) for r in fresh]

    def test_iter_workload_warns(self):
        with pytest.warns(DeprecationWarning, match="iter_workload"):
            stream = list(iter_workload("usr_1", num_requests=10,
                                        footprint_pages=128, seed=0))
        assert len(stream) == 10

    def test_make_ycsb_workload_warns(self):
        with pytest.warns(DeprecationWarning, match="make_ycsb_workload"):
            workload = make_ycsb_workload(0.5, 0.3, footprint_pages=128,
                                          seed=0)
        assert len(list(workload.iter_requests(5))) == 5

    def test_make_msrc_workload_warns(self):
        with pytest.warns(DeprecationWarning, match="make_msrc_workload"):
            workload = make_msrc_workload(0.9, 0.5, footprint_pages=128,
                                          seed=0)
        assert len(list(workload.iter_requests(5))) == 5

    def test_catalog_workload_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            catalog_workload("usr_1", footprint_pages=128, seed=0)
