"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.characterization.platform import VirtualTestPlatform
from repro.core.rpt import ReadTimingParameterTable
from repro.errors import CodewordErrorModel, OperatingCondition
from repro.errors.timing import ReadTimingErrorModel
from repro.errors.vth import ThresholdVoltageModel
from repro.nand.geometry import ChipGeometry
from repro.nand.timing import TimingParameters
from repro.ssd.config import SsdConfig


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the experiment artifact store away from the user's real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture(scope="session")
def error_model() -> CodewordErrorModel:
    return CodewordErrorModel()


@pytest.fixture(scope="session")
def vth_model() -> ThresholdVoltageModel:
    return ThresholdVoltageModel()


@pytest.fixture(scope="session")
def timing_error_model() -> ReadTimingErrorModel:
    return ReadTimingErrorModel()


@pytest.fixture(scope="session")
def timing() -> TimingParameters:
    return TimingParameters()


@pytest.fixture(scope="session")
def small_geometry() -> ChipGeometry:
    return ChipGeometry.small()


@pytest.fixture(scope="session")
def tiny_platform() -> VirtualTestPlatform:
    return VirtualTestPlatform(num_chips=4, blocks_per_chip=2,
                               wordlines_per_block=1, seed=1)


@pytest.fixture(scope="session")
def default_rpt() -> ReadTimingParameterTable:
    return ReadTimingParameterTable.default()


@pytest.fixture(scope="session")
def tiny_ssd_config() -> SsdConfig:
    return SsdConfig.tiny()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# Frequently used operating conditions.
@pytest.fixture(scope="session")
def fresh_condition() -> OperatingCondition:
    return OperatingCondition(pe_cycles=0, retention_months=0.0,
                              temperature_c=85.0)


@pytest.fixture(scope="session")
def aged_condition() -> OperatingCondition:
    return OperatingCondition(pe_cycles=2000, retention_months=12.0,
                              temperature_c=30.0)
