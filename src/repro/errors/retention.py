"""Arrhenius acceleration of retention loss.

The characterization platform of the paper bakes NAND flash chips at an
elevated temperature to emulate long retention ages in a short wall-clock
time: "13 hours at 85 degC is approximately equivalent to 1 year at 30 degC"
(Section 4).  JEDEC JESD218 / JESD22-A117 formalize this with Arrhenius's
law: the retention-loss rate is proportional to ``exp(-Ea / (k_B * T))`` with
an activation energy ``Ea`` of about 1.1 eV for charge de-trapping in 3D
charge-trap cells.

This module provides the conversion both ways:

* :func:`arrhenius_acceleration_factor` — how much faster retention loss
  proceeds at a bake temperature relative to a use temperature;
* :func:`effective_retention_months` — the effective retention age at the
  use temperature produced by a bake of a given duration;
* :func:`required_bake_hours` — the bake duration needed to emulate a target
  effective retention age (what the virtual test platform uses).
"""

from __future__ import annotations

import math

#: Boltzmann constant in electron-volts per kelvin.
BOLTZMANN_EV_PER_K = 8.617333262e-5

#: Activation energy of retention loss in 3D charge-trap NAND (eV).  Chosen
#: so that 13 hours at 85 degC map to approximately one year at 30 degC, the
#: equivalence quoted in Section 4 of the paper.
DEFAULT_ACTIVATION_ENERGY_EV = 1.1

#: Reference use temperature of the JEDEC client-SSD retention requirement.
DEFAULT_USE_TEMPERATURE_C = 30.0

HOURS_PER_MONTH = 24.0 * 365.0 / 12.0


def _kelvin(temperature_c: float) -> float:
    kelvin = temperature_c + 273.15
    if kelvin <= 0:
        raise ValueError(f"temperature below absolute zero: {temperature_c}C")
    return kelvin


def arrhenius_acceleration_factor(
        bake_temperature_c: float,
        use_temperature_c: float = DEFAULT_USE_TEMPERATURE_C,
        activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV) -> float:
    """Acceleration factor of retention loss at ``bake_temperature_c``.

    A factor of ``F`` means one hour of bake ages the data as much as ``F``
    hours at the use temperature.  The factor is 1.0 when the two
    temperatures are equal and grows exponentially with the temperature gap.
    """
    if activation_energy_ev <= 0:
        raise ValueError("activation_energy_ev must be positive")
    t_bake = _kelvin(bake_temperature_c)
    t_use = _kelvin(use_temperature_c)
    exponent = (activation_energy_ev / BOLTZMANN_EV_PER_K) * (1.0 / t_use - 1.0 / t_bake)
    return math.exp(exponent)


def effective_retention_months(
        bake_hours: float,
        bake_temperature_c: float,
        use_temperature_c: float = DEFAULT_USE_TEMPERATURE_C,
        activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV) -> float:
    """Effective retention age (months at the use temperature) of a bake."""
    if bake_hours < 0:
        raise ValueError("bake_hours must be non-negative")
    factor = arrhenius_acceleration_factor(
        bake_temperature_c, use_temperature_c, activation_energy_ev)
    return bake_hours * factor / HOURS_PER_MONTH


def required_bake_hours(
        target_retention_months: float,
        bake_temperature_c: float,
        use_temperature_c: float = DEFAULT_USE_TEMPERATURE_C,
        activation_energy_ev: float = DEFAULT_ACTIVATION_ENERGY_EV) -> float:
    """Bake duration (hours) emulating ``target_retention_months`` of aging."""
    if target_retention_months < 0:
        raise ValueError("target_retention_months must be non-negative")
    factor = arrhenius_acceleration_factor(
        bake_temperature_c, use_temperature_c, activation_energy_ev)
    return target_retention_months * HOURS_PER_MONTH / factor
