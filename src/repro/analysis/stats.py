"""Summary statistics used when aggregating experiment results."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional way to average normalized ratios)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean of an empty sequence")
    if np.any(array <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def bootstrap_confidence_interval(values: Sequence[float],
                                  confidence: float = 0.95,
                                  num_resamples: int = 2000,
                                  seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval of the mean."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    resampled_means = np.array([
        rng.choice(array, size=array.size, replace=True).mean()
        for _ in range(num_resamples)
    ])
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(resampled_means, alpha)),
            float(np.quantile(resampled_means, 1.0 - alpha)))


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p99 / min / max of a sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return {
        "count": int(array.size),
        "mean": float(array.mean()),
        "median": float(np.median(array)),
        "p99": float(np.percentile(array, 99.0)),
        "min": float(array.min()),
        "max": float(array.max()),
    }
