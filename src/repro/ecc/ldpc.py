"""Regular LDPC codes with a bit-flipping decoder.

Recent SSD controllers use low-density parity-check (LDPC) codes instead of
BCH because soft-decision LDPC decoding extends the correctable error range
(Section 2.4 references Gallager's original construction).  This module
implements a (d_v, d_c)-regular Gallager construction and two hard-decision
decoders (Gallager-B style bit flipping and a weighted variant), which is
enough to exercise realistic decode-success behaviour in the tests and
examples.

The SSD simulator itself abstracts ECC by capability and latency
(:mod:`repro.ecc.engine`); this codec exists to validate that abstraction
and to support experimentation with different code rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LdpcDecodeResult:
    """Result of decoding one LDPC codeword."""

    success: bool
    iterations: int
    codeword: np.ndarray

    @property
    def converged(self) -> bool:
        return self.success


class GallagerLdpcCode:
    """A (d_v, d_c)-regular LDPC code built with Gallager's construction.

    :param n: codeword length in bits (must be divisible by ``d_c``).
    :param d_v: variable-node degree (number of checks each bit participates in).
    :param d_c: check-node degree (number of bits per parity check).
    :param seed: seed of the random column permutations used by the
        construction.
    """

    def __init__(self, n: int = 1024, d_v: int = 3, d_c: int = 8, seed: int = 0):
        if n % d_c:
            raise ValueError("n must be divisible by d_c")
        if d_v < 2:
            raise ValueError("d_v must be at least 2")
        self.n = n
        self.d_v = d_v
        self.d_c = d_c
        self.m = n * d_v // d_c  # number of parity checks
        self.parity_check = self._build_parity_check(np.random.default_rng(seed))

    def _build_parity_check(self, rng: np.random.Generator) -> np.ndarray:
        """Stack ``d_v`` permuted copies of the band sub-matrix (Gallager)."""
        rows_per_band = self.n // self.d_c
        band = np.zeros((rows_per_band, self.n), dtype=np.uint8)
        for row in range(rows_per_band):
            band[row, row * self.d_c:(row + 1) * self.d_c] = 1
        blocks = [band]
        for _ in range(self.d_v - 1):
            permutation = rng.permutation(self.n)
            blocks.append(band[:, permutation])
        return np.vstack(blocks)

    # -- code properties ----------------------------------------------------------
    @property
    def rate(self) -> float:
        """Design rate of the code (k / n, ignoring rank deficiencies)."""
        return 1.0 - self.m / self.n

    def syndrome(self, word: np.ndarray) -> np.ndarray:
        """Parity-check syndrome (zero vector means the word is a codeword)."""
        word = np.asarray(word, dtype=np.uint8)
        if word.size != self.n:
            raise ValueError(f"word must have {self.n} bits")
        return (self.parity_check @ word) % 2

    def is_codeword(self, word: np.ndarray) -> bool:
        return not np.any(self.syndrome(word))

    # -- encoding -------------------------------------------------------------------
    def zero_codeword(self) -> np.ndarray:
        """The all-zero codeword (always valid for a linear code).

        LDPC encoding requires bringing the parity-check matrix to systematic
        form; for error-correction experiments the standard shortcut is to
        transmit the all-zero codeword, since the code is linear and the
        decoder's behaviour depends only on the error pattern.
        """
        return np.zeros(self.n, dtype=np.uint8)

    def corrupt(self, codeword: np.ndarray, num_errors: int,
                rng: np.random.Generator) -> np.ndarray:
        """Flip ``num_errors`` random bit positions of a codeword."""
        corrupted = np.array(codeword, dtype=np.uint8, copy=True)
        if num_errors < 0:
            raise ValueError("num_errors must be non-negative")
        if num_errors:
            positions = rng.choice(self.n, size=min(num_errors, self.n),
                                   replace=False)
            corrupted[positions] ^= 1
        return corrupted

    # -- decoding ---------------------------------------------------------------------
    def decode(self, received: np.ndarray,
               max_iterations: int = 100,
               flip_threshold: Optional[int] = None) -> LdpcDecodeResult:
        """Hard-decision bit-flipping decoding.

        At each iteration, every unsatisfied parity check votes against the
        bits it covers, and the bits with the most failing checks are
        flipped (the classic Gallager bit-flipping schedule).  An optional
        ``flip_threshold`` additionally requires at least that many failing
        checks before a bit may flip.  Decoding stops when the syndrome is
        zero or after ``max_iterations``.
        """
        word = np.array(received, dtype=np.uint8, copy=True)
        if word.size != self.n:
            raise ValueError(f"received word must have {self.n} bits")

        for iteration in range(1, max_iterations + 1):
            syndrome = self.syndrome(word)
            if not np.any(syndrome):
                return LdpcDecodeResult(True, iteration - 1, word)
            failed_votes = self.parity_check.T @ syndrome
            worst = int(failed_votes.max())
            if worst == 0:
                break
            if flip_threshold is not None and worst < flip_threshold:
                break
            # Flipping only the worst offenders each round avoids the
            # oscillations that flipping every above-threshold bit causes.
            word[failed_votes == worst] ^= 1

        success = self.is_codeword(word)
        return LdpcDecodeResult(success, max_iterations, word)

    def correction_rate(self, num_errors: int, trials: int,
                        rng: np.random.Generator,
                        max_iterations: int = 50) -> float:
        """Fraction of random ``num_errors``-bit patterns decoded successfully."""
        if trials <= 0:
            raise ValueError("trials must be positive")
        successes = 0
        zero = self.zero_codeword()
        for _ in range(trials):
            received = self.corrupt(zero, num_errors, rng)
            result = self.decode(received, max_iterations=max_iterations)
            if result.success and not np.any(result.codeword):
                successes += 1
        return successes / trials
