"""Read-retry policies evaluated in Section 7 of the paper.

A policy answers two questions for every flash read the SSD simulator
serves:

1. *How many retry steps does this read perform?*  Baseline, PR2, AR2 and
   PnAR2 keep the number dictated by the NAND error behaviour; the ideal
   NoRR performs none; PSO (the prior-work baseline of Section 7.3) starts
   the retry sequence from previously learned V_REF values and therefore
   needs far fewer steps.
2. *How long does the read take and how long does it occupy the die, the
   channel and the ECC engine?*  This is where PR2's pipelining and AR2's
   reduced sensing latency enter, via :class:`repro.core.latency.ReadLatencyModel`.

Policies are stateless strategy objects, so one instance can be shared by
every die of a simulated SSD.
"""

from __future__ import annotations

import abc
from typing import Dict, Tuple

from repro.core.latency import ReadLatencyBreakdown, ReadLatencyModel
from repro.core.rpt import ReadTimingParameterTable
from repro.errors.condition import OperatingCondition
from repro.nand.geometry import PageType
from repro.nand.timing import TimingParameters
from repro.sim.registry import DEFAULT_REGISTRY, register_policy


class ReadRetryPolicy(abc.ABC):
    """Strategy interface of a read-retry mechanism."""

    #: Short identifier used in experiment tables (overridden by subclasses).
    name: str = "abstract"

    #: Bound on the per-policy breakdown memo (distinct (steps, page type,
    #: condition) triples; a simulation run sees at most a few hundred).
    _BREAKDOWN_CACHE_LIMIT = 65_536

    def __init__(self, timing: TimingParameters = None,
                 rpt: ReadTimingParameterTable = None):
        self.timing = timing or TimingParameters()
        self.latency_model = ReadLatencyModel(self.timing)
        self._rpt = rpt
        self._breakdown_cache: Dict[tuple, ReadLatencyBreakdown] = {}

    # -- behaviour ---------------------------------------------------------------
    def effective_retry_steps(self, required_steps: int,
                              condition: OperatingCondition) -> int:
        """Retry steps actually performed for a read that *needs* ``required_steps``.

        The default keeps the NAND-dictated count; NoRR and PSO override it.
        """
        if required_steps < 0:
            raise ValueError("required_steps must be non-negative")
        return required_steps

    @abc.abstractmethod
    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        """Latency/occupancy breakdown of one read under this policy."""

    def breakdown_for(self, required_steps: int, page_type: PageType,
                      condition: OperatingCondition) -> ReadLatencyBreakdown:
        """Memoized :meth:`read_breakdown` (the simulator's hot path).

        A breakdown is a pure function of its arguments, and a simulation
        run only ever sees a handful of distinct (steps, page type,
        condition) triples, so the simulator calls this wrapper instead of
        recomputing the latency model per read.
        """
        key = (required_steps, page_type, condition.pe_cycles,
               condition.retention_months, condition.temperature_c)
        breakdown = self._breakdown_cache.get(key)
        if breakdown is None:
            breakdown = self.read_breakdown(required_steps, page_type,
                                            condition)
            if len(self._breakdown_cache) < self._BREAKDOWN_CACHE_LIMIT:
                self._breakdown_cache[key] = breakdown
        return breakdown

    # -- AR2 helpers ----------------------------------------------------------------
    @property
    def uses_reduced_timing(self) -> bool:
        """Whether this policy shortens the retry steps' sensing latency."""
        return False

    @property
    def rpt(self) -> ReadTimingParameterTable:
        """The Read-timing Parameter Table (built lazily when first needed)."""
        if self._rpt is None:
            self._rpt = ReadTimingParameterTable.default()
        return self._rpt

    def reduced_timing_for(self, condition: OperatingCondition):
        """Reduced read-timing parameters AR2 installs for a condition."""
        return self.rpt.reduced_timing_for(condition.pe_cycles,
                                           condition.retention_months)

    # -- cosmetics --------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@register_policy(tags=("fig14", "fig15"))
class BaselinePolicy(ReadRetryPolicy):
    """Regular read-retry of a high-end SSD (Figure 12(a))."""

    name = "Baseline"

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        steps = self.effective_retry_steps(required_steps, condition)
        return self.latency_model.baseline(steps, page_type)


@register_policy(tags=("fig14",))
class PR2Policy(ReadRetryPolicy):
    """Pipelined Read-Retry: retry steps overlap via CACHE READ (Section 6.1)."""

    name = "PR2"

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        steps = self.effective_retry_steps(required_steps, condition)
        return self.latency_model.pr2(steps, page_type)


@register_policy(tags=("fig14",))
class AR2Policy(ReadRetryPolicy):
    """Adaptive Read-Retry: retry steps use an RPT-reduced tPRE (Section 6.2)."""

    name = "AR2"

    @property
    def uses_reduced_timing(self) -> bool:
        return True

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        steps = self.effective_retry_steps(required_steps, condition)
        if steps == 0:
            return self.latency_model.baseline(0, page_type)
        return self.latency_model.ar2(steps, page_type,
                                      self.reduced_timing_for(condition))


@register_policy(tags=("fig14",))
class PnAR2Policy(ReadRetryPolicy):
    """PR2 and AR2 combined (the paper's full proposal, Equation (5))."""

    name = "PnAR2"

    @property
    def uses_reduced_timing(self) -> bool:
        return True

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        steps = self.effective_retry_steps(required_steps, condition)
        if steps == 0:
            return self.latency_model.baseline(0, page_type)
        return self.latency_model.pnar2(steps, page_type,
                                        self.reduced_timing_for(condition))


@register_policy(tags=("fig14", "fig15"))
class NoRRPolicy(ReadRetryPolicy):
    """Ideal SSD where read-retry never occurs (upper bound of Section 7.2)."""

    name = "NoRR"

    def effective_retry_steps(self, required_steps: int,
                              condition: OperatingCondition) -> int:
        super().effective_retry_steps(required_steps, condition)
        return 0

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        return self.latency_model.no_retry(page_type)


@register_policy(tags=("fig15",))
class PSOPolicy(ReadRetryPolicy):
    """Process-Similarity-aware Optimization (Shim et al. [84], Section 7.3).

    PSO reuses the V_REF values recently learned from other pages with
    similar error characteristics, so a read starts its retry sequence close
    to the optimal voltages: the paper reports roughly a 70% reduction in the
    number of retry steps but never fewer than three steps per read in an
    aged SSD.  PSO changes only the *number* of steps; the latency of each
    step follows the wrapped mechanism (regular read-retry by default, or
    PnAR2 for the ``PSO+PnAR2`` configuration).

    :param mechanism: the latency mechanism the retry steps use
        ("baseline" or "pnar2").
    :param step_fraction: fraction of the NAND-required steps PSO still needs.
    :param min_steps: floor on the number of steps when any retry is needed.
    """

    name = "PSO"

    def __init__(self, timing: TimingParameters = None,
                 rpt: ReadTimingParameterTable = None,
                 mechanism: str = "baseline",
                 step_fraction: float = 0.3,
                 min_steps: int = 3):
        super().__init__(timing=timing, rpt=rpt)
        mechanism = mechanism.lower()
        if mechanism not in ("baseline", "pnar2"):
            raise ValueError("PSO can wrap 'baseline' or 'pnar2' mechanisms")
        if not 0.0 < step_fraction <= 1.0:
            raise ValueError("step_fraction must be in (0, 1]")
        if min_steps < 1:
            raise ValueError("min_steps must be at least 1")
        self.mechanism = mechanism
        self.step_fraction = step_fraction
        self.min_steps = min_steps
        if mechanism == "pnar2":
            self.name = "PSO+PnAR2"

    @property
    def uses_reduced_timing(self) -> bool:
        return self.mechanism == "pnar2"

    def effective_retry_steps(self, required_steps: int,
                              condition: OperatingCondition) -> int:
        super().effective_retry_steps(required_steps, condition)
        if required_steps == 0:
            return 0
        predicted = max(self.min_steps, round(self.step_fraction * required_steps))
        return min(required_steps, predicted)

    def read_breakdown(self, required_steps: int, page_type: PageType,
                       condition: OperatingCondition) -> ReadLatencyBreakdown:
        steps = self.effective_retry_steps(required_steps, condition)
        if self.mechanism == "baseline" or steps == 0:
            return self.latency_model.baseline(steps, page_type)
        return self.latency_model.pnar2(steps, page_type,
                                        self.reduced_timing_for(condition))


# The PSO+PnAR2 configuration of Figure 15 is PSOPolicy wrapping the PnAR2
# latency mechanism; it registers as its own named configuration.
DEFAULT_REGISTRY.register(
    "PSO+PnAR2",
    lambda timing=None, rpt=None, **kwargs: PSOPolicy(
        timing=timing, rpt=rpt, mechanism="pnar2", **kwargs),
    tags=("fig15",),
    doc="PSO with PnAR2 retry steps (Figure 15's combined configuration).")


def available_policies() -> Tuple[str, ...]:
    """Names of every registered SSD configuration."""
    return DEFAULT_REGISTRY.names()


def get_policy(name: str, timing: TimingParameters = None,
               rpt: ReadTimingParameterTable = None) -> ReadRetryPolicy:
    """Instantiate a policy by (case-insensitive) registry name."""
    return DEFAULT_REGISTRY.create(name, timing=timing, rpt=rpt)


def policy_suite(names=None, timing: TimingParameters = None,
                 rpt: ReadTimingParameterTable = None) -> Dict[str, ReadRetryPolicy]:
    """Instantiate several policies sharing one timing model and RPT."""
    return DEFAULT_REGISTRY.suite(names, timing=timing, rpt=rpt)
