"""Tests for the process-variation model."""

import pytest

from repro.errors.variation import ProcessVariation, VariationSample


class TestVariationSample:
    def test_nominal(self):
        sample = VariationSample.nominal()
        assert sample.shift_multiplier == 1.0
        assert sample.sigma_multiplier == 1.0
        assert sample.timing_multiplier == 1.0

    def test_positive_validation(self):
        with pytest.raises(ValueError):
            VariationSample(shift_multiplier=0.0)
        with pytest.raises(ValueError):
            VariationSample(timing_multiplier=-1.0)


class TestProcessVariation:
    def test_deterministic_per_address(self):
        variation = ProcessVariation(seed=11)
        first = variation.sample(chip=3, block=7, wordline=2)
        second = ProcessVariation(seed=11).sample(chip=3, block=7, wordline=2)
        assert first == second

    def test_different_addresses_differ(self):
        variation = ProcessVariation(seed=11)
        assert (variation.sample(0, 0, 0) != variation.sample(0, 0, 1))
        assert (variation.sample(0, 0, 0) != variation.sample(1, 0, 0))

    def test_different_seeds_differ(self):
        first = ProcessVariation(seed=1).sample(0, 0, 0)
        second = ProcessVariation(seed=2).sample(0, 0, 0)
        assert first != second

    def test_population_is_centred_near_one(self):
        variation = ProcessVariation(seed=5)
        samples = [variation.sample(chip, block, wordline)
                   for chip in range(6) for block in range(6)
                   for wordline in range(3)]
        mean_shift = sum(s.shift_multiplier for s in samples) / len(samples)
        mean_sigma = sum(s.sigma_multiplier for s in samples) / len(samples)
        assert 0.9 < mean_shift < 1.1
        assert 0.97 < mean_sigma < 1.03
        # All multipliers stay positive and within a plausible silicon range.
        assert all(0.6 < s.shift_multiplier < 1.6 for s in samples)
        assert all(0.9 < s.sigma_multiplier < 1.12 for s in samples)

    def test_block_sample_matches_wordline_zero(self):
        variation = ProcessVariation(seed=5)
        assert variation.block_sample(2, 9) == variation.sample(2, 9, 0)

    def test_cache_reuse_returns_same_object(self):
        variation = ProcessVariation(seed=5)
        assert variation.sample(1, 1, 1) is variation.sample(1, 1, 1)

    def test_seed_property(self):
        assert ProcessVariation(seed=42).seed == 42
