"""Offline profiling of safe tPRE reductions (Figure 11 and Figure 13's RPT).

AR2's correctness hinges on choosing, for every operating-condition bin, a
tPRE value whose additional errors stay within the ECC-capability margin of
the final retry step — with a 14-bit safety margin on top (7 bits for
temperature-induced errors plus 7 bits for outlier pages, Section 5.2.3).
The paper finds the safe reduction ranges from 40% under the worst condition
to 54% under the best (Figure 11).

This module performs that profiling against the calibrated error model and
produces the :class:`repro.core.rpt.ReadTimingParameterTable` the SSD
controller queries at run time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.characterization.platform import VirtualTestPlatform
from repro.core.rpt import (
    DEFAULT_PEC_BIN_EDGES,
    DEFAULT_RETENTION_BIN_EDGES_MONTHS,
    ReadTimingParameterTable,
    RptEntry,
)
from repro.errors.calibration import ECC_CALIBRATION
from repro.errors.condition import OperatingCondition
from repro.errors.timing import TimingReduction
from repro.nand.geometry import PageType
from repro.nand.timing import ReadTimingParameters

#: Candidate tPRE reductions considered by the profiler (the granularity of
#: Figure 11's y-axis).
CANDIDATE_PRE_REDUCTIONS = (0.0, 0.07, 0.13, 0.20, 0.27, 0.34, 0.40, 0.47,
                            0.54, 0.60)

#: Profiling temperature: the paper profiles at the temperature that maximizes
#: the error count (30 degC, see Section 5.1's temperature observation).
PROFILING_TEMPERATURE_C = 30.0


def _profiling_platform() -> VirtualTestPlatform:
    """A small but representative page population for profiling."""
    return VirtualTestPlatform(num_chips=6, blocks_per_chip=3,
                               wordlines_per_block=2,
                               page_types=(PageType.CSB,))


def safe_pre_reduction(condition: OperatingCondition,
                       platform: VirtualTestPlatform = None,
                       safety_margin_bits: int = None,
                       candidates: Sequence[float] = CANDIDATE_PRE_REDUCTIONS
                       ) -> Tuple[float, float]:
    """Largest candidate tPRE reduction that keeps the final step decodable.

    :return: ``(reduction, remaining_margin_bits)`` for the chosen reduction.
    """
    platform = platform or _profiling_platform()
    if safety_margin_bits is None:
        safety_margin_bits = ECC_CALIBRATION.ar2_safety_margin_bits
    capability = ECC_CALIBRATION.capability_bits
    base_errors = platform.max_final_step_errors(condition)
    budget = capability - safety_margin_bits - base_errors

    best_reduction = 0.0
    best_margin = capability - base_errors
    model = platform.error_model.timing_model
    worst_variation = max((sample.variation for sample in platform.pages()),
                          key=lambda variation: variation.timing_multiplier)
    for candidate in sorted(candidates):
        if candidate == 0.0:
            continue
        delta = model.additional_errors_per_codeword(
            TimingReduction(pre=candidate), condition, worst_variation)
        if delta <= budget:
            best_reduction = candidate
            best_margin = capability - base_errors - delta
        else:
            break
    return best_reduction, best_margin


def minimum_safe_tpre_sweep(
        platform: VirtualTestPlatform = None,
        pe_cycles: Sequence[int] = (0, 1000, 2000),
        retention_months: Sequence[float] = (0.0, 3.0, 6.0, 9.0, 12.0),
        default_timing: ReadTimingParameters = None,
) -> List[dict]:
    """Figure 11: minimum safe tPRE (maximum reduction) per condition."""
    platform = platform or _profiling_platform()
    default_timing = default_timing or ReadTimingParameters()
    rows = []
    for pec in pe_cycles:
        for months in retention_months:
            condition = OperatingCondition(pe_cycles=pec,
                                           retention_months=months,
                                           temperature_c=PROFILING_TEMPERATURE_C)
            reduction, margin = safe_pre_reduction(condition, platform)
            rows.append({
                "pe_cycles": pec,
                "retention_months": months,
                "max_pre_reduction_pct": round(reduction * 100.0, 1),
                "min_t_pre_us": round(default_timing.t_pre_us * (1.0 - reduction), 2),
                "remaining_margin_bits": round(margin, 1),
            })
    return rows


def build_rpt(platform: VirtualTestPlatform = None,
              pec_bin_edges: Sequence[int] = DEFAULT_PEC_BIN_EDGES,
              retention_bin_edges_months: Sequence[float] = DEFAULT_RETENTION_BIN_EDGES_MONTHS,
              default_timing: ReadTimingParameters = None,
              safety_margin_bits: int = None) -> ReadTimingParameterTable:
    """Profile every (PEC, retention) bin and assemble the RPT (Figure 13).

    Each bin is profiled at its *upper* edges — the worst condition the bin
    covers — so every block mapped to the bin at run time is at least as
    healthy as the profiled point.
    """
    platform = platform or _profiling_platform()
    default_timing = default_timing or ReadTimingParameters()
    entries: Dict[Tuple[int, int], RptEntry] = {}
    for pec_index, pec_edge in enumerate(pec_bin_edges):
        for ret_index, ret_edge in enumerate(retention_bin_edges_months):
            condition = OperatingCondition(
                pe_cycles=pec_edge, retention_months=ret_edge,
                temperature_c=PROFILING_TEMPERATURE_C)
            reduction, margin = safe_pre_reduction(
                condition, platform, safety_margin_bits=safety_margin_bits)
            entries[(pec_index, ret_index)] = RptEntry(
                pre_reduction=reduction,
                t_pre_us=default_timing.t_pre_us * (1.0 - reduction),
                margin_bits=margin,
            )
    return ReadTimingParameterTable(
        entries, pec_bin_edges=pec_bin_edges,
        retention_bin_edges_months=retention_bin_edges_months,
        default_timing=default_timing)
