"""Bitwise guard: ``mapping="block"`` must reproduce the pre-DFTL results.

``tests/data/block_mode_golden.json`` was captured by
``scripts/generate_block_mode_golden.py`` *before* the DFTL subsystem was
merged, on the exact smoke-suite shape (two Table 2 workloads, fresh and
aged conditions, the four headline policies).  The default block mapping
re-runs the same grid here and every value that existed at capture time
must match exactly — new columns (write_amplification and friends) are
intentionally ignored, since adding columns is the one change the DFTL PR
makes to block-mode rows.
"""

import json
from pathlib import Path

import pytest

from repro.sim.sweep import SweepRunner
from repro.ssd.config import SsdConfig

FIXTURE = Path(__file__).parent / "data" / "block_mode_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def sweep(golden):
    config = SsdConfig.scaled(**golden["config"])
    runner = SweepRunner(config=config)
    return runner.run(policies=golden["policies"],
                      workloads=golden["workloads"],
                      conditions=[tuple(c) for c in golden["conditions"]],
                      num_requests=golden["num_requests"],
                      seed=golden["seed"])


def _row_key(row):
    return (row["workload"], row["pe_cycles"], row["retention_months"],
            row["policy"])


class TestBlockModeGolden:
    def test_default_mapping_is_block(self):
        assert SsdConfig().mapping == "block"
        assert SsdConfig.scaled().mapping == "block"
        assert SsdConfig.tiny().mapping == "block"

    def test_rows_bitwise_identical(self, golden, sweep):
        fresh = {_row_key(row): row for row in sweep.rows}
        assert len(sweep.rows) == len(golden["rows"])
        for row in golden["rows"]:
            new = fresh[_row_key(row)]
            for key, value in row.items():
                assert new[key] == value, (
                    f"{key} drifted for {_row_key(row)}: "
                    f"{new[key]!r} != golden {value!r}")

    def test_summaries_bitwise_identical(self, golden, sweep):
        seen = set()
        for (workload, pe_cycles, months), cell in sweep.cells.items():
            for policy, result in cell.items():
                key = f"{workload}|{pe_cycles}|{months}|{policy}"
                seen.add(key)
                summary = result.metrics.summary()
                for name, value in golden["summaries"][key].items():
                    assert summary[name] == value, (
                        f"summary[{name}] drifted for {key}: "
                        f"{summary[name]!r} != golden {value!r}")
        assert seen == set(golden["summaries"])

    def test_block_mode_reports_neutral_wear_metrics(self, sweep):
        # The flat table never misses and nothing amplifies writes beyond
        # GC, so the new columns take their documented neutral values.
        for row in sweep.rows:
            assert row["mapping_cache_hit_rate"] == 1.0
            assert row["translation_reads"] == 0
            assert row["translation_writes"] == 0

    def test_zero_fault_plan_keeps_golden_cells_bitwise(self, golden):
        # Arming an *empty* FaultPlan must leave the simulator on the
        # exact fault-free code path: re-running a golden grid cell with
        # one installed produces bitwise-identical metrics.
        from repro.sim.session import Simulation
        from repro.sim.spec import WorkloadSpec
        from repro.ssd.faults import FaultPlan

        config = SsdConfig.scaled(**golden["config"])
        spec = WorkloadSpec(name=golden["workloads"][0],
                            num_requests=golden["num_requests"],
                            seed=golden["seed"])
        condition = tuple(golden["conditions"][-1])

        def cell(simulation):
            return (simulation.policy(golden["policies"][-1]).workload(spec)
                    .condition(condition).run())

        plain = cell(Simulation(config))
        armed = cell(Simulation(config).faults(FaultPlan()))
        assert (armed.result.metrics.summary()
                == plain.result.metrics.summary())
        assert (armed.result.metrics.latency("all").to_dict()
                == plain.result.metrics.latency("all").to_dict())
