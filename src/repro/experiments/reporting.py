"""Shared result container and plain-text rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExperimentResult:
    """Tabular result of one experiment.

    :param name: experiment identifier (``"fig05"`` etc.).
    :param title: human-readable title referencing the paper artifact.
    :param rows: list of dict rows; all rows share the same keys.
    :param headline: the headline numbers the paper quotes in prose, used by
        EXPERIMENTS.md and the regression tests.
    :param notes: free-form caveats (e.g. reduced sample counts).
    """

    name: str
    title: str
    rows: List[dict] = field(default_factory=list)
    headline: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def columns(self) -> List[str]:
        if not self.rows:
            return []
        return list(self.rows[0].keys())

    def column(self, key: str) -> List[object]:
        return [row[key] for row in self.rows]

    def filter_rows(self, **criteria) -> List[dict]:
        """Rows matching all the given column values."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    # -- rendering ---------------------------------------------------------------
    def to_text(self, max_rows: Optional[int] = None) -> str:
        """Render the result as a fixed-width text table."""
        lines = [self.title, "=" * len(self.title)]
        if self.headline:
            lines.append("")
            lines.append("Headline numbers:")
            for key, value in self.headline.items():
                lines.append(f"  - {key}: {value}")
        if self.rows:
            lines.append("")
            columns = self.columns()
            rows = self.rows if max_rows is None else self.rows[:max_rows]
            widths = {column: max(len(str(column)),
                                  *(len(str(row[column])) for row in rows))
                      for column in columns}
            header = "  ".join(str(column).ljust(widths[column])
                               for column in columns)
            lines.append(header)
            lines.append("-" * len(header))
            for row in rows:
                lines.append("  ".join(str(row[column]).ljust(widths[column])
                                       for column in columns))
            if max_rows is not None and len(self.rows) > max_rows:
                lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text(max_rows=30)
