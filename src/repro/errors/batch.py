"""Vectorized evaluation of the codeword error model.

The simulator's read hot path asks one question over and over: *how many
read-retry steps does a read need under a given operating condition, page
type and process-variation corner?*  The scalar answer
(:meth:`repro.errors.rber.CodewordErrorModel.walk_retry_table`) re-derives
the threshold-voltage distributions for every retry step of every query,
which makes it the throughput ceiling of every figure, sweep and suite run.

This module evaluates the same model over *arrays* of variation corners and
retry steps in one numpy pass, with results that are **bit-for-bit
identical** to the scalar code.  Exactness is achieved by construction:

* per-condition scalars (retention shift, sigma widening, temperature
  extras, timing-error phase sums) are computed by the *scalar* model
  helpers themselves — ``numpy``'s transcendental ufuncs (``np.log1p``,
  ``np.power``) are not guaranteed to round identically to the ``math``
  module, so they are never used for condition math;
* everything vectorized uses only IEEE-754 basic operations (add, subtract,
  multiply, divide, min), which numpy evaluates exactly like Python floats,
  applied in the same order as the scalar code;
* the complementary error function is evaluated elementwise through
  ``math.erfc`` (via :func:`numpy.frompyfunc`), the exact function the
  scalar path calls.

The payoff is structural, not transcendental: the scalar walk rebuilds the
boundary distributions for each of up to 41 steps, while the batch kernel
builds them once per (condition, corner) and reuses the per-boundary tail
matrix across all three page types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors.condition import OperatingCondition
from repro.errors.rber import CodewordErrorModel
from repro.errors.timing import TimingReduction
from repro.errors.variation import VariationSample
from repro.nand.geometry import PageType
from repro.nand.voltage import (
    BOUNDARY_SHIFT_WEIGHTS,
    NUM_BOUNDARIES,
    ReadRetryTable,
    default_read_references_mv,
    fresh_state_means_mv,
)

_SQRT2 = math.sqrt(2.0)

#: Elementwise ``math.erfc``.  ``scipy.special.erfc`` and any polynomial
#: approximation differ from ``math.erfc`` in the last ulp on this platform,
#: which would break the bit-for-bit guarantee; ``frompyfunc`` keeps the C
#: loop overhead low while calling the identical libm routine per element.
_ERFC_UFUNC = np.frompyfunc(math.erfc, 1, 1)


def _erfc(values: np.ndarray) -> np.ndarray:
    return _ERFC_UFUNC(values).astype(np.float64)


@dataclass(frozen=True)
class VariationArrays:
    """Structure-of-arrays counterpart of :class:`VariationSample`.

    One entry per variation corner; all three arrays share the same length.
    """

    shift: np.ndarray
    sigma: np.ndarray
    timing: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.shift) == len(self.sigma) == len(self.timing)):
            raise ValueError("variation arrays must have equal lengths")

    def __len__(self) -> int:
        return len(self.shift)

    @classmethod
    def nominal(cls, count: int) -> "VariationArrays":
        ones = np.ones(count)
        return cls(shift=ones, sigma=ones.copy(), timing=ones.copy())

    @classmethod
    def from_samples(cls, samples: Iterable[VariationSample]) -> "VariationArrays":
        samples = list(samples)
        return cls(
            shift=np.array([s.shift_multiplier for s in samples]),
            sigma=np.array([s.sigma_multiplier for s in samples]),
            timing=np.array([s.timing_multiplier for s in samples]),
        )

    def sample_at(self, index: int) -> VariationSample:
        return VariationSample(
            shift_multiplier=float(self.shift[index]),
            sigma_multiplier=float(self.sigma[index]),
            timing_multiplier=float(self.timing[index]),
        )

    def take(self, indices: np.ndarray) -> "VariationArrays":
        return VariationArrays(
            shift=self.shift[indices],
            sigma=self.sigma[indices],
            timing=self.timing[indices],
        )


@dataclass(frozen=True)
class BatchRetryOutcome:
    """Vectorized counterpart of :class:`repro.errors.rber.RetryOutcome`.

    :param retry_steps: per-corner retry-step count; ``-1`` encodes the
        scalar model's ``None`` (table exhausted, a read failure).
    :param errors_per_step: full ``(corners, steps + 1)`` error matrix,
        column 0 being the initial default-V_REF read.  Unlike the scalar
        walk, the batch walk always evaluates every step; the scalar
        ``errors_per_step`` tuple is the row prefix up to the stop step.
    """

    retry_steps: np.ndarray
    final_errors: np.ndarray
    best_step_errors: np.ndarray
    errors_per_step: np.ndarray

    @property
    def succeeded(self) -> np.ndarray:
        return self.retry_steps >= 0


@dataclass(frozen=True)
class BatchReadBehaviour:
    """Structure-of-arrays counterpart of the flash backend's behaviours.

    Mirrors :class:`repro.ssd.flash_backend.ReadBehaviour` across a lattice
    of variation corners: retry steps with default timings, retry steps with
    the RPT-reduced timings, and the rare reduced-timing fallback flag.
    """

    retry_steps: np.ndarray
    retry_steps_reduced: np.ndarray
    reduced_timing_fallback: np.ndarray

    def __len__(self) -> int:
        return len(self.retry_steps)


class BatchErrorModel:
    """Array-at-a-time view of a :class:`CodewordErrorModel`."""

    def __init__(self, model: CodewordErrorModel = None):
        self._model = model or CodewordErrorModel()
        self._fresh_means = np.asarray(fresh_state_means_mv(), dtype=float)
        self._default_refs = np.asarray(default_read_references_mv())

    @property
    def model(self) -> CodewordErrorModel:
        return self._model

    # -- per-condition distribution parameters --------------------------------
    def _boundary_parameters(
        self,
        condition: OperatingCondition,
        variation: VariationArrays,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(means, sigmas)`` arrays of shape ``(corners, 8)``.

        Bitwise-equal to calling
        :meth:`ThresholdVoltageModel.state_means_mv` /
        :meth:`~ThresholdVoltageModel.state_sigmas_mv` per corner: the
        condition-only scalars come from the scalar helpers and the
        variation multipliers are applied with the same elementary
        operations in the same order.
        """
        vth = self._model.vth_model
        cal = vth.calibration
        count = len(variation)

        base_shift = vth.retention_shift_mv(condition)
        shift = base_shift * variation.shift
        means = np.empty((count, self._fresh_means.size))
        means[:, 0] = self._fresh_means[0] - shift * cal.erased_shift_fraction
        means[:, 1:] = self._fresh_means[1:][None, :] - shift[:, None]

        base_multiplier = vth.sigma_multiplier(condition)
        multiplier = base_multiplier * variation.sigma
        sigmas = np.empty_like(means)
        sigmas[:, 0] = cal.sigma_erased_fresh_mv * multiplier
        sigmas[:, 1:] = (cal.sigma_programmed_fresh_mv * multiplier)[:, None]
        return means, sigmas

    def _timing_extra(
        self,
        reduction: Optional[TimingReduction],
        condition: OperatingCondition,
        variation: VariationArrays,
    ) -> Optional[np.ndarray]:
        """Per-corner extra errors from reduced timings (``None`` if default).

        Vectorizes
        :meth:`ReadTimingErrorModel.additional_errors_per_codeword` over the
        timing multipliers: the condition-only pieces (phase-error sum,
        severity, temperature amplification) are scalar calls, the
        variation multiplier enters through the same multiply/min sequence.
        """
        if reduction is None or reduction.is_default:
            return None
        timing = self._model.timing_model
        cal = timing.calibration
        severity = timing.severity(condition) * variation.timing
        base_errors = timing.phase_error_sum(reduction) * severity

        temperature_factor = timing.temperature_amplification(condition)
        temperature_fraction = max(0.0, temperature_factor - 1.0)
        if cal.temperature_amplification_at_30c > 0:
            temperature_share = temperature_fraction / cal.temperature_amplification_at_30c
        else:
            temperature_share = 0.0
        temperature_extra = np.minimum(
            base_errors * temperature_fraction,
            cal.temperature_extra_error_cap_at_30c * temperature_share,
        )
        return base_errors + temperature_extra

    def _boundary_contributions(
        self,
        condition: OperatingCondition,
        shifts_mv: np.ndarray,
        variation: VariationArrays,
    ) -> np.ndarray:
        """Per-boundary error contributions, shape ``(corners, steps, 7)``.

        Entry ``[i, s, b]`` is ``cells_per_state * (low_tail + high_tail)``
        of boundary ``b`` at V_REF shift ``shifts_mv[s]`` for corner ``i`` —
        the term the scalar :meth:`CodewordErrorModel.expected_errors`
        accumulates per sensed boundary.  Computing all seven boundaries
        once lets the three page types share the heavy erfc work.
        """
        means, sigmas = self._boundary_parameters(condition, variation)
        lower_mu, lower_sigma = means[:, :-1], sigmas[:, :-1]
        upper_mu, upper_sigma = means[:, 1:], sigmas[:, 1:]
        cells_per_state = self._model.cells_per_state

        count, steps = len(variation), len(shifts_mv)
        contributions = np.empty((count, steps, NUM_BOUNDARIES))
        for boundary in range(NUM_BOUNDARIES):
            voltage = self._default_refs[boundary] + shifts_mv * BOUNDARY_SHIFT_WEIGHTS[boundary]
            voltages = voltage[None, :]
            low_z = (voltages - lower_mu[:, boundary, None]) / lower_sigma[:, boundary, None]
            low_tail = 0.5 * _erfc(low_z / _SQRT2)
            high_z = (upper_mu[:, boundary, None] - voltages) / upper_sigma[:, boundary, None]
            high_tail = 0.5 * _erfc(high_z / _SQRT2)
            contributions[:, :, boundary] = cells_per_state * (low_tail + high_tail)
        return contributions

    def _sum_page_errors(
        self,
        contributions: np.ndarray,
        page_type: PageType,
        temperature_extra: float,
        timing_extra: Optional[np.ndarray],
    ) -> np.ndarray:
        """Fold boundary contributions into ``(corners, steps)`` error counts.

        The sensed boundaries are accumulated in the scalar model's
        iteration order, then the temperature and timing extras are added in
        the scalar order, so every element reproduces the scalar float
        exactly.
        """
        errors = np.zeros(contributions.shape[:2])
        for boundary in page_type.sensed_boundaries:
            errors = errors + contributions[:, :, boundary]
        errors = errors + temperature_extra
        if timing_extra is not None:
            errors = errors + timing_extra[:, None]
        return errors

    # -- public API -----------------------------------------------------------
    def expected_errors_grid(
        self,
        condition: OperatingCondition,
        page_type: PageType,
        shifts_mv: Sequence[float],
        variation: VariationArrays,
        timing_reduction: TimingReduction = None,
    ) -> np.ndarray:
        """Expected errors over a (corner x V_REF-shift) grid.

        Returns shape ``(len(variation), len(shifts_mv))``; element
        ``[i, s]`` equals the scalar
        :meth:`CodewordErrorModel.expected_errors` bit for bit.
        """
        shifts = np.asarray(shifts_mv, dtype=float)
        contributions = self._boundary_contributions(condition, shifts, variation)
        temperature_extra = self._model.vth_model.temperature_extra_errors_per_kib(condition)
        timing_extra = self._timing_extra(timing_reduction, condition, variation)
        return self._sum_page_errors(contributions, page_type, temperature_extra, timing_extra)

    def expected_errors(
        self,
        pe_cycles,
        retention_months,
        temperature_c,
        page_type: PageType,
        reference_shift_mv=0.0,
        variation: VariationArrays = None,
        timing_reduction: TimingReduction = None,
    ) -> np.ndarray:
        """Elementwise expected errors over arrays of operating conditions.

        All array arguments are broadcast to a common length ``N``; the
        result is the ``(N,)`` array of per-item scalar
        :meth:`CodewordErrorModel.expected_errors` values.  Items are
        grouped by distinct condition so each group runs as one vector op.
        """
        pe = np.atleast_1d(np.asarray(pe_cycles))
        ret = np.atleast_1d(np.asarray(retention_months, dtype=float))
        temp = np.atleast_1d(np.asarray(temperature_c, dtype=float))
        shift_mv = np.atleast_1d(np.asarray(reference_shift_mv, dtype=float))
        count = max(
            len(pe),
            len(ret),
            len(temp),
            len(shift_mv),
            len(variation) if variation is not None else 1,
        )
        pe = np.broadcast_to(pe, (count,))
        ret = np.broadcast_to(ret, (count,))
        temp = np.broadcast_to(temp, (count,))
        shift_mv = np.broadcast_to(shift_mv, (count,))
        if variation is None:
            variation = VariationArrays.nominal(count)
        elif len(variation) == 1 and count > 1:
            variation = VariationArrays(
                shift=np.broadcast_to(variation.shift, (count,)),
                sigma=np.broadcast_to(variation.sigma, (count,)),
                timing=np.broadcast_to(variation.timing, (count,)),
            )
        if len(variation) != count:
            raise ValueError(
                f"variation arrays of length {len(variation)} do not broadcast to {count} items"
            )

        result = np.empty(count)
        item_keys = [
            (int(p), float(r), float(t), float(s)) for p, r, t, s in zip(pe, ret, temp, shift_mv)
        ]
        groups: Dict[tuple, list] = {}
        for index, key in enumerate(item_keys):
            groups.setdefault(key, []).append(index)
        for (p, r, t, s), indices in groups.items():
            condition = OperatingCondition(pe_cycles=p, retention_months=r, temperature_c=t)
            idx = np.asarray(indices)
            grid = self.expected_errors_grid(
                condition,
                page_type,
                [s],
                variation.take(idx),
                timing_reduction=timing_reduction,
            )
            result[idx] = grid[:, 0]
        return result

    def walk_retry_table(
        self,
        condition: OperatingCondition,
        page_type: PageType,
        variation: VariationArrays,
        table: ReadRetryTable = None,
        timing_reduction: TimingReduction = None,
        retry_timing_reduction: TimingReduction = None,
        capability: int = None,
    ) -> BatchRetryOutcome:
        """Vectorized :meth:`CodewordErrorModel.walk_retry_table`.

        Walks every corner of ``variation`` through the retry table under
        one operating condition; retry-step counts, final errors and
        best-step errors match the scalar walk bit for bit (``-1`` stands
        in for the scalar ``None``).  Only the deterministic expected-value
        walk is vectorized; Poisson-sampled walks stay scalar.
        """
        table = table or ReadRetryTable()
        capability = capability if capability is not None else self._model.ecc_capability
        if retry_timing_reduction is None:
            retry_timing_reduction = timing_reduction
        shifts = np.array([0.0] + [table.shift_for_step(step) for step in table.steps()])
        contributions = self._boundary_contributions(condition, shifts, variation)
        temperature_extra = self._model.vth_model.temperature_extra_errors_per_kib(condition)
        initial_extra = self._timing_extra(timing_reduction, condition, variation)
        retry_extra = self._timing_extra(retry_timing_reduction, condition, variation)
        base = self._sum_page_errors(contributions, page_type, temperature_extra, None)
        errors = base.copy()
        if initial_extra is not None:
            errors[:, 0] = base[:, 0] + initial_extra
        if retry_extra is not None:
            errors[:, 1:] = base[:, 1:] + retry_extra[:, None]
        return self._walk_from_errors(errors, capability)

    @staticmethod
    def _walk_from_errors(errors: np.ndarray, capability: float) -> BatchRetryOutcome:
        success = errors <= capability
        any_success = success.any(axis=1)
        first = np.argmax(success, axis=1)
        retry_steps = np.where(any_success, first, -1)

        rows = np.arange(errors.shape[0])
        # The scalar walk stops at the first success, so its running best
        # only covers the attempted prefix; failed walks attempt everything.
        stop = np.where(any_success, first, errors.shape[1] - 1)
        running_best = np.minimum.accumulate(errors, axis=1)
        best = running_best[rows, stop]
        final = np.where(any_success, errors[rows, first], best)
        return BatchRetryOutcome(
            retry_steps=retry_steps,
            final_errors=final,
            best_step_errors=best,
            errors_per_step=errors,
        )

    def read_behaviour_lattice(
        self,
        condition: OperatingCondition,
        variation: VariationArrays,
        pre_reduction: float,
        page_types: Sequence[PageType] = tuple(PageType),
        table: ReadRetryTable = None,
        capability: int = None,
    ) -> Dict[PageType, BatchReadBehaviour]:
        """The flash backend's read behaviour across a full corner lattice.

        For each page type, reproduces
        :meth:`repro.ssd.flash_backend.FlashBackend.read_behaviour` for
        every corner in one pass: the default-timing walk, the RPT-reduced
        retry walk (derived by adding the per-corner timing extra to the
        shared step errors, exactly the scalar operation order) and the
        reduced-timing fallback flag.  The seven per-boundary tail matrices
        are computed once and shared by all page types.
        """
        table = table or ReadRetryTable()
        capability = capability if capability is not None else self._model.ecc_capability
        shifts = np.array([0.0] + [table.shift_for_step(step) for step in table.steps()])
        contributions = self._boundary_contributions(condition, shifts, variation)
        temperature_extra = self._model.vth_model.temperature_extra_errors_per_kib(condition)
        timing_extra = None
        if pre_reduction > 0.0:
            reduction = TimingReduction(pre=pre_reduction)
            timing_extra = self._timing_extra(reduction, condition, variation)

        lattice: Dict[PageType, BatchReadBehaviour] = {}
        for page_type in page_types:
            errors = self._sum_page_errors(contributions, page_type, temperature_extra, None)
            success = errors <= capability
            any_success = success.any(axis=1)
            first = np.argmax(success, axis=1)
            # A failed default walk charges the whole table (footnote 13).
            default_steps = np.where(any_success, first, table.num_entries)

            if timing_extra is not None:
                reduced_errors = errors[:, 1:] + timing_extra[:, None]
                reduced_success = reduced_errors <= capability
                reduced_any = reduced_success.any(axis=1)
                reduced_first = np.argmax(reduced_success, axis=1) + 1
                needs_reduced = default_steps > 0
                fallback = needs_reduced & ~reduced_any
                reduced_steps = np.where(
                    needs_reduced,
                    np.where(reduced_any, reduced_first, default_steps),
                    default_steps,
                )
            else:
                reduced_steps = default_steps.copy()
                fallback = np.zeros(len(variation), dtype=bool)
            lattice[page_type] = BatchReadBehaviour(
                retry_steps=default_steps.astype(np.int64),
                retry_steps_reduced=reduced_steps.astype(np.int64),
                reduced_timing_fallback=fallback,
            )
        return lattice
