"""The ``repro-lint`` command-line interface.

::

    repro-lint                         # lint the configured paths
    repro-lint src/repro/ssd           # lint specific paths
    repro-lint --format github         # PR-annotation workflow commands
    repro-lint --format json           # machine-readable report
    repro-lint --json-report out.json  # additionally write the JSON report
    repro-lint --list-rules            # show the rule set

Exit status: 0 when clean, 1 when findings were reported, 2 on usage or
configuration errors.  Configuration comes from ``[tool.repro-lint]`` in
the project's ``pyproject.toml`` (discovered by walking up from the current
directory, or pinned with ``--root``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.config import LintConfig, LintConfigError
from repro.lint.engine import LintEngine
from repro.lint.reporting import FORMATS, format_json, render
from repro.lint.rules import RULE_NAMES, default_rules, rules_by_name


def discover_root(start: Optional[Path] = None) -> Path:
    """The nearest ancestor directory containing ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis enforcing the simulator's "
            "determinism and metrics invariants."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] paths)",
    )
    parser.add_argument(
        "--root",
        help="project root containing pyproject.toml (default: discovered "
        "by walking up from the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json-report",
        metavar="FILE",
        help="additionally write the JSON report to FILE (for CI artifacts)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run exclusively",
    )
    parser.add_argument(
        "--disable",
        metavar="RULES",
        help="comma-separated rule names to skip (on top of the config)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    return parser


def _split_names(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [name.strip() for name in raw.split(",") if name.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            scope = "sim paths" if rule.sim_scoped else "all linted paths"
            print(f"{rule.name} ({scope})")
            print(f"    {rule.description}")
        return 0

    root = Path(args.root).resolve() if args.root else discover_root()
    try:
        config = LintConfig.load(root)
        selected = _split_names(args.select)
        disabled = set(_split_names(args.disable))
        rules = rules_by_name(selected) if selected else default_rules()
        rules = tuple(rule for rule in rules if rule.name not in disabled)
        engine = LintEngine(config, rules=rules)
        findings = engine.lint_paths(args.paths or None)
    except (LintConfigError, FileNotFoundError, KeyError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"repro-lint: error: {message}", file=sys.stderr)
        return 2

    print(render(findings, args.format))
    if args.json_report:
        report_path = Path(args.json_report)
        if report_path.parent != Path("."):
            report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(format_json(findings) + "\n", encoding="utf-8")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
