"""Tests for per-die scheduling: read priority and program/erase suspension."""

import pytest

from repro.ssd.config import SsdConfig
from repro.ssd.engine import EventQueue
from repro.ssd.request import FlashTransaction, TransactionKind
from repro.ssd.scheduler import DieScheduler


def make_transaction(kind, issue_us=0.0):
    return FlashTransaction(kind=kind, lpn=0, channel=0, die=0, plane=0,
                            block=0, page=0, issue_us=issue_us)


SERVICE_TIMES = {
    TransactionKind.READ: 100.0,
    TransactionKind.GC_READ: 100.0,
    TransactionKind.PROGRAM: 700.0,
    TransactionKind.GC_PROGRAM: 700.0,
    TransactionKind.ERASE: 5000.0,
}


def build_scheduler(config=None, completed=None):
    config = config or SsdConfig.tiny()
    events = EventQueue()
    completed = completed if completed is not None else []
    scheduler = DieScheduler(
        (0, 0), config, events,
        service_time_fn=lambda txn: SERVICE_TIMES[txn.kind],
        on_complete=completed.append)
    return scheduler, events, completed


class TestBasicScheduling:
    def test_single_transaction_completes(self):
        scheduler, events, completed = build_scheduler()
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(read)
        events.run()
        assert completed == [read]
        assert read.service_start_us == 0.0
        assert read.completion_us == pytest.approx(100.0)
        assert scheduler.is_idle

    def test_reads_overtake_queued_programs(self):
        # Out-of-order I/O scheduling: a read enqueued behind programs is
        # served as soon as the die becomes free, before the programs.
        scheduler, events, completed = build_scheduler()
        first_program = make_transaction(TransactionKind.PROGRAM)
        second_program = make_transaction(TransactionKind.PROGRAM)
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(first_program)
        scheduler.enqueue(second_program)
        events.schedule(10.0, lambda: scheduler.enqueue(read))
        events.run()
        assert completed.index(read) < completed.index(second_program)

    def test_fifo_without_read_priority(self):
        config = SsdConfig.tiny(read_priority=False, suspension=False)
        scheduler, events, completed = build_scheduler(config)
        program = make_transaction(TransactionKind.PROGRAM)
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(program)
        scheduler.enqueue(read)
        events.run()
        assert completed == [program, read]

    def test_busy_time_accounting(self):
        scheduler, events, _ = build_scheduler()
        scheduler.enqueue(make_transaction(TransactionKind.READ))
        scheduler.enqueue(make_transaction(TransactionKind.READ))
        events.run()
        assert scheduler.total_busy_us == pytest.approx(200.0)
        assert scheduler.completed_transactions == 2


class TestSuspension:
    def test_read_suspends_inflight_program(self):
        scheduler, events, completed = build_scheduler()
        program = make_transaction(TransactionKind.PROGRAM)
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(program)
        events.schedule(200.0, lambda: scheduler.enqueue(read))
        events.run()
        # The read finishes long before the program would have (at 700 us).
        assert read.completion_us == pytest.approx(300.0)
        # The program pays the remaining time plus the suspension overhead.
        config = SsdConfig.tiny()
        expected_program_end = (300.0 + (700.0 - 200.0)
                                + config.timing.program_suspend_us)
        assert program.completion_us == pytest.approx(expected_program_end)
        assert scheduler.suspensions == 1

    def test_erase_suspension_uses_erase_overhead(self):
        scheduler, events, _ = build_scheduler()
        erase = make_transaction(TransactionKind.ERASE)
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(erase)
        events.schedule(1000.0, lambda: scheduler.enqueue(read))
        events.run()
        config = SsdConfig.tiny()
        expected = 1000.0 + 100.0 + 4000.0 + config.timing.erase_suspend_us
        assert erase.completion_us == pytest.approx(expected)

    def test_program_suspended_only_once(self):
        scheduler, events, completed = build_scheduler()
        program = make_transaction(TransactionKind.PROGRAM)
        scheduler.enqueue(program)
        events.schedule(100.0, lambda: scheduler.enqueue(
            make_transaction(TransactionKind.READ)))
        events.schedule(150.0, lambda: scheduler.enqueue(
            make_transaction(TransactionKind.READ)))
        events.run()
        assert scheduler.suspensions == 1
        assert len(completed) == 3

    def test_no_suspension_when_disabled(self):
        config = SsdConfig.tiny(suspension=False)
        scheduler, events, _ = build_scheduler(config)
        program = make_transaction(TransactionKind.PROGRAM)
        read = make_transaction(TransactionKind.READ)
        scheduler.enqueue(program)
        events.schedule(100.0, lambda: scheduler.enqueue(read))
        events.run()
        # The read waits for the full program.
        assert read.service_start_us == pytest.approx(700.0)
        assert scheduler.suspensions == 0

    def test_read_does_not_suspend_read(self):
        scheduler, events, _ = build_scheduler()
        first = make_transaction(TransactionKind.READ)
        second = make_transaction(TransactionKind.READ)
        scheduler.enqueue(first)
        events.schedule(10.0, lambda: scheduler.enqueue(second))
        events.run()
        assert second.service_start_us == pytest.approx(100.0)
        assert scheduler.suspensions == 0
