"""Table 2: I/O characteristics of the evaluated workloads.

Besides printing the catalog values, the experiment generates each synthetic
workload and reports the *measured* read ratio and cold ratio, demonstrating
that the generators reproduce the characteristics the paper lists.
"""

from __future__ import annotations

from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult
from repro.workloads.catalog import WORKLOAD_CATALOG
from repro.workloads.synthetic import SyntheticWorkload


@register_experiment(
    "table2",
    artifact="Table 2 — I/O characteristics of the evaluated workloads",
    tags=("paper", "table", "workloads"),
    params=(
        param("num_requests", 2000, "synthetic requests per workload",
              fast=800, smoke=300),
        param("footprint_pages", 20000, "logical pages each stream touches",
              fast=8000, smoke=4000),
        param("seed", 0, "workload-generator seed"),
    ))
def run(num_requests: int = 2000, footprint_pages: int = 20000,
        seed: int = 0) -> ExperimentResult:
    rows = []
    worst_gap = 0.0
    for spec in WORKLOAD_CATALOG.values():
        workload: SyntheticWorkload = spec.build(footprint_pages, seed=seed)
        requests = workload.generate(num_requests)
        measured = workload.measured_ratios(requests)
        gap = max(abs(measured["read_ratio"] - spec.read_ratio),
                  abs(measured["cold_ratio"] - spec.cold_ratio))
        worst_gap = max(worst_gap, gap)
        rows.append({
            "workload": spec.name,
            "suite": spec.suite,
            "read_ratio (paper)": spec.read_ratio,
            "read_ratio (measured)": round(measured["read_ratio"], 3),
            "cold_ratio (paper)": spec.cold_ratio,
            "cold_ratio (measured)": round(measured["cold_ratio"], 3),
        })
    return ExperimentResult(
        name="table2",
        title="Table 2: I/O characteristics of the evaluated workloads",
        rows=rows,
        headline={
            "workloads": len(rows),
            "largest paper-vs-measured ratio gap": round(worst_gap, 3),
        },
        notes=[f"measured over {num_requests} synthetic requests per workload"],
    )


def main() -> None:  # pragma: no cover
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
