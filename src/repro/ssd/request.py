"""Host requests and flash transactions.

A *host request* is what arrives over the (multi-queue) host interface: a
read or write of one or more consecutive logical pages, stamped with an
arrival time.  The controller splits it into per-page *flash transactions*
that are scheduled independently on the dies; the request completes when its
last transaction completes (reads) or when its data is accepted by the write
buffer (writes).

Host requests are treated as *immutable inputs* by the simulator: per-run
completion state lives in simulator-local bookkeeping, so the same request
objects can be replayed against several policies (or shared by a sweep's
stream cache) without defensive copies.  The ``completion_us`` /
``pending_pages`` fields remain for callers that track completion
themselves, but the simulator no longer writes to them.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    #: Control events carried in-stream so the scheduler and FTL see them
    #: in arrival order: TRIM/UNMAP of a logical range, a full-drain
    #: barrier, and a zero-cost timestamp marker.  They move no data and
    #: are never recorded into the latency histograms.
    DISCARD = "discard"
    BARRIER = "barrier"
    MARK = "mark"

    @property
    def is_control(self) -> bool:
        return self in (RequestKind.DISCARD, RequestKind.BARRIER,
                        RequestKind.MARK)


class TransactionKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    GC_READ = "gc_read"
    GC_PROGRAM = "gc_program"
    #: DFTL translation-page traffic (``mapping="page"``): mapping lookups
    #: that miss the cached mapping table read a translation page, dirty
    #: evictions and GC batch updates re-program one.  Both compete with
    #: host I/O for die time like any other transaction.
    TRANS_READ = "trans_read"
    TRANS_PROGRAM = "trans_program"

    @property
    def is_read(self) -> bool:
        return self in (TransactionKind.READ, TransactionKind.GC_READ,
                        TransactionKind.TRANS_READ)

    @property
    def is_background(self) -> bool:
        return self in (TransactionKind.GC_READ, TransactionKind.GC_PROGRAM,
                        TransactionKind.ERASE, TransactionKind.TRANS_READ,
                        TransactionKind.TRANS_PROGRAM)


_request_ids = itertools.count()
_transaction_ids = itertools.count()


@dataclass
class HostRequest:
    """One host-issued I/O request."""

    arrival_us: float
    kind: RequestKind
    start_lpn: int
    page_count: int = 1
    queue_id: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Caller-owned completion tracking; the simulator keeps its own
    # per-run bookkeeping and never writes to these.
    completion_us: Optional[float] = None
    pending_pages: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")
        if self.page_count <= 0:
            raise ValueError("page_count must be positive")
        if self.start_lpn < 0:
            raise ValueError("start_lpn must be non-negative")
        self.pending_pages = self.page_count

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_control(self) -> bool:
        return self.kind.is_control

    @property
    def lpns(self) -> List[int]:
        return list(range(self.start_lpn, self.start_lpn + self.page_count))

    @property
    def response_time_us(self) -> Optional[float]:
        if self.completion_us is None:
            return None
        return self.completion_us - self.arrival_us


@dataclass
class FlashTransaction:
    """One page-granularity operation dispatched to a die."""

    kind: TransactionKind
    lpn: Optional[int]
    channel: int
    die: int
    plane: int
    block: int
    page: int
    issue_us: float
    request: Optional[HostRequest] = None
    transaction_id: int = field(default_factory=lambda: next(_transaction_ids))

    # Filled in when the transaction is serviced.
    service_start_us: Optional[float] = None
    completion_us: Optional[float] = None
    retry_steps: int = 0

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def waiting_time_us(self) -> Optional[float]:
        if self.service_start_us is None:
            return None
        return self.service_start_us - self.issue_us

    def die_key(self) -> tuple:
        return (self.channel, self.die)
