"""Fleet layer: router, tenant mix, fleet runs, SLO capacity search."""

import pytest

from repro.sim import Simulation
from repro.sim.fleet import (
    CapacityResult,
    FleetRunner,
    FleetSpec,
    SloCapacitySearch,
)
from repro.sim.spec import Condition, WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.request import HostRequest, RequestKind
from repro.workloads.router import StripeRouter
from repro.workloads.tenants import TenantMix

CONFIG = SsdConfig.tiny()
AGED = Condition(1000, 6.0)


def _spec(n=120, seed=3, **kwargs):
    return WorkloadSpec(name="usr_1", num_requests=n, seed=seed,
                        mean_interarrival_us=700.0, **kwargs)


# -- StripeRouter --------------------------------------------------------------
class TestStripeRouter:
    def test_validation(self):
        with pytest.raises(ValueError):
            StripeRouter(devices=0)
        with pytest.raises(ValueError):
            StripeRouter(devices=2, stripe_unit_pages=0)
        with pytest.raises(ValueError):
            StripeRouter(devices=2, replication=3)

    def test_placement_round_robin(self):
        router = StripeRouter(devices=3, stripe_unit_pages=4)
        # Pages 0..3 on device 0, 4..7 on device 1, 8..11 on device 2,
        # 12..15 wrap to device 0 at local 4.
        assert router.placement(0) == (0, 0)
        assert router.placement(5) == (1, 1)
        assert router.placement(8) == (2, 0)
        assert router.placement(12) == (0, 4)

    def test_identity_when_single_device(self):
        router = StripeRouter(devices=1, stripe_unit_pages=8)
        for lpn in (0, 7, 8, 123):
            assert router.placement(lpn) == (0, lpn)

    def test_replica_locals_never_collide_with_primaries(self):
        router = StripeRouter(devices=4, stripe_unit_pages=2, replication=2)
        seen = {}
        for lpn in range(256):
            for device, local in router.replicas(lpn):
                key = (device, local)
                assert key not in seen, f"page {lpn} collides with {seen[key]}"
                seen[key] = lpn

    def test_read_rotates_across_replicas(self):
        router = StripeRouter(devices=4, stripe_unit_pages=1, replication=2)
        devices = {router.read_placement(lpn)[0] for lpn in range(0, 64, 4)}
        # Stripe groups alternate copy 0 / copy 1 for the same primary.
        assert len(devices) == 2

    def test_split_coalesces_contiguous_runs(self):
        router = StripeRouter(devices=2, stripe_unit_pages=2)
        request = HostRequest(arrival_us=5.0, kind=RequestKind.READ,
                              start_lpn=0, page_count=8, queue_id=7)
        parts = router.split(request)
        # A full stripe-group-aligned read becomes one run per device.
        assert sorted(device for device, _ in parts) == [0, 1]
        for device, sub in parts:
            assert sub.page_count == 4
            assert sub.arrival_us == 5.0
            assert sub.queue_id == 7
            assert sub.start_lpn == 0

    def test_write_fans_out_to_replicas(self):
        router = StripeRouter(devices=3, stripe_unit_pages=4, replication=2)
        request = HostRequest(arrival_us=0.0, kind=RequestKind.WRITE,
                              start_lpn=0, page_count=4)
        parts = router.split(request)
        assert sorted(device for device, _ in parts) == [0, 1]
        read = HostRequest(arrival_us=0.0, kind=RequestKind.READ,
                           start_lpn=0, page_count=4)
        assert len(router.split(read)) == 1

    def test_shard_preserves_arrival_order(self):
        router = StripeRouter(devices=2, stripe_unit_pages=4)
        stream = [HostRequest(arrival_us=float(i), kind=RequestKind.READ,
                              start_lpn=(i * 3) % 64, page_count=2)
                  for i in range(50)]
        for device in range(2):
            arrivals = [sub.arrival_us
                        for sub in router.shard(iter(stream), device)]
            assert arrivals == sorted(arrivals)

    def test_shard_rejects_unknown_device(self):
        router = StripeRouter(devices=2)
        with pytest.raises(ValueError):
            list(router.shard([], 2))


# -- TenantMix -----------------------------------------------------------------
class TestTenantMix:
    def test_merge_is_arrival_ordered_and_tagged(self):
        mix = TenantMix(tenants=(_spec(40, seed=1), _spec(40, seed=2)))
        requests = list(mix.iter_requests(CONFIG))
        assert len(requests) == 80
        arrivals = [request.arrival_us for request in requests]
        assert arrivals == sorted(arrivals)
        assert {request.queue_id for request in requests} == {0, 1}

    def test_namespaces_are_disjoint(self):
        mix = TenantMix(tenants=(_spec(60, seed=1), _spec(60, seed=2)))
        half = CONFIG.logical_pages // 2
        for request in mix.iter_requests(CONFIG):
            if request.queue_id == 0:
                assert request.start_lpn + request.page_count <= half
            else:
                assert request.start_lpn >= half

    def test_round_trip(self):
        mix = TenantMix(tenants=(_spec(30), _spec(30, seed=9)),
                        names=("kv", "log"))
        clone = TenantMix.from_dict(mix.to_dict())
        assert clone == mix
        assert clone.tenant_names() == ("kv", "log")

    def test_rate_scaling_preserves_composition(self):
        mix = TenantMix(tenants=(
            WorkloadSpec(name="usr_1", num_requests=10,
                         mean_interarrival_us=500.0),
            WorkloadSpec(name="stg_0", num_requests=10,
                         mean_interarrival_us=1000.0)))
        base = mix.total_arrival_rate_rps(700.0)
        scaled = mix.with_arrival_rate(2 * base, 700.0)
        assert scaled.total_arrival_rate_rps(700.0) == pytest.approx(2 * base)
        ratio = (scaled.tenants[0].mean_interarrival_us
                 / scaled.tenants[1].mean_interarrival_us)
        assert ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantMix(tenants=())
        with pytest.raises(ValueError):
            TenantMix(tenants=(_spec(10),), names=("a", "b"))

    def test_coerce_seeds_tenants_independently(self):
        # One shared seed would make same-name tenants emit lockstep,
        # bitwise-identical streams; coerce derives seed + index instead.
        mix = TenantMix.coerce(["usr_1", "usr_1"], num_requests=30, seed=7)
        assert mix.tenants[0].seed == 7
        assert mix.tenants[1].seed == 8
        arrivals = {0: [], 1: []}
        for request in mix.iter_requests(CONFIG):
            arrivals[request.queue_id].append(request.arrival_us)
        assert arrivals[0] != arrivals[1]
        # Ready-made specs keep their own seeds untouched.
        explicit = TenantMix.coerce([_spec(10, seed=3), _spec(10, seed=3)],
                                    seed=99)
        assert [spec.seed for spec in explicit.tenants] == [3, 3]


# -- FleetRunner ---------------------------------------------------------------
class TestFleetRunner:
    def test_single_device_fleet_matches_plain_run(self):
        spec = _spec(150)
        plain = (Simulation(CONFIG).policy("PnAR2").workload(spec)
                 .condition(AGED).run())
        fleet = (Simulation(CONFIG).policy("PnAR2").workload(spec)
                 .condition(AGED).fleet(1).run())
        plain_metrics = plain.result.metrics
        merged = fleet.result.merged
        assert merged.p99_response_time_us() == (
            plain_metrics.p99_response_time_us())
        assert merged.p999_response_time_us() == (
            plain_metrics.p999_response_time_us())
        assert merged.mean_response_time_us() == (
            plain_metrics.mean_response_time_us())
        assert merged.host_reads == plain_metrics.host_reads
        assert merged.host_writes == plain_metrics.host_writes

    def test_serial_and_parallel_fleets_are_bitwise_identical(self):
        fleet_spec = FleetSpec(devices=3, config=CONFIG, condition=AGED)
        serial = FleetRunner(fleet_spec, processes=1).run(
            _spec(), policies=("Baseline", "PnAR2"))
        parallel = FleetRunner(fleet_spec, processes=3).run(
            _spec(), policies=("Baseline", "PnAR2"))
        assert serial.rows() == parallel.rows()
        for policy in ("Baseline", "PnAR2"):
            assert (serial[policy].merged.latency("all").to_dict()
                    == parallel[policy].merged.latency("all").to_dict())

    def test_devices_see_disjoint_shards_covering_the_stream(self):
        fleet_spec = FleetSpec(devices=2, stripe_unit_pages=4,
                               config=CONFIG, condition=AGED)
        result = FleetRunner(fleet_spec).run(_spec(100), policies="Baseline")
        merged = result.result.merged
        # Striping splits some requests, so sub-request totals can exceed
        # the stream length but every request must land somewhere.
        assert merged.host_reads + merged.host_writes >= 100
        rows = result.result.device_rows()
        assert [row["device"] for row in rows] == [0, 1]
        for row in rows:
            assert row["host_reads"] + row["host_writes"] > 0

    def test_tenant_tails_and_device_rows(self):
        mix = TenantMix(tenants=(_spec(60, seed=1), _spec(60, seed=2)),
                        names=("kv", "log"))
        fleet_spec = FleetSpec(devices=2, config=CONFIG, condition=AGED)
        result = FleetRunner(fleet_spec).run(mix, policies="PnAR2").result
        tails = result.tenant_tails()
        assert set(tails) == {"kv", "log"}
        for tail in tails.values():
            assert tail["p50_us"] <= tail["p99_us"] <= tail["p999_us"]
        rows = result.device_rows()
        assert [row["device"] for row in rows] == [0, 1]
        assert result.utilization_skew() >= 1.0

    def test_heterogeneous_device_conditions(self):
        fleet_spec = FleetSpec(
            devices=2, config=CONFIG,
            device_conditions=(Condition(0, 0.0), Condition(3000, 12.0)))
        result = FleetRunner(fleet_spec).run(_spec(), policies="Baseline")
        assert fleet_spec.device_condition(0).pe_cycles == 0
        assert fleet_spec.device_condition(1).pe_cycles == 3000
        fresh, aged = result.result.device_rows()
        assert aged["mean_response_us"] > fresh["mean_response_us"]

    def test_explicit_request_list_source(self):
        requests = [HostRequest(arrival_us=i * 500.0, kind=RequestKind.READ,
                                start_lpn=i * 8, page_count=1)
                    for i in range(40)]
        fleet_spec = FleetSpec(devices=2, config=CONFIG)
        result = FleetRunner(fleet_spec).run(requests, policies="Baseline")
        merged = result.result.merged
        assert merged.host_reads == 40

    def test_explicit_request_list_is_sorted_like_single_device(self):
        # The single-device contract sorts pre-materialized sequences up
        # front; the fleet path must honor it for unsorted lists too.
        requests = [HostRequest(arrival_us=float(t), kind=RequestKind.READ,
                                start_lpn=t % 64, page_count=1)
                    for t in (5000, 0, 2500, 7500, 1000)]
        fleet_spec = FleetSpec(devices=2, config=CONFIG)
        result = FleetRunner(fleet_spec).run(requests, policies="Baseline")
        assert result.result.merged.host_reads == 5

    def test_plain_runs_keep_tenant_latency_empty(self):
        plain = (Simulation(CONFIG).policy("Baseline")
                 .workload("usr_1", n=40).run())
        assert plain.result.metrics.tenant_latency == {}
        fleet = (Simulation(CONFIG).policy("Baseline")
                 .workload("usr_1", n=40).fleet(2).run())
        assert fleet.result.merged.tenant_latency == {}

    def test_fleet_rejects_policy_instances(self):
        from repro.sim.registry import default_registry

        policy = default_registry().create("Baseline",
                                           timing=CONFIG.timing, rpt=None)
        simulation = (Simulation(CONFIG).policy(policy)
                      .workload("usr_1", n=20).fleet(2))
        with pytest.raises(ValueError, match="registry names"):
            simulation.run()

    def test_spec_validation_and_round_trip(self):
        with pytest.raises(ValueError):
            FleetSpec(devices=0)
        with pytest.raises(ValueError):
            FleetSpec(devices=2, replication=3)
        with pytest.raises(ValueError):
            FleetSpec(devices=2,
                      device_conditions=(Condition(0, 0.0),))
        spec = FleetSpec(devices=3, replication=2, config=CONFIG,
                         condition=AGED)
        assert FleetSpec.from_dict(spec.to_dict()) == spec
        assert spec.array_logical_pages == 3 * CONFIG.logical_pages // 2


# -- SLO capacity search -------------------------------------------------------
class TestCapacitySearch:
    def _runner(self):
        return FleetRunner(FleetSpec(devices=2, config=CONFIG,
                                     condition=AGED))

    def test_converges_within_tolerance(self):
        search = SloCapacitySearch(self._runner(), target_p99_us=20_000.0,
                                   tolerance=0.15, max_probes=10)
        result = search.find(_spec(150), policy="PnAR2")
        assert isinstance(result, CapacityResult)
        assert result.converged
        assert result.max_rate_rps is not None
        assert result.min_violating_rate_rps is not None
        assert (result.min_violating_rate_rps / result.max_rate_rps
                <= 1.0 + result.tolerance + 1e-9)
        assert result.fleet is not None
        assert result.fleet.p99() <= 20_000.0

    def test_probes_are_monotone_in_verdict(self):
        search = SloCapacitySearch(self._runner(), target_p99_us=20_000.0,
                                   tolerance=0.15, max_probes=10)
        result = search.find(_spec(150), policy="PnAR2")
        meeting = [probe.rate_rps for probe in result.probes
                   if probe.meets_slo]
        violating = [probe.rate_rps for probe in result.probes
                     if not probe.meets_slo]
        assert meeting and violating
        assert max(meeting) == pytest.approx(result.max_rate_rps)
        assert max(meeting) < min(violating)

    def test_unreachable_target_does_not_converge(self):
        search = SloCapacitySearch(self._runner(), target_p99_us=1.0,
                                   max_probes=3)
        result = search.find(_spec(60), policy="Baseline")
        assert not result.converged
        assert result.max_rate_rps is None
        assert result.fleet is None

    def test_session_builder_slo_path(self):
        result = (Simulation(CONFIG).policy("PnAR2")
                  .workload("usr_1", n=120, seed=3,
                            mean_interarrival_us=700.0)
                  .condition(AGED)
                  .fleet(2)
                  .slo(p99_us=20_000.0, tolerance=0.15, max_probes=8)
                  .run())
        assert isinstance(result, CapacityResult)
        assert result.policy == "PnAR2"

    def test_slo_requires_single_policy(self):
        simulation = (Simulation(CONFIG).policies("Baseline", "PnAR2")
                      .workload("usr_1", n=40).slo(p99_us=1000.0))
        with pytest.raises(ValueError, match="exactly one"):
            simulation.run()

    def test_validation(self):
        runner = self._runner()
        with pytest.raises(ValueError):
            SloCapacitySearch(runner, target_p99_us=0.0)
        with pytest.raises(ValueError):
            SloCapacitySearch(runner, target_p99_us=10.0, tolerance=0.0)
        with pytest.raises(ValueError):
            SloCapacitySearch(runner, target_p99_us=10.0, max_probes=1)


# -- session integration -------------------------------------------------------
class TestSessionFleet:
    def test_fleet_manifest_mentions_fleet_and_workload(self):
        import json

        simulation = (Simulation(CONFIG).policy("Baseline")
                      .workload("usr_1", n=50)
                      .fleet(2, replication=2,
                             device_conditions=(Condition(0, 0.0),
                                                Condition(1000, 6.0)))
                      .slo(p99_us=5000.0))
        manifest = simulation.manifest()
        assert manifest["fleet"]["devices"] == 2
        assert manifest["fleet"]["replication"] == 2
        assert "processes" not in manifest["fleet"]
        # The manifest contract: one json.dumps away, always.
        json.dumps(manifest)

    def test_tenants_names_apply_to_a_ready_mix(self):
        mix = TenantMix(tenants=(_spec(20, seed=1), _spec(20, seed=2)))
        simulation = (Simulation(CONFIG).policy("Baseline")
                      .tenants(mix, names=("kv", "log")))
        assert simulation._source.tenant_names() == ("kv", "log")

    def test_lookahead_reaches_fleet_devices(self):
        # .lookahead() must be honored on the fleet path like it is on the
        # single-device path (a window of 1 admits strictly one arrival at
        # a time, so any pump mis-plumbing would surface immediately).
        run = (Simulation(CONFIG).policy("Baseline")
               .workload("usr_1", n=60, seed=1).lookahead(1)
               .fleet(2).run())
        assert run.result.merged.host_reads + run.result.merged.host_writes > 0
        wide = (Simulation(CONFIG).policy("Baseline")
                .workload("usr_1", n=60, seed=1).lookahead(128)
                .fleet(2).run())
        assert (run.result.merged.latency("all").to_dict()
                == wide.result.merged.latency("all").to_dict())

    def test_fleet_rejects_stream_factories(self):
        simulation = (Simulation(CONFIG).policy("Baseline")
                      .stream(lambda: iter([])).fleet(2))
        with pytest.raises(ValueError, match="declarative"):
            simulation.run()

    def test_tenants_on_single_device(self):
        run = (Simulation(CONFIG).policy("Baseline")
               .tenants("usr_1", "stg_0", n=40, seed=1)
               .condition(AGED).run())
        metrics = run.result.metrics
        assert set(metrics.tenant_latency) == {0, 1}
        total = sum(histogram.count
                    for histogram in metrics.tenant_latency.values())
        assert total == metrics.host_reads + metrics.host_writes
