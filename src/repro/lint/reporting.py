"""Output formats for ``repro-lint`` findings.

``text`` is the human default, ``json`` a machine-readable report (the CI
artifact), and ``github`` emits workflow commands that GitHub renders as
inline annotations on pull requests.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.engine import Finding

FORMATS = ("text", "json", "github")


def _summary(count: int) -> str:
    if count == 0:
        return "repro-lint: all clean"
    return f"repro-lint: {count} finding{'s' if count != 1 else ''}"


def format_text(findings: Sequence[Finding]) -> str:
    lines = [
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"[{finding.rule}] {finding.message}"
        for finding in findings
    ]
    lines.append(_summary(len(findings)))
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    report = {
        "tool": "repro-lint",
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(report, indent=2, sort_keys=True)


def _escape_github(value: str) -> str:
    """Escape a workflow-command message (GitHub's %-encoding rules)."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: Sequence[Finding]) -> str:
    lines = [
        f"::error file={finding.path},line={finding.line},col={finding.col},"
        f"title=repro-lint {finding.rule}::{_escape_github(finding.message)}"
        for finding in findings
    ]
    lines.append(_summary(len(findings)))
    return "\n".join(lines)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "github": format_github,
}


def render(findings: Sequence[Finding], fmt: str) -> str:
    try:
        formatter = FORMATTERS[fmt]
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}; choose from {FORMATS}") from None
    return formatter(findings)
