"""Host requests and flash transactions.

A *host request* is what arrives over the (multi-queue) host interface: a
read or write of one or more consecutive logical pages, stamped with an
arrival time.  The controller splits it into per-page *flash transactions*
that are scheduled independently on the dies; the request completes when its
last transaction completes (reads) or when its data is accepted by the write
buffer (writes).

Host requests are treated as *immutable inputs* by the simulator: per-run
completion state lives in simulator-local bookkeeping, so the same request
objects can be replayed against several policies (or shared by a sweep's
stream cache) without defensive copies.  The ``completion_us`` /
``pending_pages`` fields remain for callers that track completion
themselves, but the simulator no longer writes to them.

Both classes are hand-written ``__slots__`` structures rather than
dataclasses: they are the highest-volume allocations of a streaming run
(one request per trace entry, one transaction per page operation), and slot
storage keeps their creation and field access off the dictionary path the
event loop would otherwise pay per page.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional


class RequestKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    #: Control events carried in-stream so the scheduler and FTL see them
    #: in arrival order: TRIM/UNMAP of a logical range, a full-drain
    #: barrier, and a zero-cost timestamp marker.  They move no data and
    #: are never recorded into the latency histograms.
    DISCARD = "discard"
    BARRIER = "barrier"
    MARK = "mark"

    @property
    def is_control(self) -> bool:
        return self in (RequestKind.DISCARD, RequestKind.BARRIER, RequestKind.MARK)


class TransactionKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    GC_READ = "gc_read"
    GC_PROGRAM = "gc_program"
    #: DFTL translation-page traffic (``mapping="page"``): mapping lookups
    #: that miss the cached mapping table read a translation page, dirty
    #: evictions and GC batch updates re-program one.  Both compete with
    #: host I/O for die time like any other transaction.
    TRANS_READ = "trans_read"
    TRANS_PROGRAM = "trans_program"

    @property
    def is_read(self) -> bool:
        return self in _READ_TRANSACTION_KINDS

    @property
    def is_background(self) -> bool:
        return self in (
            TransactionKind.GC_READ,
            TransactionKind.GC_PROGRAM,
            TransactionKind.ERASE,
            TransactionKind.TRANS_READ,
            TransactionKind.TRANS_PROGRAM,
        )


#: Read-class transaction kinds, as a set: the per-transaction ``is_read``
#: checks in the die scheduler are hot enough that a linear tuple scan (and
#: the nested enum-property call it sat behind) shows up in profiles.
_READ_TRANSACTION_KINDS = frozenset(
    (TransactionKind.READ, TransactionKind.GC_READ, TransactionKind.TRANS_READ)
)

_request_ids = itertools.count()
_transaction_ids = itertools.count()


class HostRequest:
    """One host-issued I/O request."""

    __slots__ = (
        "arrival_us",
        "kind",
        "start_lpn",
        "page_count",
        "queue_id",
        "request_id",
        "completion_us",
        "pending_pages",
    )

    def __init__(
        self,
        arrival_us: float,
        kind: RequestKind,
        start_lpn: int,
        page_count: int = 1,
        queue_id: int = 0,
        request_id: Optional[int] = None,
        completion_us: Optional[float] = None,
    ):
        if arrival_us < 0:
            raise ValueError("arrival_us must be non-negative")
        if page_count <= 0:
            raise ValueError("page_count must be positive")
        if start_lpn < 0:
            raise ValueError("start_lpn must be non-negative")
        self.arrival_us = arrival_us
        self.kind = kind
        self.start_lpn = start_lpn
        self.page_count = page_count
        self.queue_id = queue_id
        self.request_id = next(_request_ids) if request_id is None else request_id
        # Caller-owned completion tracking; the simulator keeps its own
        # per-run bookkeeping and never writes to these.
        self.completion_us = completion_us
        self.pending_pages = page_count

    @property
    def is_read(self) -> bool:
        return self.kind is RequestKind.READ

    @property
    def is_control(self) -> bool:
        return self.kind.is_control

    @property
    def lpns(self) -> List[int]:
        return list(range(self.start_lpn, self.start_lpn + self.page_count))

    @property
    def response_time_us(self) -> Optional[float]:
        if self.completion_us is None:
            return None
        return self.completion_us - self.arrival_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HostRequest(arrival_us={self.arrival_us!r}, kind={self.kind!r}, "
            f"start_lpn={self.start_lpn!r}, page_count={self.page_count!r}, "
            f"queue_id={self.queue_id!r}, request_id={self.request_id!r})"
        )


class FlashTransaction:
    """One page-granularity operation dispatched to a die.

    ``remaining_service_us`` / ``was_suspended`` are written by the die
    scheduler when a program or erase is suspended; ``response_us`` and
    ``prepared_behaviour`` are written by the controller's read path (the
    latter carries a dispatch-time batch-prepared retry behaviour to the
    service-time consumer, see ``SsdSimulator._start_read_request``).
    """

    __slots__ = (
        "kind",
        "lpn",
        "channel",
        "die",
        "plane",
        "block",
        "page",
        "issue_us",
        "request",
        "physical",
        "transaction_id",
        "service_start_us",
        "completion_us",
        "retry_steps",
        "response_us",
        "remaining_service_us",
        "was_suspended",
        "prepared_behaviour",
    )

    def __init__(
        self,
        kind: TransactionKind,
        lpn: Optional[int],
        channel: int,
        die: int,
        plane: int,
        block: int,
        page: int,
        issue_us: float,
        request: Optional[HostRequest] = None,
        transaction_id: Optional[int] = None,
        physical=None,
    ):
        self.kind = kind
        self.lpn = lpn
        self.channel = channel
        self.die = die
        self.plane = plane
        self.block = block
        self.page = page
        self.issue_us = issue_us
        self.request = request
        # The resolved PhysicalPage, when the creator had one in hand —
        # saves the service path from rebuilding it out of the scalar
        # fields (a per-page frozen-dataclass construction otherwise).
        self.physical = physical
        self.transaction_id = next(_transaction_ids) if transaction_id is None else transaction_id
        # Filled in when the transaction is serviced.
        self.service_start_us: Optional[float] = None
        self.completion_us: Optional[float] = None
        self.retry_steps = 0
        self.response_us: Optional[float] = None
        self.remaining_service_us: Optional[float] = None
        self.was_suspended = False
        self.prepared_behaviour = None

    @property
    def is_read(self) -> bool:
        return self.kind in _READ_TRANSACTION_KINDS

    @property
    def waiting_time_us(self) -> Optional[float]:
        if self.service_start_us is None:
            return None
        return self.service_start_us - self.issue_us

    def die_key(self) -> tuple:
        return (self.channel, self.die)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlashTransaction(kind={self.kind!r}, lpn={self.lpn!r}, "
            f"channel={self.channel!r}, die={self.die!r}, plane={self.plane!r}, "
            f"block={self.block!r}, page={self.page!r}, issue_us={self.issue_us!r}, "
            f"transaction_id={self.transaction_id!r})"
        )
