"""Tests for the behavioural NAND chip model."""

import pytest

from repro.nand.chip import ChipError, NandChip
from repro.nand.commands import Command
from repro.nand.geometry import ChipGeometry
from repro.nand.timing import ReadTimingParameters


@pytest.fixture()
def chip():
    return NandChip(geometry=ChipGeometry.small(), codewords_per_read=2,
                    temperature_c=55.0, seed=7)


@pytest.fixture()
def address(chip):
    return chip.geometry.make_address(0, 0, 1, 4)


class TestBlockState:
    def test_set_block_condition(self, chip, address):
        chip.set_block_condition(address, pe_cycles=1500, retention_months=9.0,
                                 programmed=True)
        condition = chip.condition_for(address)
        assert condition.pe_cycles == 1500
        assert condition.retention_months == 9.0
        assert condition.temperature_c == 55.0

    def test_age_blocks_only_affects_programmed(self, chip, address):
        other = chip.geometry.make_address(0, 0, 2, 0)
        chip.set_block_condition(address, programmed=True)
        chip.set_block_condition(other, programmed=False)
        chip.age_blocks(3.0)
        assert chip.condition_for(address).retention_months == 3.0
        assert chip.condition_for(other).retention_months == 0.0

    def test_validation(self, chip, address):
        with pytest.raises(ValueError):
            chip.set_block_condition(address, pe_cycles=-1)
        with pytest.raises(ValueError):
            chip.age_blocks(-1.0)


class TestProgramErase:
    def test_program_in_order(self, chip):
        first = chip.geometry.make_address(0, 0, 3, 0)
        second = chip.geometry.make_address(0, 0, 3, 1)
        assert chip.program_page(first) == chip.timing.t_prog_us
        assert chip.program_page(second) == chip.timing.t_prog_us

    def test_out_of_order_program_rejected(self, chip):
        later = chip.geometry.make_address(0, 0, 3, 5)
        with pytest.raises(ChipError):
            chip.program_page(later)

    def test_erase_increments_pe_and_resets(self, chip, address):
        chip.set_block_condition(address, pe_cycles=10, retention_months=6.0,
                                 programmed=True)
        latency = chip.erase_block(address)
        assert latency == chip.timing.t_bers_us
        state = chip.block_state(address)
        assert state.pe_cycles == 11
        assert state.retention_months == 0.0
        assert state.next_page == 0

    def test_program_resets_retention(self, chip):
        address = chip.geometry.make_address(0, 1, 0, 0)
        chip.set_block_condition(address, retention_months=6.0)
        chip.program_page(address)
        assert chip.condition_for(address).retention_months == 0.0


class TestReads:
    def test_fresh_page_reads_without_retry(self, chip, address):
        chip.set_block_condition(address, pe_cycles=0, retention_months=0.0,
                                 programmed=True)
        result = chip.read_with_retry(address)
        assert result.succeeded
        assert result.retry_steps == 0

    def test_aged_page_needs_many_retries(self, chip, address):
        chip.set_block_condition(address, pe_cycles=2000, retention_months=12.0,
                                 programmed=True)
        result = chip.read_with_retry(address)
        assert result.succeeded
        assert result.retry_steps >= 10
        assert result.final_errors <= chip.ecc_capability

    def test_retry_latency_accumulates(self, chip, address):
        chip.set_block_condition(address, pe_cycles=1000, retention_months=6.0,
                                 programmed=True)
        result = chip.read_with_retry(address)
        single = chip.timing.read.sensing_latency_us(address.page_type)
        assert result.total_sensing_latency_us == pytest.approx(
            single * (result.retry_steps + 1))

    def test_set_feature_reduces_sensing_latency(self, chip, address):
        default_latency = chip.read_page(address).sensing_latency_us
        chip.set_feature(ReadTimingParameters().with_reduction(pre=0.4))
        reduced_latency = chip.read_page(address).sensing_latency_us
        assert reduced_latency < default_latency
        chip.set_feature()  # roll back to defaults
        assert chip.read_page(address).sensing_latency_us == pytest.approx(
            default_latency)

    def test_reduced_timing_adds_errors_on_aged_page(self, chip, address):
        chip.set_block_condition(address, pe_cycles=2000, retention_months=12.0,
                                 programmed=True)
        default = chip.read_with_retry(address)
        chip.set_feature(ReadTimingParameters().with_reduction(pre=0.6))
        reduced = chip.read_with_retry(address)
        # A 60% tPRE reduction is beyond the safe range: the read needs at
        # least as many steps (and usually more or outright failure).
        assert (not reduced.succeeded) or (reduced.retry_steps >= default.retry_steps)

    def test_max_steps_limits_walk(self, chip, address):
        chip.set_block_condition(address, pe_cycles=2000, retention_months=12.0,
                                 programmed=True)
        result = chip.read_with_retry(address, max_steps=2)
        assert not result.succeeded
        assert result.retry_steps == 2

    def test_codewords_per_read_validation(self):
        with pytest.raises(ValueError):
            NandChip(geometry=ChipGeometry.small(), codewords_per_read=0)


class TestCommandInterface:
    def test_execute_read(self, chip, address):
        latency, result = chip.execute(Command.page_read(address))
        assert latency == pytest.approx(result.sensing_latency_us)

    def test_execute_cache_read_fills_cache_register(self, chip, address):
        chip.execute(Command.cache_read(address))
        _, cached = chip.execute(Command.read_status())
        assert cached == address

    def test_execute_reset_clears_cache(self, chip, address):
        chip.execute(Command.cache_read(address))
        latency, _ = chip.execute(Command.reset())
        assert latency == chip.timing.t_reset_read_us
        _, cached = chip.execute(Command.read_status())
        assert cached is None

    def test_execute_set_feature(self, chip):
        reduced = ReadTimingParameters().with_reduction(pre=0.4)
        latency, _ = chip.execute(Command.set_feature(reduced))
        assert latency == chip.timing.t_set_feature_us
        assert chip.active_read_timing is reduced

    def test_execute_program_and_erase(self, chip):
        address = chip.geometry.make_address(1, 0, 0, 0)
        prog_latency, _ = chip.execute(Command.program(address))
        erase_latency, _ = chip.execute(Command.erase(address))
        assert prog_latency == chip.timing.t_prog_us
        assert erase_latency == chip.timing.t_bers_us
