#!/usr/bin/env python3
"""Run every experiment and emit the measured headline numbers as JSON.

Used to populate EXPERIMENTS.md; kept as a script so the report can be
regenerated after model changes:

    python scripts/generate_experiments_report.py > experiments_headlines.json
"""

import json
import sys
import time

from repro.experiments.runner import run_experiment

CONFIGS = {
    "table1": {},
    "table2": {},
    "fig04b": {},
    "fig05": {},
    "fig07": {},
    "fig08": {},
    "fig09": {},
    "fig10": {},
    "fig11": {},
    # System-level experiments: all twelve workloads over a reduced but
    # representative condition grid.
    "fig14": {"conditions": ((0, 0.0), (1000, 6.0), (2000, 6.0), (2000, 12.0)),
              "num_requests": 400},
    "fig15": {"conditions": ((0, 0.0), (1000, 6.0), (2000, 6.0), (2000, 12.0)),
              "num_requests": 400},
}


def main() -> None:
    report = {}
    for name, overrides in CONFIGS.items():
        start = time.time()
        result = run_experiment(name, fast=False, **overrides)
        report[name] = {
            "title": result.title,
            "headline": result.headline,
            "rows": len(result.rows),
            "seconds": round(time.time() - start, 1),
        }
        print(f"# finished {name} in {report[name]['seconds']}s",
              file=sys.stderr, flush=True)
    json.dump(report, sys.stdout, indent=2, default=str)
    print()


if __name__ == "__main__":
    main()
