"""Shared plumbing for the system-level experiments (Figures 14 and 15)."""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.core.rpt import ReadTimingParameterTable
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, simulate_policies
from repro.ssd.metrics import normalized_response_times
from repro.workloads.catalog import WORKLOAD_CATALOG, generate_workload
from repro.workloads.synthetic import SyntheticWorkload, WorkloadShape

#: The operating-condition grid of Figures 14/15: P/E cycles (x1000) and
#: retention ages (months).  The paper sweeps 0-3K PEC and 0/6/12 months; the
#: default here is the subset shown on the figures' x-axis labels.
DEFAULT_CONDITION_GRID: Tuple[Tuple[int, float], ...] = (
    (0, 0.0), (0, 6.0), (0, 12.0),
    (1000, 0.0), (1000, 6.0), (1000, 12.0),
    (2000, 0.0), (2000, 6.0), (2000, 12.0),
)

#: SSD configurations compared in Figure 14 (and Figure 15 adds the PSO pair).
FIGURE14_POLICIES = ("Baseline", "PR2", "AR2", "PnAR2", "NoRR")
FIGURE15_POLICIES = ("Baseline", "PSO", "PSO+PnAR2", "NoRR")


def default_experiment_config(**overrides) -> SsdConfig:
    """The scaled-down SSD used by the system-level experiments."""
    defaults = dict(blocks_per_plane=24, pages_per_block=48)
    defaults.update(overrides)
    return SsdConfig.scaled(**defaults)


def run_workload_grid(policies: Sequence[str],
                      workloads: Sequence[str],
                      conditions: Sequence[Tuple[int, float]] = DEFAULT_CONDITION_GRID,
                      num_requests: int = 800,
                      config: SsdConfig = None,
                      seed: int = 0,
                      rpt: ReadTimingParameterTable = None,
                      mean_interarrival_us: float = 700.0):
    """Run every (workload, condition) cell against every policy.

    :param mean_interarrival_us: request inter-arrival time of the generated
        streams.  The default keeps the Baseline SSD below saturation even
        at the worst operating condition (about 20 retry steps per read), so
        the normalized response times measure the mechanisms rather than a
        queueing collapse — the paper's week-long enterprise traces are
        similarly far from saturating the device.
    :return: nested dict ``results[workload][(pec, months)][policy]`` of
        :class:`SimulationResult`.
    """
    config = config or default_experiment_config()
    rpt = rpt or ReadTimingParameterTable.default()
    footprint = int(config.logical_pages * 0.8)
    results: Dict[str, Dict[Tuple[int, float], Dict[str, SimulationResult]]] = {}
    for workload in workloads:
        if workload not in WORKLOAD_CATALOG:
            raise KeyError(f"unknown workload {workload!r}")
        results[workload] = {}
        for pec, months in conditions:
            def requests_factory(name=workload):
                return generate_workload(
                    name, num_requests, footprint, seed=seed,
                    mean_interarrival_us=mean_interarrival_us)
            cell = simulate_policies(policies, requests_factory, config=config,
                                     pe_cycles=pec, retention_months=months,
                                     rpt=rpt)
            results[workload][(pec, months)] = cell
    return results


def normalize_grid(results, baseline: str = "Baseline") -> Iterable[dict]:
    """Flatten a grid of results into normalized-response-time rows."""
    for workload, by_condition in results.items():
        read_dominant = WORKLOAD_CATALOG[workload].read_dominant
        for (pec, months), cell in by_condition.items():
            normalized = normalized_response_times(
                {name: result.metrics for name, result in cell.items()},
                baseline=baseline)
            for policy, value in normalized.items():
                yield {
                    "workload": workload,
                    "class": "read-dominant" if read_dominant else "write-dominant",
                    "pe_cycles": pec,
                    "retention_months": months,
                    "policy": policy,
                    "normalized_response_time": round(value, 4),
                    "mean_response_us": round(
                        cell[policy].metrics.mean_response_time_us(), 2),
                }


def compare_policies(policies: Sequence[str] = FIGURE14_POLICIES,
                     num_requests: int = 500,
                     read_ratio: float = 0.9,
                     pe_cycles: int = 1000,
                     retention_months: float = 6.0,
                     seed: int = 0,
                     config: SsdConfig = None) -> Dict[str, float]:
    """Small end-to-end comparison used by ``repro.quick_ssd_comparison``.

    :return: mapping from policy name to mean response time in microseconds.
    """
    config = config or default_experiment_config()
    footprint = int(config.logical_pages * 0.8)
    shape = WorkloadShape(read_ratio=read_ratio, cold_ratio=0.7,
                          mean_interarrival_us=300.0)

    def requests_factory():
        return SyntheticWorkload(shape, footprint,
                                 seed=seed).generate(num_requests)

    results = simulate_policies(policies, requests_factory, config=config,
                                pe_cycles=pe_cycles,
                                retention_months=retention_months)
    return {name: result.mean_response_time_us
            for name, result in results.items()}
