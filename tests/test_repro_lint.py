"""Tests for the ``repro-lint`` static-analysis pass (repro.lint)."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    LintConfig,
    LintConfigError,
    LintEngine,
    RULE_NAMES,
    default_rules,
    rules_by_name,
)
from repro.lint.cli import discover_root, main
from repro.lint.config import path_matches
from repro.lint.engine import PARSE_ERROR_RULE
from repro.lint.pragmas import PragmaIndex
from repro.lint.reporting import format_github, format_json, format_text, render

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Default location for fixture snippets: inside the sim paths.
SIM_PATH = "src/repro/ssd/example.py"


@pytest.fixture(scope="module")
def engine():
    return LintEngine(LintConfig(root=REPO_ROOT))


def lint(engine, source, relpath=SIM_PATH):
    return engine.lint_source(source, relpath)


def rules_hit(engine, source, relpath=SIM_PATH):
    return sorted({finding.rule for finding in lint(engine, source, relpath)})


# -- rule: no-wall-clock -------------------------------------------------------
class TestNoWallClock:
    BAD = (
        "import time\n\ndef f():\n    return time.time()\n",
        "from time import perf_counter as pc\nx = pc()\n",
        "import time\nt = time.monotonic_ns()\n",
        "from datetime import datetime\nstamp = datetime.now()\n",
        "import os\nnoise = os.urandom(8)\n",
        "import secrets\ntoken = secrets.token_hex(4)\n",
        "import uuid\nrun_id = uuid.uuid4()\n",
    )

    @pytest.mark.parametrize("source", BAD)
    def test_flags_wall_clock_reads(self, engine, source):
        assert rules_hit(engine, source) == ["no-wall-clock"]

    def test_simulated_time_is_fine(self, engine):
        source = (
            "class Clock:\n"
            "    def advance(self, delta_us):\n"
            "        self.now_us += delta_us\n"
            "        return self.now_us\n"
        )
        assert lint(engine, source) == []

    def test_local_name_shadowing_is_not_resolved(self, engine):
        # A local callable named ``time`` is not the stdlib module.
        source = "def f(time):\n    return time.time()\n"
        assert lint(engine, source) == []

    def test_outside_sim_paths_is_allowlisted(self, engine):
        source = "import time\nstarted = time.perf_counter()\n"
        assert lint(engine, source, relpath="scripts/run_benchmarks.py") == []
        assert lint(engine, source, relpath="benchmarks/test_bench_micro.py") == []


# -- rule: no-global-random ----------------------------------------------------
class TestNoGlobalRandom:
    BAD = (
        "import random\nrandom.shuffle([1, 2])\n",
        "import random\nrandom.seed(0)\n",
        "from random import randint\nvalue = randint(0, 7)\n",
        "import numpy as np\nnp.random.seed(3)\n",
        "import numpy as np\nvalue = np.random.rand(4)\n",
        "from numpy.random import normal\nvalue = normal()\n",
    )

    @pytest.mark.parametrize("source", BAD)
    def test_flags_global_rng_calls(self, engine, source):
        assert rules_hit(engine, source) == ["no-global-random"]

    def test_unseeded_constructor_flagged(self, engine):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_hit(engine, source) == ["no-global-random"]
        source = "from random import Random\nrng = Random()\n"
        assert rules_hit(engine, source) == ["no-global-random"]

    def test_seeded_constructors_and_parameters_are_fine(self, engine):
        source = (
            "import numpy as np\n"
            "from random import Random\n"
            "\n"
            "def f(seed, rng):\n"
            "    local = np.random.default_rng(seed)\n"
            "    legacy = np.random.RandomState(seed)\n"
            "    seq = np.random.SeedSequence(entropy=seed)\n"
            "    r = Random(seed)\n"
            "    return local.random() + rng.random() + r.random()\n"
        )
        assert lint(engine, source) == []


# -- rule: no-unordered-iteration ----------------------------------------------
class TestNoUnorderedIteration:
    BAD = (
        "for x in {1, 2, 3}:\n    pass\n",
        "def f(names):\n    s = set(names)\n    for n in s:\n        print(n)\n",
        "def f(a):\n    return list(set(a))\n",
        "def f(a):\n    return tuple(frozenset(a))\n",
        "def f(s):\n    s = set(s)\n    return [x + 1 for x in s]\n",
        "def f(s):\n    s = set(s)\n    return tuple(x for x in s)\n",
        "def f(s):\n    s = set(s)\n    return dict.fromkeys(s)\n",
        "def f(s):\n    s = set(s)\n    return ', '.join(s)\n",
        "def f(a, b):\n    diff = set(a) - set(b)\n    for x in diff:\n        print(x)\n",
        "def f(s):\n    s = set(s)\n    for i, x in enumerate(s):\n        print(i, x)\n",
    )

    @pytest.mark.parametrize("source", BAD)
    def test_flags_order_sensitive_set_iteration(self, engine, source):
        assert rules_hit(engine, source) == ["no-unordered-iteration"]

    GOOD = (
        "def f(s):\n    s = set(s)\n    for x in sorted(s):\n        print(x)\n",
        "def f(s):\n    s = set(s)\n    return sorted(s)\n",
        "def f(s):\n    s = set(s)\n    return len(s) + sum(s) + max(s)\n",
        "def f(s, x):\n    return x in set(s)\n",
        "def f(s):\n    return {x + 1 for x in set(s)}\n",
        "def f(s):\n    s = set(s)\n    return sorted(x + 1 for x in s)\n",
        "def f(s):\n    s = set(s)\n    return any(x > 2 for x in s)\n",
        "def f(items):\n    for x in items:\n        print(x)\n",
        "def f(s):\n    ordered = sorted(set(s))\n    return list(ordered)\n",
        "def f(d):\n    for key in d:\n        print(key)\n",
    )

    @pytest.mark.parametrize("source", GOOD)
    def test_sorted_and_order_insensitive_uses_are_fine(self, engine, source):
        assert lint(engine, source) == []

    def test_reassignment_clears_tracking(self, engine):
        source = (
            "def f(a):\n"
            "    s = set(a)\n"
            "    s = sorted(s)\n"
            "    for x in s:\n"
            "        print(x)\n"
        )
        assert lint(engine, source) == []


# -- rule: counter-registration ------------------------------------------------
class TestCounterRegistration:
    def test_counter_missing_from_counter_fields(self, engine):
        source = (
            "class M:\n"
            '    COUNTER_FIELDS = ("a",)\n'
            "\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 0\n"
        )
        findings = lint(engine, source)
        assert [f.rule for f in findings] == ["counter-registration"]
        assert "'b'" in findings[0].message

    def test_declared_but_never_initialized(self, engine):
        source = (
            "class M:\n"
            '    COUNTER_FIELDS = ("a", "ghost")\n'
            "\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
        )
        findings = lint(engine, source)
        assert [f.rule for f in findings] == ["counter-registration"]
        assert "'ghost'" in findings[0].message

    def test_counter_absent_from_summary_closure(self, engine):
        source = (
            "class M:\n"
            '    COUNTER_FIELDS = ("a", "b")\n'
            "\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 0\n"
            "\n"
            "    def summary(self):\n"
            '        return {"a": self.a}\n'
        )
        findings = lint(engine, source)
        assert [f.rule for f in findings] == ["counter-registration"]
        assert "'b'" in findings[0].message and "summary" in findings[0].message

    def test_transitive_summary_reads_count(self, engine):
        source = (
            "class M:\n"
            '    COUNTER_FIELDS = ("a", "b")\n'
            "\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 0\n"
            "\n"
            "    def ratio(self):\n"
            "        return self.b / max(1, self.a)\n"
            "\n"
            "    def summary(self):\n"
            '        return {"a": self.a, "ratio": self.ratio()}\n'
        )
        assert lint(engine, source) == []

    def test_floats_bools_and_private_names_are_not_counters(self, engine):
        source = (
            "class M:\n"
            "    COUNTER_FIELDS = ()\n"
            "\n"
            "    def __init__(self):\n"
            "        self.mean_us = 0.0\n"
            "        self.record_samples = False\n"
            "        self._internal = 0\n"
        )
        assert lint(engine, source) == []

    def test_class_without_counter_fields_is_skipped(self, engine):
        source = "class Histogram:\n    def __init__(self):\n        self.count = 0\n"
        assert lint(engine, source) == []

    def test_real_simulation_metrics_passes(self, engine):
        metrics = REPO_ROOT / "src" / "repro" / "ssd" / "metrics.py"
        assert engine.lint_file(metrics) == []


# -- rule: pickle-safe-pool ----------------------------------------------------
class TestPickleSafePool:
    def test_lambda_flagged(self, engine):
        source = "from repro.sim.sweep import pool_map\nr = pool_map(lambda p: p, [1], 2)\n"
        assert rules_hit(engine, source) == ["pickle-safe-pool"]

    def test_nested_function_flagged(self, engine):
        source = (
            "from repro.sim.sweep import pool_map\n"
            "\n"
            "def run(payloads):\n"
            "    def worker(payload):\n"
            "        return payload\n"
            "    return pool_map(worker, payloads, 2)\n"
        )
        assert rules_hit(engine, source) == ["pickle-safe-pool"]

    def test_bound_method_flagged(self, engine):
        source = (
            "from repro.sim.sweep import pool_map\n"
            "\n"
            "class Runner:\n"
            "    def go(self, payloads):\n"
            "        return pool_map(self.work, payloads, 2)\n"
        )
        assert rules_hit(engine, source) == ["pickle-safe-pool"]

    def test_partial_of_lambda_flagged(self, engine):
        source = (
            "from functools import partial\n"
            "from repro.sim.sweep import pool_map\n"
            "r = pool_map(partial(lambda p, k: p, k=1), [1], 2)\n"
        )
        assert rules_hit(engine, source) == ["pickle-safe-pool"]

    def test_module_level_function_is_fine(self, engine):
        source = (
            "from functools import partial\n"
            "from repro.sim.sweep import pool_map\n"
            "\n"
            "def worker(payload, scale=1):\n"
            "    return payload * scale\n"
            "\n"
            "def run(payloads):\n"
            "    plain = pool_map(worker, payloads, 2)\n"
            "    bound = pool_map(partial(worker, scale=3), payloads, 2)\n"
            "    return plain + bound\n"
        )
        assert lint(engine, source) == []


# -- rule: no-dict-order-across-pool -------------------------------------------
class TestNoDictOrderAcrossPool:
    PROLOGUE = "from repro.sim.sweep import pool_map\n\n"
    EPILOGUE = "\ndef run(payloads):\n    return pool_map(worker, payloads, 2)\n"

    def _worker(self, body):
        return self.PROLOGUE + body + self.EPILOGUE

    BAD_BODIES = (
        # Bare iteration of a parameter the body also uses as a dict.
        "def worker(payload):\n"
        "    rows = []\n"
        "    for key in payload:\n"
        "        rows.append(payload.get(key))\n"
        "    return rows\n",
        # Dict views are order-sensitive without corroborating evidence.
        "def worker(payload):\n"
        "    return [value for key, value in payload.items()]\n",
        "def worker(payload):\n"
        "    out = []\n"
        "    for value in payload.values():\n"
        "        out.append(value)\n"
        "    return out\n",
        # Order-preserving materializations of a view.
        "def worker(payload):\n"
        "    return list(payload.keys())\n",
        "def worker(payload):\n"
        "    return tuple(enumerate(payload.items()))\n",
    )

    @pytest.mark.parametrize("body", BAD_BODIES)
    def test_worker_dict_iteration_flagged(self, engine, body):
        assert rules_hit(engine, self._worker(body)) == [
            "no-dict-order-across-pool"
        ]

    GOOD_BODIES = (
        # sorted(...) makes the result a function of content, not order.
        "def worker(payload):\n"
        "    return [payload[key] for key in sorted(payload)]\n",
        "def worker(payload):\n"
        "    rows = []\n"
        "    for key, value in sorted(payload.items()):\n"
        "        rows.append((key, value))\n"
        "    return rows\n",
        # Order-insensitive consumers are fine unsorted.
        "def worker(payload):\n"
        "    return sum(value for value in payload.values())\n",
        "def worker(payload):\n"
        "    return len(payload), max(payload.keys())\n",
        "def worker(payload):\n"
        "    return {key for key in payload.keys()}\n",
        # Key lookups do not read iteration order at all.
        "def worker(payload):\n"
        "    return payload[\"seed\"] + payload.get(\"offset\", 0)\n",
        # A bare parameter with no dict evidence stays unflagged (it may
        # be the list of this device's requests).
        "def worker(items):\n"
        "    return [item * 2 for item in items]\n",
    )

    @pytest.mark.parametrize("body", GOOD_BODIES)
    def test_content_pure_workers_are_fine(self, engine, body):
        assert lint(engine, self._worker(body)) == []

    def test_non_worker_functions_are_not_flagged(self, engine):
        # Same dict iteration, but the function never crosses a pool
        # boundary — parent-side code may rely on its own insertion order.
        source = (
            "def summarize(payload):\n"
            "    return [v for k, v in payload.items()]\n"
        )
        assert lint(engine, source) == []

    def test_worker_through_partial_flagged(self, engine):
        source = (
            "from functools import partial\n"
            "from repro.sim.sweep import pool_map\n"
            "\n"
            "def worker(payload, scale=1):\n"
            "    return [v * scale for v in payload.values()]\n"
            "\n"
            "def run(payloads):\n"
            "    return pool_map(partial(worker, scale=3), payloads, 2)\n"
        )
        assert rules_hit(engine, source) == ["no-dict-order-across-pool"]


# -- rule: experiment-registration-sync ----------------------------------------
class TestExperimentRegistrationSync:
    MODULE = "src/repro/experiments/example.py"

    def test_runner_without_registration_flagged(self, engine):
        source = "def run(num_requests=100):\n    return num_requests\n"
        findings = lint(engine, source, relpath=self.MODULE)
        assert [f.rule for f in findings] == ["experiment-registration-sync"]
        assert "register_experiment" in findings[0].message

    def test_registered_name_missing_from_docs_flagged(self, engine):
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            '@register_experiment("definitely_not_documented")\n'
            "def run():\n"
            "    pass\n"
        )
        findings = lint(engine, source, relpath=self.MODULE)
        assert [f.rule for f in findings] == ["experiment-registration-sync"]
        assert "definitely_not_documented" in findings[0].message

    def test_documented_registration_passes(self, engine):
        # fig14 has a ### `fig14` section in the repo's EXPERIMENTS.md.
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            '@register_experiment("fig14")\n'
            "def run():\n"
            "    pass\n"
        )
        assert lint(engine, source, relpath=self.MODULE) == []

    def test_missing_doc_file_flagged(self, tmp_path):
        engine = LintEngine(LintConfig(root=tmp_path))
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            '@register_experiment("orphan")\n'
            "def run():\n"
            "    pass\n"
        )
        findings = engine.lint_source(source, self.MODULE)
        assert [f.rule for f in findings] == ["experiment-registration-sync"]
        assert "does not exist" in findings[0].message

    def test_outside_experiments_package_is_skipped(self, engine):
        source = "def run():\n    pass\n"
        assert lint(engine, source, relpath="src/repro/ssd/example.py") == []

    def test_real_experiment_modules_pass(self, engine):
        experiments = REPO_ROOT / "src" / "repro" / "experiments"
        for module in sorted(experiments.glob("*.py")):
            assert engine.lint_file(module) == [], module.name


# -- rule: experiment-seed-param -----------------------------------------------
class TestExperimentSeedParam:
    MODULE = "src/repro/experiments/example.py"

    def _lint(self, engine, source):
        findings = lint(engine, source, relpath=self.MODULE)
        return [f for f in findings if f.rule == "experiment-seed-param"]

    def test_params_without_seed_flagged(self, engine):
        source = (
            "from repro.experiments.api import param, register_experiment\n"
            "\n"
            '@register_experiment("fig14", params=(\n'
            '    param("num_requests", 100, "host requests"),\n'
            "))\n"
            "def run(num_requests=100):\n"
            "    pass\n"
        )
        findings = self._lint(engine, source)
        assert [f.rule for f in findings] == ["experiment-seed-param"]
        assert "'seed'" in findings[0].message and "fig14" in findings[0].message

    def test_params_with_seed_passes(self, engine):
        source = (
            "from repro.experiments.api import param, register_experiment\n"
            "\n"
            '@register_experiment("fig14", params=(\n'
            '    param("num_requests", 100, "host requests"),\n'
            '    param("seed", 0, "stream seed"),\n'
            "))\n"
            "def run(num_requests=100, seed=0):\n"
            "    pass\n"
        )
        assert self._lint(engine, source) == []

    def test_no_params_keyword_is_exempt(self, engine):
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            '@register_experiment("fig14")\n'
            "def run():\n"
            "    pass\n"
        )
        assert self._lint(engine, source) == []

    def test_empty_params_is_exempt(self, engine):
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            '@register_experiment("fig14", params=())\n'
            "def run():\n"
            "    pass\n"
        )
        assert self._lint(engine, source) == []

    def test_computed_params_are_skipped(self, engine):
        # The registry's own plumbing builds params dynamically; a
        # non-literal expression is not a registration to reason about.
        source = (
            "from repro.experiments.api import register_experiment\n"
            "\n"
            "COMMON = ()\n"
            "\n"
            '@register_experiment("fig14", params=COMMON)\n'
            "def run():\n"
            "    pass\n"
        )
        assert self._lint(engine, source) == []

    def test_outside_experiments_package_is_skipped(self, engine):
        source = (
            "from repro.experiments.api import param, register_experiment\n"
            "\n"
            '@register_experiment("x", params=(param("n", 1, "n"),))\n'
            "def run(n=1):\n"
            "    pass\n"
        )
        findings = lint(engine, source, relpath="src/repro/ssd/example.py")
        assert [f for f in findings if f.rule == "experiment-seed-param"] == []


# -- pragmas -------------------------------------------------------------------
class TestPragmas:
    def test_line_pragma_suppresses_one_rule(self, engine):
        source = "import time\nt = time.time()  # repro-lint: disable=no-wall-clock\n"
        assert lint(engine, source) == []

    def test_line_pragma_only_covers_its_line(self, engine):
        source = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=no-wall-clock\n"
            "b = time.time()\n"
        )
        findings = lint(engine, source)
        assert [f.line for f in findings] == [3]

    def test_pragma_for_other_rule_does_not_suppress(self, engine):
        source = "import time\nt = time.time()  # repro-lint: disable=no-global-random\n"
        assert rules_hit(engine, source) == ["no-wall-clock"]

    def test_disable_all_wildcard(self, engine):
        source = "import time\nt = time.time()  # repro-lint: disable=all\n"
        assert lint(engine, source) == []

    def test_disable_file_pragma(self, engine):
        source = (
            "# repro-lint: disable-file=no-wall-clock\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        assert lint(engine, source) == []

    def test_multiple_rules_in_one_pragma(self, engine):
        source = (
            "import time\n"
            "import random\n"
            "x = (time.time(), random.random())"
            "  # repro-lint: disable=no-wall-clock,no-global-random\n"
        )
        assert lint(engine, source) == []

    def test_pragma_inside_string_is_ignored(self):
        index = PragmaIndex.from_source('text = "# repro-lint: disable=all"\n')
        assert not index.suppressed("no-wall-clock", 1)


# -- configuration -------------------------------------------------------------
class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = LintConfig.load(tmp_path)
        assert config.paths == ("src/repro",)
        assert config.sim_paths == ("src/repro",)
        assert config.experiments_doc == "EXPERIMENTS.md"

    def test_load_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\n"
            'paths = ["lib"]\n'
            'sim-paths = ["lib/sim"]\n'
            'disable = ["no-global-random"]\n'
            'experiments-doc = "DOCS.md"\n'
            'pool-entry-points = ["fan_out"]\n'
            "\n"
            "[tool.repro-lint.rules.no-wall-clock]\n"
            'allow = ["lib/sim/cli.py"]\n'
        )
        config = LintConfig.load(tmp_path)
        assert config.paths == ("lib",)
        assert config.sim_paths == ("lib/sim",)
        assert config.disable == ("no-global-random",)
        assert config.experiments_doc == "DOCS.md"
        assert config.pool_entry_points == ("fan_out",)
        assert config.rule_allow["no-wall-clock"] == ("lib/sim/cli.py",)

    def test_invalid_config_raises(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\npaths = "src"\n'
        )
        with pytest.raises(LintConfigError):
            LintConfig.load(tmp_path)

    def test_disabled_rule_does_not_run(self, tmp_path):
        config = LintConfig(root=tmp_path, disable=("no-wall-clock",))
        engine = LintEngine(config)
        source = "import time\nt = time.time()\n"
        assert engine.lint_source(source, SIM_PATH) == []

    def test_rule_allow_skips_configured_paths(self, tmp_path):
        config = LintConfig(
            root=tmp_path,
            rule_allow={"no-wall-clock": ("src/repro/experiments/runner.py",)},
        )
        engine = LintEngine(config)
        source = "import time\nt = time.time()\n"
        assert engine.lint_source(source, "src/repro/experiments/runner.py") == []
        assert engine.lint_source(source, SIM_PATH) != []

    def test_sim_scoping_follows_config(self, tmp_path):
        config = LintConfig(root=tmp_path, sim_paths=("src/repro/ssd",))
        engine = LintEngine(config)
        source = "import time\nt = time.time()\n"
        assert engine.lint_source(source, "src/repro/ssd/engine.py") != []
        assert engine.lint_source(source, "src/repro/analysis/stats.py") == []

    def test_path_matches_prefix_semantics(self):
        assert path_matches("src/repro/ssd/engine.py", ("src/repro",))
        assert path_matches("src/repro", ("src/repro",))
        assert not path_matches("src/repro_extra/x.py", ("src/repro",))


# -- engine --------------------------------------------------------------------
class TestEngine:
    def _project(self, tmp_path, source):
        package = tmp_path / "src" / "repro" / "ssd"
        package.mkdir(parents=True)
        (package / "bad.py").write_text(source)
        return tmp_path

    def test_discover_files_sorted_and_excluded(self, tmp_path):
        package = tmp_path / "src" / "repro"
        (package / "b").mkdir(parents=True)
        (package / "a").mkdir(parents=True)
        (package / "b" / "beta.py").write_text("x = 1\n")
        (package / "a" / "alpha.py").write_text("x = 1\n")
        (package / "a" / "skipped.py").write_text("x = 1\n")
        config = LintConfig(root=tmp_path, exclude=("src/repro/a/skipped.py",))
        files = LintEngine(config).discover_files()
        names = [file.name for file in files]
        assert names == ["alpha.py", "beta.py"]

    def test_missing_path_raises(self, tmp_path):
        engine = LintEngine(LintConfig(root=tmp_path))
        with pytest.raises(FileNotFoundError):
            engine.discover_files(["does-not-exist"])

    def test_parse_error_becomes_finding(self, engine):
        findings = lint(engine, "def broken(:\n")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]

    def test_findings_are_deterministically_ordered(self, tmp_path):
        root = self._project(
            tmp_path,
            "import time\nimport random\nx = random.random()\ny = time.time()\n",
        )
        engine = LintEngine(LintConfig(root=root))
        first = engine.lint_paths()
        second = engine.lint_paths()
        assert first == second
        assert [f.sort_key for f in first] == sorted(f.sort_key for f in first)

    def test_rules_by_name_rejects_unknown(self):
        with pytest.raises(KeyError):
            rules_by_name(["no-such-rule"])
        assert [rule.name for rule in rules_by_name(RULE_NAMES)] == list(RULE_NAMES)


# -- reporting -----------------------------------------------------------------
class TestReporting:
    FINDING = Finding(
        rule="no-wall-clock",
        path="src/repro/ssd/engine.py",
        line=3,
        col=7,
        message="call to time.time() reads the host clock",
    )

    def test_text_format(self):
        text = format_text([self.FINDING])
        assert "src/repro/ssd/engine.py:3:7: [no-wall-clock]" in text
        assert text.endswith("repro-lint: 1 finding")
        assert format_text([]).endswith("all clean")

    def test_json_format_round_trips(self):
        report = json.loads(format_json([self.FINDING]))
        assert report["count"] == 1
        assert report["findings"][0]["rule"] == "no-wall-clock"
        assert report["findings"][0]["line"] == 3

    def test_github_format(self):
        annotation = format_github([self.FINDING]).splitlines()[0]
        assert annotation.startswith(
            "::error file=src/repro/ssd/engine.py,line=3,col=7,"
        )
        assert "title=repro-lint no-wall-clock" in annotation

    def test_github_escapes_newlines(self):
        finding = Finding(rule="r", path="p", line=1, col=1, message="a\nb%c")
        assert "%0A" in format_github([finding]) and "%25" in format_github([finding])

    def test_render_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            render([], "xml")


# -- CLI -----------------------------------------------------------------------
class TestCli:
    def _bad_project(self, tmp_path):
        package = tmp_path / "src" / "repro" / "ssd"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import time\nt = time.time()\n")
        return tmp_path

    def test_clean_project_exits_zero(self, tmp_path, capsys):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "ok.py").write_text("x = 1\n")
        assert main(["--root", str(tmp_path)]) == 0
        assert "all clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main(["--root", str(self._bad_project(tmp_path))]) == 1
        out = capsys.readouterr().out
        assert "[no-wall-clock]" in out and "repro-lint: 1 finding" in out

    def test_github_format_emits_annotations(self, tmp_path, capsys):
        root = self._bad_project(tmp_path)
        assert main(["--root", str(root), "--format", "github"]) == 1
        assert "::error file=src/repro/ssd/bad.py,line=2," in capsys.readouterr().out

    def test_json_report_written(self, tmp_path, capsys):
        root = self._bad_project(tmp_path)
        report = tmp_path / "artifacts" / "lint.json"
        assert main(["--root", str(root), "--json-report", str(report)]) == 1
        capsys.readouterr()
        assert json.loads(report.read_text())["count"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        root = self._bad_project(tmp_path)
        assert main(["--root", str(root), "--select", "no-global-random"]) == 0
        capsys.readouterr()

    def test_disable_skips_rule(self, tmp_path, capsys):
        root = self._bad_project(tmp_path)
        assert main(["--root", str(root), "--disable", "no-wall-clock"]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path), "--select", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explicit_paths_override_config(self, tmp_path, capsys):
        root = self._bad_project(tmp_path)
        other = root / "elsewhere"
        other.mkdir()
        (other / "clean.py").write_text("x = 1\n")
        assert main(["--root", str(root), "elsewhere"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULE_NAMES:
            assert name in out

    def test_discover_root_finds_pyproject(self):
        assert discover_root(REPO_ROOT / "src" / "repro" / "lint") == REPO_ROOT


# -- self-application ----------------------------------------------------------
class TestSelfLint:
    def test_repo_is_clean(self):
        """``repro-lint`` exits 0 on the repository itself."""
        config = LintConfig.load(REPO_ROOT)
        findings = LintEngine(config).lint_paths()
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in findings
        )

    def test_default_rule_set_is_complete(self):
        assert len(default_rules()) == len(RULE_NAMES) == 8
