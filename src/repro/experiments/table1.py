"""Table 1: NAND flash timing parameters of the simulated SSD."""

from __future__ import annotations

from repro.experiments.api import register_experiment
from repro.experiments.reporting import ExperimentResult
from repro.nand.timing import TimingParameters


@register_experiment(
    "table1",
    artifact="Table 1 — NAND flash timing parameters",
    tags=("paper", "table", "static"))
def run(timing: TimingParameters = None) -> ExperimentResult:
    """Render Table 1 (all values in microseconds, tBERS in ms in the paper)."""
    timing = timing or TimingParameters()
    table = timing.table1()
    rows = [{"parameter": name, "time_us": value} for name, value in table.items()]
    return ExperimentResult(
        name="table1",
        title="Table 1: NAND flash timing parameters",
        rows=rows,
        headline={
            "tR (avg.) [us]": table["tR (avg.)"],
            "tPRE:tEVAL:tDISCH": f"{timing.read.t_pre_us:g}:"
                                 f"{timing.read.t_eval_us:g}:"
                                 f"{timing.read.t_disch_us:g}",
            "tPROG [us]": table["tPROG"],
            "tBERS [us]": table["tBERS"],
        },
    )


def main() -> None:  # pragma: no cover - convenience entry point
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
