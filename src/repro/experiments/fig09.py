"""Figure 9: effect of reducing tPRE and tDISCH simultaneously."""

from __future__ import annotations

from repro.characterization.platform import VirtualTestPlatform
from repro.characterization.timing_sweep import combined_parameter_sweep
from repro.errors.calibration import ECC_CALIBRATION
from repro.experiments.reporting import ExperimentResult


def run(num_chips: int = 8, blocks_per_chip: int = 3,
        seed: int = 0) -> ExperimentResult:
    platform = VirtualTestPlatform(num_chips=num_chips,
                                   blocks_per_chip=blocks_per_chip,
                                   wordlines_per_block=1, seed=seed)
    rows = combined_parameter_sweep(platform)

    def m_err(pec, months, pre, disch):
        for row in rows:
            if (row["pe_cycles"] == pec and row["retention_months"] == months
                    and abs(row["pre_reduction"] - pre) < 1e-9
                    and abs(row["disch_reduction"] - disch) < 1e-9):
                return row["m_err"]
        return None

    capability = ECC_CALIBRATION.capability_bits
    combined = m_err(1000, 0.0, 0.54, 0.20)
    headline = {
        "ECC capability [errors/KiB]": capability,
        "M_ERR at (1K, 0) with 54% tPRE alone": m_err(1000, 0.0, 0.54, 0.0),
        "M_ERR at (1K, 0) with 20% tDISCH alone": m_err(1000, 0.0, 0.0, 0.20),
        "M_ERR at (1K, 0) with both (54%, 20%)": combined,
        "combined reduction exceeds ECC capability":
            bool(combined is not None and combined > capability),
    }
    return ExperimentResult(
        name="fig09",
        title="Figure 9: effect of reducing tPRE and tDISCH simultaneously",
        rows=rows,
        headline=headline,
        notes=["the paper concludes the ECC margin is best spent on tPRE "
               "alone: a 7% tDISCH reduction buys only ~1.75% of tR but can "
               "cost up to 4 errors"],
    )


def main() -> None:  # pragma: no cover
    print(run().to_text(max_rows=80))


if __name__ == "__main__":  # pragma: no cover
    main()
