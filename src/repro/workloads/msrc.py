"""MSRC-style workload presets.

The six MSRC traces of Table 2 (``stg_0``, ``hm_0``, ``prn_1``, ``proj_1``,
``mds_1``, ``usr_1``) are enterprise-server block traces with very different
read and cold ratios.  The presets here shape the synthetic generator like
enterprise traffic: moderate sequentiality (backup/scan phases), multi-page
requests and no particular popularity skew beyond the hot/cold split.
"""

from __future__ import annotations

import warnings

from repro.workloads.synthetic import SyntheticWorkload, WorkloadShape


def msrc_shape(
    read_ratio: float,
    cold_ratio: float,
    mean_interarrival_us: float = 300.0,
) -> WorkloadShape:
    """Enterprise-trace flavour of the synthetic generator."""
    return WorkloadShape(
        read_ratio=read_ratio,
        cold_ratio=cold_ratio,
        mean_interarrival_us=mean_interarrival_us,
        mean_request_pages=2.0,
        sequential_fraction=0.35,
        zipf_theta=0.0,
        cold_region_fraction=0.6,
    )


def make_msrc_workload(
    read_ratio: float,
    cold_ratio: float,
    footprint_pages: int,
    seed: int = 0,
    mean_interarrival_us: float = 300.0,
) -> SyntheticWorkload:
    """A ready-to-generate MSRC-style workload.

    .. deprecated:: construct ``SyntheticWorkload(msrc_shape(...), ...)``
        directly, or go through the unified source API
        (``repro.sim.WorkloadSpec`` / ``repro.workloads.source``).
    """
    warnings.warn(
        "make_msrc_workload is deprecated; use "
        "SyntheticWorkload(msrc_shape(...), ...) or repro.sim.WorkloadSpec instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return SyntheticWorkload(
        msrc_shape(read_ratio, cold_ratio, mean_interarrival_us),
        footprint_pages=footprint_pages,
        seed=seed,
    )
