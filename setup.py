"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` works on environments without the ``wheel``
package (legacy ``setup.py develop`` code path).
"""

from setuptools import setup

setup()
