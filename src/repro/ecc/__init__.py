"""Error-correcting-code substrate.

Modern SSDs protect every 1-KiB codeword with a strong ECC (BCH or LDPC) able to
correct several tens of raw bit errors (Section 2.4 of the paper; the
simulated SSD uses 72 bits per 1-KiB codeword with a 20 us decode latency).

Three engines are provided:

* :class:`repro.ecc.engine.CapabilityEccEngine` — the abstraction the SSD
  simulator and the characterization harness use: a codeword decodes iff its
  raw bit error count is at most the configured capability.  This mirrors
  how the paper itself treats ECC.
* :class:`repro.ecc.bch.BchCode` — a real binary BCH encoder/decoder over
  GF(2^m) (syndrome computation, Berlekamp–Massey, Chien search), used by
  the unit tests and examples to demonstrate that the capability abstraction
  is faithful for bounded-distance decoding.
* :class:`repro.ecc.ldpc.GallagerLdpcCode` — a regular LDPC code with a
  bit-flipping decoder, representative of the soft-decision codes used in
  recent SSDs.
"""

from repro.ecc.engine import CapabilityEccEngine, DecodeOutcome, EccEngine
from repro.ecc.bch import BchCode
from repro.ecc.ldpc import GallagerLdpcCode
from repro.ecc.codeword import PageLayout

__all__ = [
    "EccEngine",
    "CapabilityEccEngine",
    "DecodeOutcome",
    "BchCode",
    "GallagerLdpcCode",
    "PageLayout",
]
