"""Capability-model ECC engine.

The SSD controller of the paper's simulated SSD decodes one 1-KiB codeword
in ``tECC`` = 20 us and corrects up to 72 raw bit errors (Section 7.1).  For
system-level studies the only properties that matter are the *capability*
(how many errors are correctable) and the *latency*; this module provides
that abstraction, which both the characterization harness and the SSD
simulator consume.  The real codecs in :mod:`repro.ecc.bch` and
:mod:`repro.ecc.ldpc` demonstrate that the abstraction matches
bounded-distance decoding behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors.calibration import ECC_CALIBRATION, EccCalibration


@dataclass(frozen=True)
class DecodeOutcome:
    """Result of decoding one codeword."""

    success: bool
    raw_bit_errors: int
    corrected_bits: int
    latency_us: float

    @property
    def uncorrectable(self) -> bool:
        return not self.success


class EccEngine(abc.ABC):
    """Interface of an ECC engine attached to one SSD channel."""

    @property
    @abc.abstractmethod
    def capability_bits(self) -> int:
        """Maximum number of correctable raw bit errors per codeword."""

    @property
    @abc.abstractmethod
    def decode_latency_us(self) -> float:
        """Latency of decoding one codeword."""

    @abc.abstractmethod
    def decode(self, raw_bit_errors: int) -> DecodeOutcome:
        """Attempt to decode a codeword containing ``raw_bit_errors`` errors."""

    def margin(self, raw_bit_errors: int) -> int:
        """ECC-capability margin for a codeword (Section 3.2.2, footnote 5)."""
        return self.capability_bits - raw_bit_errors

    def decode_page(self, codeword_errors) -> DecodeOutcome:
        """Decode a whole page given the error count of each codeword.

        A page read fails if *any* codeword is uncorrectable; the reported
        error count is the worst codeword's and the latency accounts for the
        pipelined decode of all codewords (the engine decodes codewords
        back-to-back while the next page is being sensed, so the page-level
        contribution to the critical path stays one ``tECC``, as the paper's
        latency equations assume).
        """
        errors = list(codeword_errors)
        if not errors:
            raise ValueError("decode_page needs at least one codeword")
        worst = max(errors)
        outcome = self.decode(worst)
        corrected = sum(e for e in errors if e <= self.capability_bits)
        return DecodeOutcome(success=outcome.success, raw_bit_errors=worst,
                             corrected_bits=corrected,
                             latency_us=self.decode_latency_us)


class CapabilityEccEngine(EccEngine):
    """A bounded-distance ECC engine characterized by (capability, latency).

    :param capability_bits: correctable bits per codeword (72 by default).
    :param decode_latency_us: decode latency per codeword (20 us by default).
    """

    def __init__(self, capability_bits: int = None,
                 decode_latency_us: float = None,
                 calibration: EccCalibration = ECC_CALIBRATION):
        self._capability = (capability_bits if capability_bits is not None
                            else calibration.capability_bits)
        self._latency = (decode_latency_us if decode_latency_us is not None
                         else calibration.decode_latency_us)
        if self._capability <= 0:
            raise ValueError("capability_bits must be positive")
        if self._latency < 0:
            raise ValueError("decode_latency_us must be non-negative")

    @property
    def capability_bits(self) -> int:
        return self._capability

    @property
    def decode_latency_us(self) -> float:
        return self._latency

    def decode(self, raw_bit_errors: int) -> DecodeOutcome:
        if raw_bit_errors < 0:
            raise ValueError("raw_bit_errors must be non-negative")
        success = raw_bit_errors <= self._capability
        return DecodeOutcome(success=success, raw_bit_errors=raw_bit_errors,
                             corrected_bits=raw_bit_errors if success else 0,
                             latency_us=self._latency)
