"""The unified ``WorkloadSource`` protocol and its serialization registry.

The workload layer grew seven construction idioms over the first PRs —
``generate_workload``/``iter_workload``, ``make_ycsb_workload``/
``make_msrc_workload``, ``WorkloadSpec.build``/``.iter_requests``,
``TenantMix``, ``ClosedLoopSource`` — and every new consumer (fleet
sharding, manifests, scenario wrappers) had to special-case each one.  This
module collapses them behind one duck-typed protocol:

* ``iter_requests(config, footprint_pages=None)`` — a fresh, lazily
  generated :class:`~repro.ssd.request.HostRequest` stream, ordered by
  arrival time.  ``footprint_pages`` overrides the addressable page count
  (the fleet passes the array's logical size so a striped stream spans
  every device);
* ``to_dict()`` / ``from_dict(payload)`` — a JSON-able round-trip so run
  manifests record the source exactly and fleet workers rebuild it from a
  pickled payload;
* ``label`` — a short human identity for reports and cache keys;
* ``source_kind`` — a class-level tag naming the source in serialized form.

:func:`source_to_dict` stamps the kind into the payload and
:func:`source_from_dict` resolves it back through a registry of the
built-in source classes, so a manifest alone reproduces any scenario run.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

#: Registered source classes, keyed by their ``source_kind`` tag.
_SOURCE_KINDS: Dict[str, Type] = {}

_BUILTINS_LOADED = False


def register_source(cls: Type) -> Type:
    """Register a source class under its ``source_kind`` tag.

    Usable as a decorator.  Registering the same kind twice with a
    different class is an error — serialized manifests must stay
    unambiguous.
    """
    kind = getattr(cls, "source_kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(
            f"{cls.__name__} needs a non-empty 'source_kind' class attribute "
            "to be registered as a workload source")
    existing = _SOURCE_KINDS.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"source kind {kind!r} is already registered by "
            f"{existing.__name__}")
    _SOURCE_KINDS[kind] = cls
    return cls


def _ensure_builtins() -> None:
    """Import (and thereby register) every built-in source class lazily.

    Registration lives here rather than at package import so the protocol
    module stays cycle-free: the source classes do not import this module,
    and this module imports them only when serialization is actually used.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.sim.spec import WorkloadSpec
    from repro.workloads.closed_loop import ClosedLoopSource
    from repro.workloads.scenarios import SCENARIO_SOURCES
    from repro.workloads.synthetic import SyntheticWorkload
    from repro.workloads.tenants import TenantMix
    from repro.workloads.trace import TraceReplay

    for cls in (WorkloadSpec, TenantMix, SyntheticWorkload, TraceReplay,
                ClosedLoopSource, *SCENARIO_SOURCES):
        register_source(cls)
    _BUILTINS_LOADED = True


def source_kinds() -> tuple:
    """Every registered source kind, sorted (for error messages and docs)."""
    _ensure_builtins()
    return tuple(sorted(_SOURCE_KINDS))


def is_workload_source(value) -> bool:
    """Whether ``value`` implements the ``WorkloadSource`` protocol."""
    return (callable(getattr(value, "iter_requests", None))
            and callable(getattr(value, "to_dict", None)))


def source_to_dict(source) -> dict:
    """Serialize any workload source, stamping its ``kind`` tag."""
    if not is_workload_source(source):
        raise TypeError(
            f"{source!r} is not a workload source (needs iter_requests() "
            "and to_dict())")
    kind = getattr(type(source), "source_kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(
            f"{type(source).__name__} carries no 'source_kind' tag; only "
            "registered sources can be serialized into a manifest")
    payload = dict(source.to_dict())
    payload["kind"] = kind
    return payload


def source_from_dict(payload: dict):
    """Rebuild a workload source from a :func:`source_to_dict` payload."""
    _ensure_builtins()
    payload = dict(payload)
    kind = payload.pop("kind", None)
    if kind is None:
        raise ValueError(
            "source payload carries no 'kind' tag; serialize sources with "
            "source_to_dict()")
    cls = _SOURCE_KINDS.get(kind)
    if cls is None:
        raise KeyError(
            f"unknown source kind {kind!r}; registered kinds: "
            f"{list(source_kinds())}")
    return cls.from_dict(payload)


def as_workload_source(value, num_requests: Optional[int] = None,
                       seed: Optional[int] = None,
                       mean_interarrival_us: Optional[float] = None,
                       footprint_fraction: Optional[float] = None):
    """Coerce ``value`` into a workload source.

    Ready sources (anything implementing the protocol) pass through
    untouched; catalog names, shapes and spec dicts build a
    :class:`~repro.sim.spec.WorkloadSpec`; a ``kind``-tagged dict resolves
    through the source registry.
    """
    from repro.sim.spec import WorkloadSpec
    from repro.workloads.tenants import TenantMix

    if isinstance(value, dict):
        if "kind" in value:
            return source_from_dict(value)
        if "tenants" in value:
            return TenantMix.from_dict(value)
        return WorkloadSpec.coerce(value, num_requests=num_requests,
                                   seed=seed,
                                   mean_interarrival_us=mean_interarrival_us,
                                   footprint_fraction=footprint_fraction)
    if is_workload_source(value) and not isinstance(value, (str, WorkloadSpec)):
        return value
    return WorkloadSpec.coerce(value, num_requests=num_requests, seed=seed,
                               mean_interarrival_us=mean_interarrival_us,
                               footprint_fraction=footprint_fraction)
