"""Figure 9: effect of reducing tPRE and tDISCH simultaneously."""

from __future__ import annotations

from repro.characterization.platform import VirtualTestPlatform
from repro.characterization.timing_sweep import combined_parameter_sweep
from repro.errors.calibration import ECC_CALIBRATION
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult


@register_experiment(
    "fig09",
    artifact="Figure 9 — effect of reducing tPRE and tDISCH together",
    tags=("paper", "figure", "characterization"),
    params=(
        param("num_chips", 8, "chips in the virtual test platform",
              fast=3, smoke=2),
        param("blocks_per_chip", 3, "sampled blocks per chip",
              fast=2, smoke=2),
        param("seed", 0, "platform seed"),
    ))
def run(num_chips: int = 8, blocks_per_chip: int = 3,
        seed: int = 0) -> ExperimentResult:
    platform = VirtualTestPlatform(num_chips=num_chips,
                                   blocks_per_chip=blocks_per_chip,
                                   wordlines_per_block=1, seed=seed)
    result = ExperimentResult(
        name="fig09",
        title="Figure 9: effect of reducing tPRE and tDISCH simultaneously",
        rows=combined_parameter_sweep(platform),
        notes=["the paper concludes the ECC margin is best spent on tPRE "
               "alone: a 7% tDISCH reduction buys only ~1.75% of tR but can "
               "cost up to 4 errors"],
    )

    def m_err(pec, months, pre, disch):
        row = result.first_row(pe_cycles=pec, retention_months=months,
                               approx={"pre_reduction": pre,
                                       "disch_reduction": disch})
        return row["m_err"] if row else None

    capability = ECC_CALIBRATION.capability_bits
    combined = m_err(1000, 0.0, 0.54, 0.20)
    result.headline = {
        "ECC capability [errors/KiB]": capability,
        "M_ERR at (1K, 0) with 54% tPRE alone": m_err(1000, 0.0, 0.54, 0.0),
        "M_ERR at (1K, 0) with 20% tDISCH alone": m_err(1000, 0.0, 0.0, 0.20),
        "M_ERR at (1K, 0) with both (54%, 20%)": combined,
        "combined reduction exceeds ECC capability":
            bool(combined is not None and combined > capability),
    }
    return result


def main() -> None:  # pragma: no cover
    print(run().to_text(max_rows=80))


if __name__ == "__main__":  # pragma: no cover
    main()
