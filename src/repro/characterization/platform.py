"""The virtual NAND flash characterization platform.

The paper's methodology (Section 4): 160 chips, 120 randomly selected blocks
per chip, read tests on every page of every selected block, a temperature
controller that keeps the chip within +/-1 degC and accelerates retention
loss via Arrhenius's law, and a flash controller that can change read-timing
parameters per read with SET FEATURE.

The virtual platform reproduces that setup against the calibrated error
model.  Because the error model is analytic, "testing a page" means
evaluating the model for that page's process-variation sample under the
requested operating condition — which is exactly how the paper's simulator
consumes the characterization too (per-block lookup tables).

The platform purposely exposes a *sampled* population (chips x blocks x
wordlines x page types); the population size is configurable so unit tests
stay fast while benchmarks can scale to the paper's full 11-million-page
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors.condition import OperatingCondition
from repro.errors.rber import CodewordErrorModel, RetryOutcome
from repro.errors.retention import required_bake_hours
from repro.errors.timing import TimingReduction
from repro.errors.variation import ProcessVariation, VariationSample
from repro.nand.geometry import PageType
from repro.nand.voltage import ReadRetryTable


@dataclass(frozen=True)
class PageSample:
    """One (chip, block, wordline, page type) sampled by the platform."""

    chip: int
    block: int
    wordline: int
    page_type: PageType
    variation: VariationSample

    def label(self) -> str:
        return (f"chip{self.chip}/blk{self.block}/wl{self.wordline}"
                f"/{self.page_type.value}")


class VirtualTestPlatform:
    """A population of NAND flash pages plus the measurement procedures.

    :param num_chips: number of chips in the population (160 in the paper).
    :param blocks_per_chip: sampled blocks per chip (120 in the paper).
    :param wordlines_per_block: sampled wordlines per block.
    :param page_types: which page types to include (all three by default).
    :param seed: seed of the process-variation population.
    :param error_model: calibrated codeword error model.
    :param retry_table: manufacturer read-retry table.
    """

    def __init__(self,
                 num_chips: int = 20,
                 blocks_per_chip: int = 6,
                 wordlines_per_block: int = 3,
                 page_types=None,
                 seed: int = 0,
                 error_model: CodewordErrorModel = None,
                 retry_table: ReadRetryTable = None):
        if num_chips < 1 or blocks_per_chip < 1 or wordlines_per_block < 1:
            raise ValueError("population dimensions must be positive")
        self.num_chips = num_chips
        self.blocks_per_chip = blocks_per_chip
        self.wordlines_per_block = wordlines_per_block
        self.page_types = tuple(page_types or
                                (PageType.LSB, PageType.CSB, PageType.MSB))
        self.error_model = error_model or CodewordErrorModel()
        self.retry_table = retry_table or ReadRetryTable()
        self._variation = ProcessVariation(seed=seed)
        self._samples: Optional[List[PageSample]] = None

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "VirtualTestPlatform":
        """A platform with the paper's population (160 chips x 120 blocks).

        Intended for offline sweeps; the default constructor uses a smaller
        population so the test-suite stays fast.
        """
        return cls(num_chips=160, blocks_per_chip=120, wordlines_per_block=4,
                   seed=seed)

    # -- population ------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return (self.num_chips * self.blocks_per_chip
                * self.wordlines_per_block * len(self.page_types))

    def pages(self) -> List[PageSample]:
        """The sampled page population (materialized once and cached)."""
        if self._samples is None:
            self._samples = list(self.iter_pages())
        return self._samples

    def iter_pages(self) -> Iterator[PageSample]:
        for chip in range(self.num_chips):
            for block in range(self.blocks_per_chip):
                for wordline in range(self.wordlines_per_block):
                    variation = self._variation.sample(chip=chip, block=block,
                                                       wordline=wordline)
                    for page_type in self.page_types:
                        yield PageSample(chip=chip, block=block,
                                         wordline=wordline,
                                         page_type=page_type,
                                         variation=variation)

    # -- measurement procedures ---------------------------------------------------
    def read_test(self, sample: PageSample, condition: OperatingCondition,
                  timing_reduction: TimingReduction = None,
                  retry_timing_reduction: TimingReduction = None,
                  rng: np.random.Generator = None) -> RetryOutcome:
        """Full read test of one page: initial read plus read-retry walk."""
        return self.error_model.walk_retry_table(
            condition, sample.page_type, table=self.retry_table,
            variation=sample.variation, timing_reduction=timing_reduction,
            retry_timing_reduction=retry_timing_reduction, rng=rng)

    def final_step_errors(self, sample: PageSample,
                          condition: OperatingCondition,
                          timing_reduction: TimingReduction = None) -> float:
        """Errors at the near-optimal (final) retry step for one page."""
        return self.error_model.near_optimal_step_errors(
            condition, sample.page_type, table=self.retry_table,
            variation=sample.variation, timing_reduction=timing_reduction)

    def retry_steps(self, sample: PageSample,
                    condition: OperatingCondition,
                    timing_reduction: TimingReduction = None) -> Optional[int]:
        """Number of retry steps a read of this page needs."""
        return self.read_test(sample, condition,
                              timing_reduction=timing_reduction).retry_steps

    def bake_plan_hours(self, retention_months: float,
                        bake_temperature_c: float = 85.0) -> float:
        """Bake duration emulating a retention age (documentation helper).

        The virtual platform does not need to physically wait, but the
        equivalent bake time is reported so experiments can document their
        methodology the way the paper does (e.g. "13 hours at 85 degC is
        about 1 year at 30 degC").
        """
        return required_bake_hours(retention_months, bake_temperature_c)

    # -- aggregation helpers ----------------------------------------------------------
    def max_final_step_errors(self, condition: OperatingCondition,
                              timing_reduction: TimingReduction = None,
                              quantile: float = 1.0) -> float:
        """Robust maximum of final-retry-step errors across the population.

        ``quantile=1.0`` is the true maximum (the paper's M_ERR definition);
        smaller values give outlier-robust maxima used when the analytic
        model's marginal tail should be excluded.
        """
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        values = [self.final_step_errors(sample, condition, timing_reduction)
                  for sample in self.pages()]
        if quantile >= 1.0:
            return float(max(values))
        return float(np.quantile(values, quantile))

    def retry_step_counts(self, condition: OperatingCondition,
                          timing_reduction: TimingReduction = None) -> List[Optional[int]]:
        """Retry-step count of every page in the population."""
        return [self.retry_steps(sample, condition, timing_reduction)
                for sample in self.pages()]
