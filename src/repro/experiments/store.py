"""Content-addressed artifact store for experiment results.

Results are keyed by the SHA-256 of ``(experiment name, fully resolved
parameters, schema version)`` — the complete input surface of a run, given
that every harness is a deterministic function of its parameters.  Re-running
an experiment with the same resolved parameters is therefore a cache hit,
which makes ``repro-experiment run all`` resumable (a crashed suite re-serves
the finished experiments instantly) and repeat invocations near-instant.

Artifacts live under ``~/.cache/repro`` by default; override with the
``REPRO_CACHE_DIR`` environment variable or the ``root`` argument.  Each
artifact is one pretty-printed JSON document (the
:meth:`~repro.experiments.reporting.ExperimentResult.to_json` form), so the
cache doubles as a browsable result archive::

    ~/.cache/repro/artifacts/fig14/ab12cd34....json

Loads go through :meth:`ExperimentResult.from_dict`, whose canonical
serialization guarantees a cached result exports byte-identically to the
fresh run that produced it.

The address deliberately contains **no code fingerprint** — harnesses are
assumed deterministic functions of their parameters under the current code.
After changing the simulator or an experiment, run with ``--no-cache`` or
clear the store; each artifact's manifest records the ``repro_version``
that produced it for post-hoc auditing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.experiments.reporting import (
    SCHEMA_VERSION,
    ExperimentResult,
    jsonify,
)

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro").expanduser()


def cache_key(experiment: str, params: Mapping[str, object],
              schema_version: int = SCHEMA_VERSION) -> str:
    """Content address of a run: experiment + resolved params + schema."""
    payload = json.dumps(
        {"experiment": experiment, "params": jsonify(dict(params)),
         "schema_version": schema_version},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class ArtifactStore:
    """Filesystem-backed, content-addressed cache of experiment results."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = (Path(root).expanduser() if root is not None
                     else default_cache_root()) / "artifacts"
        self.hits = 0
        self.misses = 0

    # -- addressing -----------------------------------------------------------
    def key(self, experiment: str, params: Mapping[str, object]) -> str:
        return cache_key(experiment, params)

    def path(self, experiment: str, params: Mapping[str, object]) -> Path:
        return self.root / experiment / f"{self.key(experiment, params)}.json"

    # -- access ---------------------------------------------------------------
    def load(self, experiment: str,
             params: Mapping[str, object]) -> Optional[ExperimentResult]:
        """The cached result for (experiment, params), or None on a miss.

        An unreadable or schema-incompatible artifact counts as a miss (and
        is left in place for inspection), never an error — the caller just
        recomputes.
        """
        path = self.path(experiment, params)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            result = ExperimentResult.from_json(text)
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def save(self, result: ExperimentResult) -> Path:
        """Persist ``result`` atomically.

        The manifest must carry a ``cache_key`` (the runner computes it over
        the cache-relevant parameters; ad-hoc callers can use :meth:`key`).
        Deriving a fallback address here from the full parameter dict would
        store artifacts where no load — which keys on the cache-relevant
        subset — ever looks.
        """
        if result.manifest is None or not result.manifest.cache_key:
            raise ValueError(
                "result has no manifest.cache_key; only results addressed "
                "by their cache-relevant parameters (see ArtifactStore.key) "
                "are cacheable")
        manifest = result.manifest
        path = self.root / manifest.experiment / f"{manifest.cache_key}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent runs never observe a torn file.
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False)
        try:
            with handle:
                handle.write(result.to_json())
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path

    # -- maintenance ----------------------------------------------------------
    def entries(self, experiment: Optional[str] = None) -> List[Path]:
        """Paths of every stored artifact, optionally for one experiment."""
        if not self.root.is_dir():
            return []
        directories = ([self.root / experiment] if experiment is not None
                       else sorted(child for child in self.root.iterdir()
                                   if child.is_dir()))
        paths: List[Path] = []
        for directory in directories:
            if directory.is_dir():
                paths.extend(sorted(directory.glob("*.json")))
        return paths

    def clear(self, experiment: Optional[str] = None) -> int:
        """Delete stored artifacts; returns the number removed."""
        removed = 0
        for path in self.entries(experiment):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stored": len(self.entries())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"


def _canonical_json(value) -> str:
    return json.dumps(jsonify(value), sort_keys=True, separators=(",", ":"))


class CheckpointStore:
    """Raw-JSON sibling of :class:`ArtifactStore` for mid-run checkpoints.

    Where the artifact store holds *finished* :class:`ExperimentResult`
    documents, the checkpoint store holds arbitrary JSON payloads produced
    mid-run — completed fleet-shard metrics, capacity-search probe trails —
    keyed by the SHA-256 of their fully resolved parameters under a ``kind``
    namespace::

        <cache root>/checkpoints/fleet_shard/ab12cd34....json

    It shares the cache root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``)
    and the store semantics: atomic write-then-rename saves, and any
    unreadable, torn, or corrupted entry counts as a plain miss so the
    caller just recomputes.  Each entry embeds a content digest of its
    payload; a checkpoint that decodes as JSON but fails the digest (e.g. a
    flipped byte) is rejected the same way a truncated file is.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = (Path(root).expanduser() if root is not None
                     else default_cache_root()) / "checkpoints"
        self.hits = 0
        self.misses = 0

    # -- addressing -----------------------------------------------------------
    def key(self, params: Mapping[str, object]) -> str:
        """Content address of a checkpoint: its resolved parameters."""
        digest = hashlib.sha256(
            _canonical_json(dict(params)).encode("utf-8"))
        return digest.hexdigest()[:24]

    def path(self, kind: str, params: Mapping[str, object]) -> Path:
        return self.root / kind / f"{self.key(params)}.json"

    # -- access ---------------------------------------------------------------
    def load(self, kind: str, params: Mapping[str, object]):
        """The stored payload for (kind, params), or None on a miss.

        Unreadable files, JSON that does not parse (a torn or truncated
        write), entries without the expected envelope, and payloads whose
        content digest does not match all count as misses — the shard or
        probe simply re-runs.
        """
        path = self.path(kind, params)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            document = json.loads(text)
            payload = document["payload"]
            digest = document["sha256"]
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        expected = hashlib.sha256(
            _canonical_json(payload).encode("utf-8")).hexdigest()
        if digest != expected:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def save(self, kind: str, params: Mapping[str, object],
             payload) -> Path:
        """Persist ``payload`` atomically under (kind, params)."""
        path = self.path(kind, params)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "kind": kind,
            "params": jsonify(dict(params)),
            "payload": jsonify(payload),
            "sha256": hashlib.sha256(
                _canonical_json(payload).encode("utf-8")).hexdigest(),
        }
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, suffix=".tmp", delete=False)
        try:
            with handle:
                json.dump(document, handle)
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        return path

    # -- maintenance ----------------------------------------------------------
    def entries(self, kind: Optional[str] = None) -> List[Path]:
        """Paths of every stored checkpoint, optionally for one kind."""
        if not self.root.is_dir():
            return []
        directories = ([self.root / kind] if kind is not None
                       else sorted(child for child in self.root.iterdir()
                                   if child.is_dir()))
        paths: List[Path] = []
        for directory in directories:
            if directory.is_dir():
                paths.extend(sorted(directory.glob("*.json")))
        return paths

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete stored checkpoints; returns the number removed."""
        removed = 0
        for path in self.entries(kind):
            path.unlink()
            removed += 1
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stored": len(self.entries())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore({str(self.root)!r})"
