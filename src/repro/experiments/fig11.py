"""Figure 11: minimum safe tPRE for reliable tRETRY reduction.

The experiment also renders the resulting Read-timing Parameter Table (the
Figure 13 inset) because that is the artifact AR2 consumes at run time.
"""

from __future__ import annotations

from repro.characterization.rpt_builder import build_rpt, minimum_safe_tpre_sweep
from repro.errors.calibration import ECC_CALIBRATION
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult


@register_experiment(
    "fig11",
    artifact="Figure 11 — minimum safe tPRE per condition",
    tags=("paper", "figure", "characterization"),
    params=(
        param("seed", 0, "unused; kept for interface uniformity",
              cache_relevant=False),
    ))
def run(seed: int = 0) -> ExperimentResult:
    rows = minimum_safe_tpre_sweep()
    reductions = [row["max_pre_reduction_pct"] for row in rows]
    rpt = build_rpt()
    headline = {
        "smallest safe tPRE reduction [%]": min(reductions),
        "largest safe tPRE reduction [%]": max(reductions),
        "safety margin [bits]": ECC_CALIBRATION.ar2_safety_margin_bits,
        "RPT entries": len(list(rpt.iter_entries())),
        "RPT storage [bytes]": rpt.storage_bytes(),
    }
    return ExperimentResult(
        name="fig11",
        title="Figure 11: minimum tPRE for safe tRETRY reduction",
        rows=rows,
        headline=headline,
        notes=["the paper finds tPRE can be reduced by at least 40% and up "
               "to 54% under any operating condition once the 14-bit safety "
               "margin is reserved"],
    )


def main() -> None:  # pragma: no cover
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
