"""Tests for the timing parameters and Equation (1)."""

import pytest

from repro.nand.geometry import PageType
from repro.nand.timing import ReadTimingParameters, TimingParameters, TABLE1_TIMING


class TestReadTimingParameters:
    def test_default_phase_values_match_characterized_chips(self):
        read = ReadTimingParameters()
        assert read.t_pre_us == 24.0
        assert read.t_eval_us == 5.0
        assert read.t_disch_us == 10.0
        # tPRE : tEVAL : tDISCH is roughly 5 : 1 : 2 (Section 4).
        assert read.t_pre_us / read.t_eval_us == pytest.approx(4.8)
        assert read.t_disch_us / read.t_eval_us == pytest.approx(2.0)

    def test_equation_1_sensing_latency(self):
        read = ReadTimingParameters()
        assert read.sense_cycle_us == pytest.approx(39.0)
        assert read.sensing_latency_us(PageType.LSB) == pytest.approx(78.0)
        assert read.sensing_latency_us(PageType.CSB) == pytest.approx(117.0)
        assert read.sensing_latency_us(PageType.MSB) == pytest.approx(78.0)

    def test_average_sensing_latency_about_90us(self):
        # Table 1 lists tR (avg.) = 90 us.
        assert ReadTimingParameters().average_sensing_latency_us() == pytest.approx(91.0)

    def test_with_reduction(self):
        read = ReadTimingParameters().with_reduction(pre=0.5, disch=0.1)
        assert read.t_pre_us == pytest.approx(12.0)
        assert read.t_eval_us == pytest.approx(5.0)
        assert read.t_disch_us == pytest.approx(9.0)

    def test_with_reduction_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ReadTimingParameters().with_reduction(pre=1.0)
        with pytest.raises(ValueError):
            ReadTimingParameters().with_reduction(eval_=-0.1)

    def test_reduction_from_roundtrip(self):
        default = ReadTimingParameters()
        reduced = default.with_reduction(pre=0.4)
        fractions = reduced.reduction_from(default)
        assert fractions["pre"] == pytest.approx(0.4)
        assert fractions["eval"] == pytest.approx(0.0)

    def test_speedup_over(self):
        default = ReadTimingParameters()
        reduced = default.with_reduction(pre=0.4)
        # A 40% tPRE reduction shortens the sense cycle by 9.6 us out of 39.
        assert reduced.speedup_over(default) == pytest.approx(39.0 / 29.4)

    def test_positive_validation(self):
        with pytest.raises(ValueError):
            ReadTimingParameters(t_pre_us=0.0)


class TestTimingParameters:
    def test_table1_values(self):
        table = TABLE1_TIMING.table1()
        assert table["tPROG"] == 700.0
        assert table["tBERS"] == 5000.0
        assert table["tSET"] == 1.0
        assert table["tRST"] == 5.0
        assert table["tDMA"] == 16.0
        assert table["tECC"] == 20.0
        assert table["tR (avg.)"] == pytest.approx(91.0)

    def test_t_r_us_with_override(self, timing):
        reduced = timing.read.with_reduction(pre=0.4)
        assert timing.t_r_us(PageType.CSB, reduced) < timing.t_r_us(PageType.CSB)

    def test_with_read_returns_new_instance(self, timing):
        reduced = timing.read.with_reduction(pre=0.2)
        updated = timing.with_read(reduced)
        assert updated.read is reduced
        assert timing.read is not reduced

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(t_prog_us=-1.0)
