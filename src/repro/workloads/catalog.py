"""Table 2 of the paper: the twelve evaluated workloads.

Each entry records the workload's suite, read ratio and cold ratio exactly as
listed in Table 2, plus the generator preset used to synthesize an
equivalent request stream.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ssd.request import HostRequest
from repro.workloads.msrc import msrc_shape
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.ycsb import ycsb_shape


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 2."""

    name: str
    suite: str  # "MSRC" or "YCSB"
    read_ratio: float
    cold_ratio: float
    scan_heavy: bool = False

    def __post_init__(self) -> None:
        if self.suite not in ("MSRC", "YCSB"):
            raise ValueError("suite must be 'MSRC' or 'YCSB'")
        for name in ("read_ratio", "cold_ratio"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def read_dominant(self) -> bool:
        """The paper calls workloads with read ratio >= 0.75 read-dominant."""
        return self.read_ratio >= 0.75

    def build(
        self,
        footprint_pages: int,
        seed: int = 0,
        mean_interarrival_us: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> SyntheticWorkload:
        """Instantiate the synthetic generator for this workload."""
        # Omitting the kwarg (rather than passing None) lets each suite
        # preset keep its own default arrival rate.
        kwargs = {}
        if mean_interarrival_us is not None:
            kwargs["mean_interarrival_us"] = mean_interarrival_us
        if self.suite == "MSRC":
            shape = msrc_shape(self.read_ratio, self.cold_ratio, **kwargs)
        else:
            shape = ycsb_shape(
                self.read_ratio, self.cold_ratio, scan_heavy=self.scan_heavy, **kwargs
            )
        return SyntheticWorkload(
            shape, footprint_pages=footprint_pages, seed=seed, num_requests=num_requests
        )


#: Table 2, in the order the paper lists the workloads.
WORKLOAD_CATALOG: Dict[str, WorkloadSpec] = {
    "stg_0": WorkloadSpec("stg_0", "MSRC", read_ratio=0.15, cold_ratio=0.38),
    "hm_0": WorkloadSpec("hm_0", "MSRC", read_ratio=0.36, cold_ratio=0.22),
    "prn_1": WorkloadSpec("prn_1", "MSRC", read_ratio=0.75, cold_ratio=0.72),
    "proj_1": WorkloadSpec("proj_1", "MSRC", read_ratio=0.89, cold_ratio=0.96),
    "mds_1": WorkloadSpec("mds_1", "MSRC", read_ratio=0.92, cold_ratio=0.98),
    "usr_1": WorkloadSpec("usr_1", "MSRC", read_ratio=0.96, cold_ratio=0.73),
    "YCSB-A": WorkloadSpec("YCSB-A", "YCSB", read_ratio=0.98, cold_ratio=0.72),
    "YCSB-B": WorkloadSpec("YCSB-B", "YCSB", read_ratio=0.99, cold_ratio=0.59),
    "YCSB-C": WorkloadSpec("YCSB-C", "YCSB", read_ratio=0.99, cold_ratio=0.60),
    "YCSB-D": WorkloadSpec("YCSB-D", "YCSB", read_ratio=0.98, cold_ratio=0.58),
    "YCSB-E": WorkloadSpec("YCSB-E", "YCSB", read_ratio=0.99, cold_ratio=0.98, scan_heavy=True),
    "YCSB-F": WorkloadSpec("YCSB-F", "YCSB", read_ratio=0.98, cold_ratio=0.87),
}

#: The paper splits Figure 14/15 into write-dominant and read-dominant groups.
WRITE_DOMINANT_WORKLOADS: Tuple[str, ...] = ("stg_0", "hm_0")
READ_DOMINANT_WORKLOADS: Tuple[str, ...] = tuple(
    name for name in WORKLOAD_CATALOG if name not in WRITE_DOMINANT_WORKLOADS
)


def workload_names() -> List[str]:
    """The twelve workload names in Table 2 order."""
    return list(WORKLOAD_CATALOG)


def catalog_workload(
    name: str,
    footprint_pages: int,
    seed: int = 0,
    mean_interarrival_us: Optional[float] = None,
    num_requests: Optional[int] = None,
) -> SyntheticWorkload:
    """The named Table 2 workload as a ready ``SyntheticWorkload`` source."""
    if name not in WORKLOAD_CATALOG:
        raise KeyError(f"unknown workload {name!r}; available: {workload_names()}")
    return WORKLOAD_CATALOG[name].build(
        footprint_pages,
        seed=seed,
        mean_interarrival_us=mean_interarrival_us,
        num_requests=num_requests,
    )


def generate_workload(
    name: str,
    num_requests: int,
    footprint_pages: int,
    seed: int = 0,
    mean_interarrival_us: Optional[float] = None,
) -> List[HostRequest]:
    """Generate a request stream for a named Table 2 workload.

    .. deprecated:: use ``repro.sim.WorkloadSpec(name=...).build_requests(config)``
        or :func:`catalog_workload` directly.
    """
    warnings.warn(
        "generate_workload is deprecated; use repro.sim.WorkloadSpec or "
        "catalog_workload(...).generate(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return list(
        catalog_workload(
            name, footprint_pages, seed=seed, mean_interarrival_us=mean_interarrival_us
        ).iter_requests(num_requests)
    )


def iter_workload(
    name: str,
    num_requests: int,
    footprint_pages: int,
    seed: int = 0,
    mean_interarrival_us: Optional[float] = None,
) -> Iterator[HostRequest]:
    """Stream a named Table 2 workload lazily (same draws as generate).

    .. deprecated:: use ``repro.sim.WorkloadSpec(name=...).iter_requests(config)``
        or :func:`catalog_workload` directly.
    """
    warnings.warn(
        "iter_workload is deprecated; use repro.sim.WorkloadSpec or "
        "catalog_workload(...).iter_requests(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return catalog_workload(
        name, footprint_pages, seed=seed, mean_interarrival_us=mean_interarrival_us
    ).iter_requests(num_requests)


def table2_rows() -> List[dict]:
    """Table 2 rendered as printable rows."""
    return [
        {
            "workload": spec.name,
            "suite": spec.suite,
            "read_ratio": spec.read_ratio,
            "cold_ratio": spec.cold_ratio,
            "class": "read-dominant" if spec.read_dominant else "write-dominant",
        }
        for spec in WORKLOAD_CATALOG.values()
    ]
