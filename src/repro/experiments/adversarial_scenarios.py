"""Adversarial scenarios: the policy suite under fault injection.

Every paper experiment measures a healthy device.  Production tails are
made elsewhere: a die goes slow, a read-disturb storm lands on the hottest
blocks, grown bad blocks force the FTL to remap live data mid-run.  This
experiment drives the adversarial access-pattern suite
(:mod:`repro.workloads.scenarios`) against the Figure 14 policy suite on a
page-mapped device, each cell twice — once fault-free and once under a
deterministic composite :class:`~repro.ssd.faults.FaultPlan` (a transient
die failure, a read-disturb storm on the hottest blocks, grown bad
blocks) — and reports how far each policy's p999 degrades.

The headline is per-policy: the ratio of the faulted p999 to the
fault-free p999, merged across every pattern.  The fault plan is seeded
and its injection times are fixed fractions of the stream horizon, so the
whole experiment is a pure function of its declared parameters
(serial == parallel, bitwise).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult
from repro.sim.registry import default_registry
from repro.sim.session import Simulation
from repro.sim.sweep import pool_map
from repro.ssd.config import SsdConfig
from repro.ssd.faults import (
    FaultPlan,
    die_failure,
    grown_bad_blocks,
    read_disturb,
)
from repro.ssd.metrics import SimulationMetrics
from repro.workloads.scenarios import make_pattern
from repro.workloads.source import source_from_dict, source_to_dict

#: Fraction of the logical space the patterns touch — low enough to leave
#: the page-mapped FTL a healthy free-block pool for grown-bad remaps.
FOOTPRINT_FRACTION = 0.5

#: Precondition fill.  The default 0.85 parks every plane's free pool at
#: the grown-bad retirement guard (free <= gc_free_block_threshold + 1),
#: which would silently skip every retirement; 0.70 leaves real headroom.
FILL_FRACTION = 0.70


def _scenario_config() -> SsdConfig:
    """A small page-mapped device (grown-bad-block remap needs DFTL).

    Planes carry 24 blocks and the run preconditions at
    ``FILL_FRACTION`` so each plane keeps a free pool comfortably above
    the grown-bad retirement guard — retirement refuses to eat a plane's
    last free blocks, and the experiment needs it to actually happen.
    """
    return SsdConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                     blocks_per_plane=24, pages_per_block=24,
                     write_buffer_pages=32, mapping="page",
                     cmt_capacity_entries=128,
                     translation_entries_per_page=64,
                     gc_free_block_threshold=3, gc_stop_free_blocks=5)


def _fault_plan(horizon_us: float, seed: int) -> FaultPlan:
    """The composite plan: die failure, disturb storm, grown bad blocks.

    Injection times are fixed fractions of the stream horizon so the same
    plan shape scales from smoke runs to paper-scale ones.
    """
    return FaultPlan(faults=(
        die_failure(at_us=0.25 * horizon_us, channel=0, die=0,
                    duration_us=0.25 * horizon_us, latency_factor=4.0),
        read_disturb(at_us=0.40 * horizon_us, duration_us=0.30 * horizon_us,
                     blocks=4, extra_retry_steps=3),
        grown_bad_blocks(at_us=0.60 * horizon_us, blocks=2),
    ), seed=seed)


def _run_cell(payload: dict) -> Tuple[str, bool, Dict[str, object]]:
    """One (pattern, faulted?) cell against every policy — pure function."""
    config = SsdConfig.from_dict(payload["config"])
    source = source_from_dict(payload["source"])
    simulation = (Simulation(config)
                  .policies(payload["policies"])
                  .workload(source)
                  .condition(pec=payload["pe_cycles"],
                             months=payload["retention_months"],
                             fill=FILL_FRACTION))
    if payload.get("faults"):
        simulation.faults(FaultPlan.from_dict(payload["faults"]))
    run = simulation.run()
    return (payload["pattern"], bool(payload.get("faults")),
            dict(run.results))


@register_experiment(
    "adversarial_scenarios",
    artifact="Adversarial scenarios — per-policy p999 degradation under "
             "fault injection vs a fault-free baseline",
    tags=("system", "faults"),
    params=(
        param("patterns", ("seq_then_random", "snake", "stride", "hot_cold"),
              "adversarial access patterns (repro.workloads.scenarios)",
              fast=("snake", "hot_cold"), smoke=("hot_cold",)),
        param("num_requests", 2000, "host requests per pattern",
              fast=700, smoke=300),
        param("pe_cycles", 1000, "preconditioned P/E-cycle count"),
        param("retention_months", 6.0, "cold-data retention age"),
        param("mean_interarrival_us", 400.0,
              "mean host inter-arrival time (us)"),
        param("seed", 0, "pattern and fault-plan seed"),
        param("processes", 1, "worker processes (one cell each)",
              cache_relevant=False),
    ))
def run(patterns: Sequence[str] = ("seq_then_random", "snake", "stride",
                                   "hot_cold"),
        num_requests: int = 2000,
        pe_cycles: int = 1000,
        retention_months: float = 6.0,
        mean_interarrival_us: float = 400.0,
        seed: int = 0,
        processes: int = 1) -> ExperimentResult:
    """Per-policy p999 under deterministic faults vs fault-free baseline."""
    patterns = list(patterns)
    config = _scenario_config()
    policies = default_registry().names(tag="fig14")
    horizon_us = num_requests * mean_interarrival_us
    plan = _fault_plan(horizon_us, seed)

    payloads = []
    for name in patterns:
        source = make_pattern(name, num_requests=num_requests, seed=seed,
                              mean_interarrival_us=mean_interarrival_us,
                              footprint_fraction=FOOTPRINT_FRACTION)
        for faulted in (False, True):
            payloads.append({
                "config": config.to_dict(),
                "source": source_to_dict(source),
                "pattern": name,
                "policies": tuple(policies),
                "pe_cycles": pe_cycles,
                "retention_months": retention_months,
                "faults": plan.to_dict() if faulted else None,
            })
    outcomes = pool_map(_run_cell, payloads, processes)

    cells: Dict[Tuple[str, bool], Dict[str, object]] = {
        (pattern, faulted): results
        for pattern, faulted, results in outcomes
    }

    rows = []
    merged_baseline = {policy: SimulationMetrics() for policy in policies}
    merged_faulted = {policy: SimulationMetrics() for policy in policies}
    for name in patterns:
        baseline_cell = cells[(name, False)]
        faulted_cell = cells[(name, True)]
        for policy in policies:
            baseline = baseline_cell[policy].metrics
            faulted = faulted_cell[policy].metrics
            merged_baseline[policy].merge(baseline)
            merged_faulted[policy].merge(faulted)
            p999_baseline = baseline.latency("all").p999()
            p999_faulted = faulted.latency("all").p999()
            degradation = (p999_faulted / p999_baseline
                           if p999_baseline > 0 else 1.0)
            rows.append({
                "pattern": name,
                "policy": policy,
                "p999_baseline_us": round(p999_baseline, 2),
                "p999_faulted_us": round(p999_faulted, 2),
                "p999_degradation": round(degradation, 4),
                "p99_baseline_us": round(baseline.latency("all").p99(), 2),
                "p99_faulted_us": round(faulted.latency("all").p99(), 2),
                "fault_injections": faulted.fault_injections,
                "faulted_reads": faulted.faulted_reads,
                "grown_bad_blocks": faulted.grown_bad_blocks,
                "fault_remapped_pages": faulted.fault_remapped_pages,
            })

    headline = {}
    for policy in policies:
        p999_baseline = merged_baseline[policy].p999_response_time_us()
        p999_faulted = merged_faulted[policy].p999_response_time_us()
        degradation = (p999_faulted / p999_baseline
                       if p999_baseline > 0 else 1.0)
        headline[f"{policy} p999 under fault (x baseline)"] = (
            f"{degradation:.2f}x ({p999_baseline:.1f} -> "
            f"{p999_faulted:.1f} us)")
    any_policy = merged_faulted[policies[0]]
    headline["fault injections / faulted reads"] = (
        f"{any_policy.fault_injections} / {any_policy.faulted_reads}")
    headline["grown bad blocks (pages remapped)"] = (
        f"{any_policy.grown_bad_blocks} ({any_policy.fault_remapped_pages})")

    return ExperimentResult(
        name="adversarial_scenarios",
        title="Adversarial scenarios: p999 degradation under fault "
              "injection",
        rows=rows,
        headline=headline,
        notes=[
            f"{len(patterns)} patterns x {num_requests} requests, each run "
            "fault-free and under a seeded composite fault plan "
            f"({plan.label}) on a page-mapped device; die failure at 25% "
            "of the horizon (4x latency for 25%), read-disturb storm on "
            "the 4 hottest blocks at 40% (+3 retry steps for 30%), 2 "
            "grown bad blocks retired and remapped at 60%",
        ],
    )


def main() -> None:  # pragma: no cover
    result = run(patterns=("hot_cold",), num_requests=300)
    print(result.to_text(max_rows=40))


if __name__ == "__main__":  # pragma: no cover
    main()
