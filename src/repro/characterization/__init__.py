"""Virtual real-device characterization (Sections 3.1, 4 and 5 of the paper).

The paper characterizes 160 real 48-layer 3D TLC NAND flash chips on an
FPGA-based test platform with a temperature controller.  This subpackage
reproduces that study against the calibrated error model:

* :mod:`repro.characterization.platform` — the virtual test platform: a
  population of chips/blocks/wordlines with process variation, a temperature
  controller (Arrhenius-accelerated retention baking) and SET FEATURE support
  for changing read-timing parameters.
* :mod:`repro.characterization.retry_profile` — Figure 5: how many retry
  steps reads need across the (P/E cycles, retention age) grid.
* :mod:`repro.characterization.margin` — Figure 4(b) and Figure 7: RBER per
  retry step and the ECC-capability margin in the final retry step.
* :mod:`repro.characterization.timing_sweep` — Figures 8, 9 and 10: the
  reliability impact of reducing tPRE / tEVAL / tDISCH individually,
  simultaneously, and across operating temperatures.
* :mod:`repro.characterization.rpt_builder` — Figure 11 and the Read-timing
  Parameter Table of Figure 13: the largest safe tPRE reduction per
  operating-condition bin, with the paper's 14-bit safety margin.
"""

from repro.characterization.platform import PageSample, VirtualTestPlatform
from repro.characterization.retry_profile import RetryProfile, profile_retry_steps
from repro.characterization.margin import (
    ecc_margin_sweep,
    final_step_error_sweep,
    rber_per_retry_step,
)
from repro.characterization.timing_sweep import (
    combined_parameter_sweep,
    individual_parameter_sweep,
    temperature_sweep,
)
from repro.characterization.rpt_builder import build_rpt, minimum_safe_tpre_sweep

__all__ = [
    "VirtualTestPlatform",
    "PageSample",
    "RetryProfile",
    "profile_retry_steps",
    "rber_per_retry_step",
    "final_step_error_sweep",
    "ecc_margin_sweep",
    "individual_parameter_sweep",
    "combined_parameter_sweep",
    "temperature_sweep",
    "build_rpt",
    "minimum_safe_tpre_sweep",
]
