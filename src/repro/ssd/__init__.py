"""Event-driven multi-queue SSD simulator (MQSim-like).

The paper evaluates PR2/AR2 by extending MQSim so that every simulated block
reproduces the read-retry behaviour of a real characterized block
(Section 7.1).  This subpackage implements the same methodology in Python:

* :mod:`repro.ssd.config` — SSD organization and simulation parameters
  (4 channels x 4 dies x 2 planes, 512-GiB class device by default, plus a
  scaled-down configuration for tests).
* :mod:`repro.ssd.engine` — the discrete-event core (event queue, clock).
* :mod:`repro.ssd.request` — host requests and flash transactions.
* :mod:`repro.ssd.ftl` — page-level address mapping, block allocation and
  wear-aware free-block selection.
* :mod:`repro.ssd.gc` — greedy garbage collection.
* :mod:`repro.ssd.dftl` — DFTL-class page-mapped FTL (``mapping="page"``):
  cached mapping table, on-flash translation pages and watermark-driven GC
  with real wear dynamics.
* :mod:`repro.ssd.write_buffer` — the controller's write cache.
* :mod:`repro.ssd.flash_backend` — per-block read-retry profiles derived from
  the calibrated error model (the "each simulated block behaves like a real
  characterized block" device model).
* :mod:`repro.ssd.retry_grid` — the vectorized, process-shared
  (condition x page type x corner) retry-step grid serving the read hot path.
* :mod:`repro.ssd.scheduler` — per-die transaction scheduling with read
  priority (out-of-order I/O scheduling) and program/erase suspension.
* :mod:`repro.ssd.controller` — the simulator that ties everything together.
* :mod:`repro.ssd.metrics` — response-time and utilization statistics.
"""

from repro.ssd.config import SsdConfig
from repro.ssd.dftl import DftlMapper
from repro.ssd.request import HostRequest, RequestKind
from repro.ssd.metrics import SimulationMetrics
from repro.ssd.controller import SsdSimulator, SimulationResult
from repro.ssd.retry_grid import RetryStepGrid

__all__ = [
    "SsdConfig",
    "DftlMapper",
    "HostRequest",
    "RequestKind",
    "SimulationMetrics",
    "SsdSimulator",
    "SimulationResult",
    "RetryStepGrid",
]
