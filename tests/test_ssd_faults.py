"""Fault injection: specs, plans, injector effects and session plumbing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.session import Simulation
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator
from repro.ssd.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    die_failure,
    grown_bad_blocks,
    plane_failure,
    read_disturb,
)
from repro.ssd.metrics import SimulationMetrics
from repro.workloads.scenarios import HotColdZone, make_pattern

PAGE_CONFIG = SsdConfig(channels=2, dies_per_channel=2, planes_per_die=1,
                        blocks_per_plane=24, pages_per_block=24,
                        write_buffer_pages=32, mapping="page",
                        cmt_capacity_entries=128,
                        translation_entries_per_page=64,
                        gc_free_block_threshold=3, gc_stop_free_blocks=5)


def _page_simulator(fill_fraction=0.70):
    simulator = SsdSimulator(PAGE_CONFIG)
    simulator.precondition(pe_cycles=1000, retention_months=6.0,
                           fill_fraction=fill_fraction)
    return simulator


def _pattern(n=300, seed=0):
    return make_pattern("hot_cold", num_requests=n, seed=seed,
                        mean_interarrival_us=400.0, footprint_fraction=0.5)


# -- FaultSpec / FaultPlan -----------------------------------------------------
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlin", at_us=0.0)

    def test_scope_requirements(self):
        with pytest.raises(ValueError, match="channel and die"):
            FaultSpec(kind="die_failure", at_us=0.0, latency_factor=2.0)
        with pytest.raises(ValueError, match="channel, die and plane"):
            FaultSpec(kind="plane_failure", at_us=0.0, channel=0,
                      latency_factor=2.0)

    def test_read_disturb_needs_duration_and_effect(self):
        with pytest.raises(ValueError, match="duration_us"):
            FaultSpec(kind="read_disturb", at_us=0.0, extra_retry_steps=2)
        with pytest.raises(ValueError, match="extra_retry_steps"):
            FaultSpec(kind="read_disturb", at_us=0.0, duration_us=10.0)

    def test_failures_need_an_effect(self):
        with pytest.raises(ValueError, match="have any effect"):
            FaultSpec(kind="die_failure", at_us=0.0, channel=0, die=0)

    @pytest.mark.parametrize("spec", [
        die_failure(at_us=5.0, channel=1, die=0, duration_us=100.0,
                    latency_factor=3.0),
        plane_failure(at_us=5.0, channel=0, die=1, plane=0,
                      extra_retry_steps=2, latency_factor=1.0),
        read_disturb(at_us=9.0, duration_us=50.0, blocks=3,
                     extra_retry_steps=4),
        grown_bad_blocks(at_us=12.0, blocks=5),
    ])
    def test_round_trip(self, spec):
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert spec.kind in FAULT_KINDS


class TestFaultPlan:
    def test_round_trip_and_label(self):
        plan = FaultPlan(faults=(grown_bad_blocks(at_us=1.0),
                                 read_disturb(at_us=2.0, duration_us=3.0)),
                         seed=7)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert plan.label == "grown_bad_blocks+read_disturb"
        assert len(plan) == 2 and bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan().label == "no-faults"

    def test_coerce(self):
        spec = grown_bad_blocks(at_us=1.0)
        assert FaultPlan.coerce(None) == FaultPlan()
        assert FaultPlan.coerce(spec).faults == (spec,)
        assert FaultPlan.coerce([spec], seed=9).seed == 9
        plan = FaultPlan(faults=(spec,), seed=3)
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(plan.to_dict()) == plan

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultPlan(faults=("die_failure",))


# -- injector effects on a live device -----------------------------------------
class TestFaultInjector:
    def test_die_failure_slows_reads_and_counts_them(self):
        baseline = _page_simulator()
        baseline.run(_pattern().iter_requests(PAGE_CONFIG))
        faulted = _page_simulator()
        faulted.install_faults(FaultPlan(faults=(
            die_failure(at_us=0.0, channel=0, die=0, latency_factor=8.0),)))
        faulted.run(_pattern().iter_requests(PAGE_CONFIG))
        assert faulted.metrics.fault_injections == 1
        assert faulted.metrics.faulted_reads > 0
        assert (faulted.metrics.mean_response_time_us("read")
                > baseline.metrics.mean_response_time_us("read"))

    def test_read_disturb_penalizes_hot_blocks(self):
        simulator = _page_simulator()
        simulator.install_faults(FaultPlan(faults=(
            read_disturb(at_us=30_000.0, duration_us=60_000.0, blocks=4,
                         extra_retry_steps=5),)))
        simulator.run(_pattern().iter_requests(PAGE_CONFIG))
        assert simulator.metrics.fault_injections == 1
        assert simulator.metrics.faulted_reads > 0

    def test_grown_bad_blocks_retire_and_remap(self):
        simulator = _page_simulator()
        simulator.install_faults(FaultPlan(faults=(
            grown_bad_blocks(at_us=60_000.0, blocks=2),), seed=0))
        simulator.run(_pattern().iter_requests(PAGE_CONFIG))
        assert simulator.metrics.grown_bad_blocks == 2
        assert simulator.metrics.fault_remapped_pages > 0
        simulator.dftl.check_consistency()

    def test_grown_bad_blocks_skip_on_starved_planes(self):
        # A 0.85 fill parks the free pool at the retirement guard; the
        # fault must degrade to a no-op rather than starve GC.
        simulator = _page_simulator(fill_fraction=0.85)
        simulator.install_faults(FaultPlan(faults=(
            grown_bad_blocks(at_us=60_000.0, blocks=2),), seed=0))
        simulator.run(_pattern().iter_requests(PAGE_CONFIG))
        assert simulator.metrics.grown_bad_blocks == 0
        simulator.dftl.check_consistency()

    def test_grown_bad_blocks_require_page_mapping(self):
        simulator = SsdSimulator(SsdConfig.tiny())
        with pytest.raises(ValueError, match="page-mapped"):
            simulator.install_faults(FaultPlan(faults=(
                grown_bad_blocks(at_us=0.0),)))

    def test_empty_plan_is_bitwise_identical_to_no_plan(self):
        plain = _page_simulator()
        plain.run(_pattern().iter_requests(PAGE_CONFIG))
        armed = _page_simulator()
        armed.install_faults(FaultPlan())
        armed.run(_pattern().iter_requests(PAGE_CONFIG))
        assert armed.metrics.summary() == plain.metrics.summary()
        assert armed.metrics.latency("all").to_dict() == (
            plain.metrics.latency("all").to_dict())

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           blocks=st.integers(min_value=1, max_value=4))
    def test_remap_never_loses_a_valid_page(self, seed, blocks):
        """No LPN mapped before a grown-bad retirement loses its data."""
        simulator = _page_simulator()
        dftl = simulator.dftl
        mapped_before = set(dftl._mapping)
        simulator.install_faults(FaultPlan(faults=(
            grown_bad_blocks(at_us=0.0, blocks=blocks),), seed=seed))
        simulator._fault_injector.poll(0.0)
        assert set(dftl._mapping) == mapped_before
        dftl.check_consistency()
        assert simulator.metrics.grown_bad_blocks == blocks


# -- metrics merge across shards -----------------------------------------------
class TestFaultCounterMerge:
    FAULT_COUNTERS = ("fault_injections", "faulted_reads",
                      "grown_bad_blocks", "fault_remapped_pages")

    def test_fault_counters_are_registered(self):
        for name in self.FAULT_COUNTERS:
            assert name in SimulationMetrics.COUNTER_FIELDS

    @settings(max_examples=20, deadline=None)
    @given(shards=st.lists(
        st.tuples(*(st.integers(min_value=0, max_value=1000)
                    for _ in range(4))),
        min_size=1, max_size=5))
    def test_merge_sums_fault_counters_across_shards(self, shards):
        merged = SimulationMetrics()
        for values in shards:
            shard = SimulationMetrics()
            for name, value in zip(self.FAULT_COUNTERS, values):
                setattr(shard, name, value)
            merged.merge(shard)
        for index, name in enumerate(self.FAULT_COUNTERS):
            assert getattr(merged, name) == sum(
                values[index] for values in shards)


# -- session and fleet plumbing ------------------------------------------------
class TestSessionFaults:
    def _base(self):
        return (Simulation(PAGE_CONFIG).policy("PnAR2")
                .condition(pec=1000, months=6.0, fill=0.70))

    def test_pattern_by_name_and_faults_run(self):
        run = (self._base()
               .pattern("hot_cold", num_requests=200, seed=1,
                        mean_interarrival_us=400.0)
               .faults(die_failure(at_us=0.0, channel=0, die=0,
                                   latency_factor=4.0),
                       grown_bad_blocks(at_us=40_000.0, blocks=1))
               .run())
        metrics = run.result.metrics
        assert metrics.fault_injections == 2
        assert metrics.grown_bad_blocks == 1

    def test_pattern_accepts_ready_source_but_not_with_kwargs(self):
        source = HotColdZone(num_requests=50)
        simulation = Simulation(PAGE_CONFIG).pattern(source)
        assert simulation._source is source
        with pytest.raises(ValueError):
            Simulation(PAGE_CONFIG).pattern(source, num_requests=10)

    def test_manifest_records_pattern_and_faults(self):
        plan = FaultPlan(faults=(grown_bad_blocks(at_us=1.0),), seed=2)
        manifest = (self._base()
                    .pattern("snake", num_requests=100)
                    .faults(plan)
                    .manifest())
        assert manifest["workload"]["kind"] == "snake"
        assert manifest["faults"] == plan.to_dict()
        assert manifest["condition"]["fill_fraction"] == 0.70

    def test_zero_fault_scenario_is_bitwise_identical_to_plain(self):
        pattern = _pattern(n=200)
        plain = self._base().workload(pattern).run()
        armed = self._base().workload(pattern).faults(FaultPlan()).run()
        assert (armed.result.metrics.summary()
                == plain.result.metrics.summary())
        assert (armed.result.metrics.latency("all").to_dict()
                == plain.result.metrics.latency("all").to_dict())

    def test_faults_with_slo_search_rejected(self):
        simulation = (self._base()
                      .workload("usr_1", n=50)
                      .faults(grown_bad_blocks(at_us=1.0))
                      .slo(p99_us=5_000.0))
        with pytest.raises(ValueError, match="slo"):
            simulation.run()

    def test_fleet_carries_fault_counters_and_stays_deterministic(self):
        def build(processes):
            return (Simulation(PAGE_CONFIG).policy("PnAR2")
                    .condition(pec=1000, months=6.0, fill=0.70)
                    .pattern("hot_cold", num_requests=200, seed=1,
                             mean_interarrival_us=400.0)
                    .faults(die_failure(at_us=0.0, channel=0, die=0,
                                        latency_factor=4.0))
                    .fleet(2, processes=processes)
                    .run())
        serial = build(1)
        merged = serial.result.merged
        assert merged.fault_injections == 2  # one per device
        assert merged.faulted_reads > 0
        assert serial.manifest["faults"]["faults"][0]["kind"] == "die_failure"
        parallel = build(2)
        assert (parallel.result.merged.latency("all").to_dict()
                == merged.latency("all").to_dict())
        assert parallel.result.merged.faulted_reads == merged.faulted_reads
