"""Tests for the simulation metrics."""

import pytest

from repro.ssd.metrics import (
    SimulationMetrics,
    improvement_over,
    normalized_response_times,
)


def make_metrics(read_times, write_times=()):
    metrics = SimulationMetrics()
    for value in read_times:
        metrics.record_read(value, retry_steps=2)
    for value in write_times:
        metrics.record_write(value)
    return metrics


class TestRecording:
    def test_mean_and_percentiles(self):
        metrics = make_metrics([100.0, 200.0, 300.0], [50.0])
        assert metrics.mean_response_time_us("read") == pytest.approx(200.0)
        assert metrics.mean_response_time_us("write") == pytest.approx(50.0)
        assert metrics.mean_response_time_us("all") == pytest.approx(162.5)
        assert metrics.max_response_time_us() == 300.0
        assert metrics.percentile_response_time_us(50.0, "read") == 200.0

    def test_retry_steps_tracking(self):
        metrics = make_metrics([10.0, 20.0])
        assert metrics.mean_retry_steps() == 2.0

    def test_counts(self):
        metrics = make_metrics([1.0, 2.0], [3.0])
        assert metrics.host_reads == 2
        assert metrics.host_writes == 1

    def test_empty_metrics_are_zero(self):
        metrics = SimulationMetrics()
        assert metrics.mean_response_time_us() == 0.0
        assert metrics.percentile_response_time_us(99.0) == 0.0
        assert metrics.mean_retry_steps() == 0.0
        assert metrics.die_utilization() == 0.0

    def test_negative_values_rejected(self):
        metrics = SimulationMetrics()
        with pytest.raises(ValueError):
            metrics.record_read(-1.0, 0)
        with pytest.raises(ValueError):
            metrics.record_write(-1.0)

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            make_metrics([1.0]).mean_response_time_us("bogus")

    def test_die_utilization(self):
        metrics = make_metrics([1.0])
        metrics.simulated_time_us = 1000.0
        metrics.record_die_busy((0, 0), 500.0)
        metrics.record_die_busy((0, 1), 250.0)
        assert metrics.die_utilization() == pytest.approx(0.375)

    def test_summary_keys(self):
        summary = make_metrics([1.0]).summary()
        assert "mean_response_us" in summary
        assert "mean_retry_steps" in summary


class TestNormalization:
    def test_normalized_response_times(self):
        results = {"Baseline": make_metrics([200.0]),
                   "PnAR2": make_metrics([100.0])}
        normalized = normalized_response_times(results)
        assert normalized["Baseline"] == pytest.approx(1.0)
        assert normalized["PnAR2"] == pytest.approx(0.5)

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalized_response_times({"PnAR2": make_metrics([100.0])})

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized_response_times({"Baseline": SimulationMetrics()})

    def test_improvement_over(self):
        results = {"PSO": make_metrics([200.0]),
                   "PSO+PnAR2": make_metrics([150.0])}
        assert improvement_over(results, "PSO+PnAR2", "PSO") == pytest.approx(0.25)
