"""Tests for the NAND organization and address arithmetic."""

import pytest

from repro.nand.geometry import ChipGeometry, PageType


class TestPageType:
    def test_n_sense_matches_paper_footnote(self):
        # Footnote 14: N_SENSE = <2, 3, 2> for <LSB, CSB, MSB>.
        assert PageType.LSB.n_sense == 2
        assert PageType.CSB.n_sense == 3
        assert PageType.MSB.n_sense == 2

    def test_sensed_boundaries_are_disjoint_and_cover_all(self):
        all_boundaries = []
        for page_type in PageType:
            all_boundaries.extend(page_type.sensed_boundaries)
        assert sorted(all_boundaries) == list(range(7))

    def test_boundary_count_matches_n_sense(self):
        for page_type in PageType:
            assert len(page_type.sensed_boundaries) == page_type.n_sense


class TestChipGeometry:
    def test_default_matches_paper_simulated_chip(self):
        geometry = ChipGeometry()
        assert geometry.dies_per_chip == 4
        assert geometry.planes_per_die == 2
        assert geometry.blocks_per_plane == 1888
        assert geometry.pages_per_block == 576
        assert geometry.page_size_bytes == 16 * 1024

    def test_pages_per_block_is_three_per_wordline(self):
        geometry = ChipGeometry.small()
        assert geometry.pages_per_block == geometry.wordlines_per_block * 3

    def test_capacity_is_consistent(self):
        geometry = ChipGeometry.small()
        assert geometry.capacity_bytes == (
            geometry.pages_per_chip * geometry.page_size_bytes)

    def test_page_type_cycles_through_wordline(self):
        geometry = ChipGeometry.small()
        assert geometry.page_type_of(0) is PageType.LSB
        assert geometry.page_type_of(1) is PageType.CSB
        assert geometry.page_type_of(2) is PageType.MSB
        assert geometry.page_type_of(3) is PageType.LSB

    def test_wordline_of(self):
        geometry = ChipGeometry.small()
        assert geometry.wordline_of(0) == 0
        assert geometry.wordline_of(2) == 0
        assert geometry.wordline_of(3) == 1

    def test_make_address_validates_ranges(self):
        geometry = ChipGeometry.small()
        with pytest.raises(ValueError):
            geometry.make_address(geometry.dies_per_chip, 0, 0, 0)
        with pytest.raises(ValueError):
            geometry.make_address(0, 0, geometry.blocks_per_plane, 0)
        with pytest.raises(ValueError):
            geometry.make_address(0, 0, 0, geometry.pages_per_block)

    def test_flat_index_roundtrip(self):
        geometry = ChipGeometry.small()
        for index in (0, 1, 57, geometry.pages_per_chip - 1):
            address = geometry.address_from_flat(index)
            assert geometry.flat_page_index(address) == index

    def test_flat_block_index_unique(self):
        geometry = ChipGeometry.small()
        indexes = {geometry.flat_block_index(die, plane, block)
                   for die, plane, block in geometry.iter_block_addresses()}
        assert len(indexes) == geometry.blocks_per_chip

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ChipGeometry(dies_per_chip=0)
        with pytest.raises(ValueError):
            ChipGeometry(page_size_bytes=1000, codeword_data_bytes=1024)

    def test_codewords_per_page(self):
        assert ChipGeometry().codewords_per_page == 16


class TestPageAddress:
    def test_same_wordline(self):
        geometry = ChipGeometry.small()
        first = geometry.make_address(0, 0, 3, 0)
        second = geometry.make_address(0, 0, 3, 2)
        third = geometry.make_address(0, 0, 3, 3)
        assert first.same_wordline(second)
        assert not first.same_wordline(third)

    def test_block_key(self):
        geometry = ChipGeometry.small()
        address = geometry.make_address(1, 0, 5, 7)
        assert address.block_key() == (1, 0, 5)
