"""The fluent simulation builder — the canonical way to run the simulator.

>>> from repro.sim import Simulation
>>> result = (Simulation()
...           .policy("PnAR2")
...           .workload("ycsb-a", n=800)
...           .condition(pec=2000, months=6)
...           .run())
>>> result.mean_response_us("PnAR2")  # doctest: +SKIP

A :class:`Simulation` collects *what* to run (policies, a workload spec, an
explicit request list or a stream factory, an operating condition) and
``run()`` executes each policy against an identical request stream on a
freshly preconditioned SSD, returning a :class:`RunResult` that carries the
per-policy :class:`~repro.ssd.controller.SimulationResult` objects plus a
JSON-able manifest describing the run exactly.  Workload specs and stream
factories feed the simulator's bounded-lookahead pump lazily, so session
runs never materialize the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.registry import default_registry
from repro.sim.spec import Condition, WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, SsdSimulator
from repro.ssd.metrics import normalized_response_times
from repro.ssd.request import HostRequest
from repro.workloads.synthetic import WorkloadShape


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulation.run` call."""

    config: SsdConfig
    condition: Condition
    results: Dict[str, SimulationResult]
    workload: Optional[WorkloadSpec] = None
    manifest: dict = field(default_factory=dict)

    # -- access ---------------------------------------------------------------
    @property
    def policies(self) -> List[str]:
        return list(self.results)

    def __getitem__(self, policy: str) -> SimulationResult:
        return self.results[policy]

    def __iter__(self):
        return iter(self.results.items())

    @property
    def result(self) -> SimulationResult:
        """The single result of a one-policy run."""
        if len(self.results) != 1:
            raise ValueError(
                f"run holds {len(self.results)} policies; index by name")
        return next(iter(self.results.values()))

    # -- views ----------------------------------------------------------------
    def mean_response_us(self, policy: Optional[str] = None) -> float:
        result = self.result if policy is None else self.results[policy]
        return result.mean_response_time_us

    def normalized(self, baseline: str = "Baseline") -> Dict[str, float]:
        """Mean response times normalized to ``baseline`` (Figure 14 y-axis)."""
        return normalized_response_times(
            {name: result.metrics for name, result in self.results.items()},
            baseline=baseline)

    def summary_rows(self) -> List[dict]:
        rows = []
        for name, result in self.results.items():
            row = {"policy": name,
                   "pe_cycles": self.condition.pe_cycles,
                   "retention_months": self.condition.retention_months}
            if self.workload is not None:
                row["workload"] = self.workload.label
            row.update(result.metrics.summary())
            rows.append(row)
        return rows


class Simulation:
    """Fluent builder for one simulator run (one cell, one or more policies)."""

    def __init__(self, config: Optional[SsdConfig] = None):
        self._config = config or SsdConfig.scaled()
        self._policies: List[str] = []
        self._workload: Optional[WorkloadSpec] = None
        self._requests: Optional[List[HostRequest]] = None
        self._stream: Optional[Callable[[], Iterable[HostRequest]]] = None
        self._condition = Condition()
        self._rpt: Optional[ReadTimingParameterTable] = None
        self._lookahead: Optional[int] = None
        self._registry = default_registry()

    # -- builder steps --------------------------------------------------------
    def policy(self, policy) -> "Simulation":
        """Add one policy — a registry name or a ready policy instance."""
        if isinstance(policy, str):
            self._policies.append(self._registry.canonical_name(policy))
        else:
            self._policies.append(policy)
        return self

    def policies(self, *policies) -> "Simulation":
        """Add several policies at once (varargs or one iterable)."""
        if len(policies) == 1 and not isinstance(policies[0], str):
            try:
                policies = tuple(policies[0])
            except TypeError:
                pass
        for policy in policies:
            self.policy(policy)
        return self

    def workload(self, workload: Union[str, WorkloadSpec, WorkloadShape],
                 n: Optional[int] = None, seed: Optional[int] = None,
                 mean_interarrival_us: Optional[float] = None,
                 footprint_fraction: Optional[float] = None) -> "Simulation":
        """Select the request stream: a Table 2 name, spec, or synthetic shape."""
        self._workload = WorkloadSpec.coerce(
            workload, num_requests=n, seed=seed,
            mean_interarrival_us=mean_interarrival_us,
            footprint_fraction=footprint_fraction)
        self._requests = None
        self._stream = None
        return self

    def synthetic(self, shape: Optional[WorkloadShape] = None,
                  n: int = 500, seed: int = 0,
                  **shape_kwargs) -> "Simulation":
        """Use a parametric synthetic stream (``shape_kwargs`` build the shape)."""
        if shape is None:
            shape = WorkloadShape(**shape_kwargs)
        elif shape_kwargs:
            raise ValueError("pass either a shape or shape keyword arguments")
        return self.workload(WorkloadSpec(shape=shape, num_requests=n,
                                          seed=seed))

    def requests(self, requests: Sequence[HostRequest]) -> "Simulation":
        """Use an explicit, pre-generated request stream (e.g. a real trace).

        The simulator does not mutate host requests, so the caller's objects
        are replayed as-is for every policy — no defensive copies.
        """
        self._requests = list(requests)
        self._workload = None
        self._stream = None
        return self

    def stream(self, factory: Callable[[], Iterable[HostRequest]]
               ) -> "Simulation":
        """Use a zero-argument factory yielding a fresh request stream.

        The fully streaming option for large traces: the factory is called
        once per policy and its iterable is fed straight into the
        simulator's bounded-lookahead pump, so the trace is never
        materialized (e.g. ``lambda: iter_records_to_requests(
        iter_msrc_csv(path), ...)``).
        """
        if not callable(factory):
            raise TypeError("stream() expects a zero-argument callable "
                            "returning an iterable of HostRequest")
        self._stream = factory
        self._requests = None
        self._workload = None
        return self

    def condition(self, condition: Union[Condition, tuple, None] = None, *,
                  pec: int = 0, months: float = 0.0) -> "Simulation":
        """Set the preconditioned operating condition."""
        if condition is not None:
            self._condition = Condition.coerce(condition)
        else:
            self._condition = Condition(pe_cycles=pec, retention_months=months)
        return self

    def rpt(self, rpt: ReadTimingParameterTable) -> "Simulation":
        """Share a pre-built Read-timing Parameter Table across the run."""
        self._rpt = rpt
        return self

    def lookahead(self, requests: int) -> "Simulation":
        """Size the admission pump's lookahead window (default 64 requests).

        Streamed requests may arrive out of order by up to the window;
        raise it when replaying real traces with local timestamp
        misordering (e.g. interleaved multi-disk captures).
        """
        if requests < 1:
            raise ValueError("lookahead must be at least 1")
        self._lookahead = requests
        return self

    # -- execution ------------------------------------------------------------
    def manifest(self) -> dict:
        """JSON-able description of the run (config, workload, condition)."""
        manifest = {
            "config": self._config.to_dict(),
            "condition": self._condition.to_dict(),
            "policies": [policy if isinstance(policy, str)
                         else getattr(policy, "name", repr(policy))
                         for policy in self._policies],
        }
        if self._workload is not None:
            manifest["workload"] = self._workload.to_dict()
        elif self._requests is not None:
            manifest["workload"] = {"explicit_requests": len(self._requests)}
        elif self._stream is not None:
            manifest["workload"] = {
                "stream": getattr(self._stream, "__name__", "<stream>")}
        return manifest

    def _policy_stream(self) -> Iterable[HostRequest]:
        """A fresh request stream for one policy's run.

        Workload specs stream straight from their generator and stream
        factories from their callable; explicit request lists are replayed
        as-is (the simulator does not mutate them), so no copies are made
        on any path.
        """
        if self._workload is not None:
            return self._workload.iter_requests(self._config)
        if self._requests is not None:
            return self._requests
        if self._stream is not None:
            return self._stream()
        raise ValueError("no workload configured; call .workload(), "
                         ".synthetic(), .requests() or .stream() first")

    def run(self) -> RunResult:
        """Execute every configured policy and collect the results."""
        if not self._policies:
            raise ValueError("no policy configured; call .policy(name) first")
        shared_rpt = self._rpt or ReadTimingParameterTable.default()
        results: Dict[str, SimulationResult] = {}
        previous_stream = None
        for entry in self._policies:
            if isinstance(entry, str):
                policy = self._registry.create(
                    entry, timing=self._config.timing, rpt=shared_rpt)
            else:
                policy = entry
            simulator = SsdSimulator(config=self._config, policy=policy,
                                     rpt=shared_rpt)
            simulator.precondition(
                pe_cycles=self._condition.pe_cycles,
                retention_months=self._condition.retention_months)
            stream = self._policy_stream()
            if (self._stream is not None and stream is previous_stream
                    and hasattr(stream, "__next__")):
                # The factory handed back the very same iterator: the first
                # policy consumed it, so every later policy would silently
                # simulate zero requests and win every comparison.
                raise ValueError(
                    "stream() factory returned the same exhausted iterator "
                    "for a second policy; it must build a fresh iterable "
                    "per call")
            previous_stream = stream
            if self._lookahead is not None:
                result = simulator.run(stream, lookahead=self._lookahead)
            else:
                result = simulator.run(stream)
            results[result.policy_name] = result
        if self._stream is not None and len(results) > 1:
            # Every policy replays the same stream, so the completed-request
            # counts must agree; a mismatch means the factory shared one
            # underlying iterator (however re-wrapped) and later policies
            # saw a drained stream.
            counts = {name: result.metrics.host_reads
                      + result.metrics.host_writes
                      for name, result in results.items()}
            if len(set(counts.values())) > 1:
                raise ValueError(
                    "stream() factory fed different request counts to the "
                    f"policies ({counts}); it must build an independent "
                    "iterable per call, not re-wrap one shared iterator")
        return RunResult(config=self._config, condition=self._condition,
                         results=results, workload=self._workload,
                         manifest=self.manifest())
