"""Read-retry characteristics of modern NAND flash memory (Figure 5).

Figure 5 of the paper plots, for each (P/E-cycle count, retention age) pair,
the probability that a read needs a given number of retry steps, together
with the minimum / average / maximum across more than 10^7 tested pages.
The headline observations reproduced here:

* a fresh page (0 P/E cycles, 0 retention) needs no read-retry;
* 54.4% of reads need at least seven retry steps at a 6-month retention age
  even with no P/E cycling;
* every read needs at least eight retry steps at (1K P/E cycles, 3 months);
* the average reaches about 19.9 retry steps at (2K P/E cycles, 12 months),
  a 21x increase of the page-read latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.characterization.platform import VirtualTestPlatform
from repro.errors.condition import (
    CHARACTERIZATION_PE_CYCLES,
    CHARACTERIZATION_RETENTION_MONTHS,
    OperatingCondition,
)


@dataclass
class RetryProfile:
    """Distribution of retry-step counts for one operating condition."""

    condition: OperatingCondition
    counts: List[int] = field(default_factory=list)
    failures: int = 0

    @property
    def num_reads(self) -> int:
        return len(self.counts) + self.failures

    @property
    def min_steps(self) -> int:
        return min(self.counts) if self.counts else 0

    @property
    def max_steps(self) -> int:
        return max(self.counts) if self.counts else 0

    @property
    def mean_steps(self) -> float:
        return float(np.mean(self.counts)) if self.counts else 0.0

    def fraction_at_least(self, steps: int) -> float:
        """Fraction of reads needing at least ``steps`` retry steps."""
        if not self.num_reads:
            return 0.0
        qualifying = sum(1 for count in self.counts if count >= steps)
        qualifying += self.failures  # failed reads exhausted every step
        return qualifying / self.num_reads

    def probability_of(self, steps: int) -> float:
        """Probability that a read needs exactly ``steps`` retry steps."""
        if not self.num_reads:
            return 0.0
        return sum(1 for count in self.counts if count == steps) / self.num_reads

    def histogram(self, max_steps: int = None) -> Dict[int, float]:
        """Probability mass function of the retry-step count."""
        limit = max_steps if max_steps is not None else self.max_steps
        return {steps: self.probability_of(steps) for steps in range(limit + 1)}

    def read_latency_amplification(self) -> float:
        """Average ``tREAD`` amplification caused by read-retry.

        With the paper's latency equation (2)/(3) every retry step re-pays
        the full ``tR + tDMA + tECC``, so the amplification is simply
        ``1 + mean retry steps`` (about 21x at (2K, 12 months)).
        """
        return 1.0 + self.mean_steps


def profile_retry_steps(
        platform: VirtualTestPlatform = None,
        pe_cycles: Sequence[int] = CHARACTERIZATION_PE_CYCLES,
        retention_months: Sequence[float] = CHARACTERIZATION_RETENTION_MONTHS,
        temperature_c: float = 30.0,
) -> Dict[Tuple[int, float], RetryProfile]:
    """Measure retry-step distributions over the Figure 5 grid.

    :return: mapping from ``(pe_cycles, retention_months)`` to the profile.
    """
    platform = platform or VirtualTestPlatform()
    profiles: Dict[Tuple[int, float], RetryProfile] = {}
    for pec in pe_cycles:
        for months in retention_months:
            condition = OperatingCondition(pe_cycles=pec,
                                           retention_months=months,
                                           temperature_c=temperature_c)
            profile = RetryProfile(condition=condition)
            for steps in platform.retry_step_counts(condition):
                if steps is None:
                    profile.failures += 1
                else:
                    profile.counts.append(steps)
            profiles[(pec, months)] = profile
    return profiles


def summarize_profiles(profiles: Dict[Tuple[int, float], RetryProfile]
                       ) -> List[dict]:
    """Flatten profiles into printable rows (one per grid cell)."""
    rows = []
    for (pec, months), profile in sorted(profiles.items()):
        rows.append({
            "pe_cycles": pec,
            "retention_months": months,
            "min": profile.min_steps,
            "avg": round(profile.mean_steps, 2),
            "max": profile.max_steps,
            "frac_ge_7": round(profile.fraction_at_least(7), 3),
            "latency_amplification": round(profile.read_latency_amplification(), 1),
            "reads": profile.num_reads,
        })
    return rows
