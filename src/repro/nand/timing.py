"""NAND flash timing parameters.

The read latency of a NAND flash chip is determined by the three phases of
the sensing mechanism described in Section 2.2 of the paper — precharge,
evaluation and discharge — repeated ``N_SENSE`` times per page read
(Equation (1)):

``tR = N_SENSE * (tPRE + tEVAL + tDISCH)``

The characterized chips use ``<tPRE, tEVAL, tDISCH> = <24 us, 5 us, 10 us>``
(Section 4), and the simulated SSD uses the parameters of Table 1.  AR2
reduces ``tPRE`` (and optionally the other phase timings) through the
SET FEATURE command; all latencies in this module are expressed in
microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.nand.geometry import PageType

#: Default phase timings of the characterized chips, in microseconds.
DEFAULT_TPRE_US = 24.0
DEFAULT_TEVAL_US = 5.0
DEFAULT_TDISCH_US = 10.0


@dataclass(frozen=True)
class ReadTimingParameters:
    """The three read-phase timing parameters (in microseconds).

    Instances are immutable; derive adjusted parameters with
    :meth:`with_reduction`, which is how AR2 expresses "reduce tPRE by 40%".
    """

    t_pre_us: float = DEFAULT_TPRE_US
    t_eval_us: float = DEFAULT_TEVAL_US
    t_disch_us: float = DEFAULT_TDISCH_US

    def __post_init__(self) -> None:
        for name in ("t_pre_us", "t_eval_us", "t_disch_us"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def sense_cycle_us(self) -> float:
        """Duration of one precharge/evaluation/discharge cycle."""
        return self.t_pre_us + self.t_eval_us + self.t_disch_us

    def sensing_latency_us(self, page_type: PageType) -> float:
        """Chip-level read latency ``tR`` for a page type (Equation (1))."""
        return page_type.n_sense * self.sense_cycle_us

    def average_sensing_latency_us(self) -> float:
        """``tR`` averaged over the three TLC page types (~90 us by default)."""
        return sum(self.sensing_latency_us(pt) for pt in PageType) / len(PageType)

    # -- derived/adjusted parameter sets ------------------------------------
    def with_reduction(self, pre: float = 0.0, eval_: float = 0.0,
                       disch: float = 0.0) -> "ReadTimingParameters":
        """Return a copy with each phase reduced by the given fraction.

        :param pre: fractional reduction of ``tPRE`` (0.4 means "40% shorter").
        :param eval_: fractional reduction of ``tEVAL``.
        :param disch: fractional reduction of ``tDISCH``.
        """
        for name, fraction in (("pre", pre), ("eval_", eval_), ("disch", disch)):
            if not 0.0 <= fraction < 1.0:
                raise ValueError(
                    f"{name} reduction must be in [0, 1), got {fraction}")
        return ReadTimingParameters(
            t_pre_us=self.t_pre_us * (1.0 - pre),
            t_eval_us=self.t_eval_us * (1.0 - eval_),
            t_disch_us=self.t_disch_us * (1.0 - disch),
        )

    def reduction_from(self, default: "ReadTimingParameters") -> dict:
        """Express this parameter set as fractional reductions of ``default``."""
        return {
            "pre": 1.0 - self.t_pre_us / default.t_pre_us,
            "eval": 1.0 - self.t_eval_us / default.t_eval_us,
            "disch": 1.0 - self.t_disch_us / default.t_disch_us,
        }

    def speedup_over(self, default: "ReadTimingParameters") -> float:
        """Ratio of the default sense-cycle time to this one (>= 1 if faster)."""
        return default.sense_cycle_us / self.sense_cycle_us

    # -- manifest round-trip --------------------------------------------------
    def to_dict(self) -> dict:
        return {"t_pre_us": self.t_pre_us, "t_eval_us": self.t_eval_us,
                "t_disch_us": self.t_disch_us}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReadTimingParameters":
        return cls(**payload)


@dataclass(frozen=True)
class TimingParameters:
    """Full chip timing parameters used by the SSD simulator (Table 1).

    All values are microseconds.  ``read`` holds the three read-phase
    parameters; the remaining fields cover programming, erasing, the
    SET FEATURE command used by AR2 and the RESET command used by PR2, plus
    the per-page DMA transfer time and per-codeword ECC decoding time of the
    simulated controller (Section 7.1).
    """

    read: ReadTimingParameters = ReadTimingParameters()
    t_prog_us: float = 700.0
    t_bers_us: float = 5000.0
    t_set_feature_us: float = 1.0
    t_reset_read_us: float = 5.0
    t_dma_page_us: float = 16.0
    t_ecc_us: float = 20.0
    program_suspend_us: float = 5.0
    erase_suspend_us: float = 20.0

    def __post_init__(self) -> None:
        for name in ("t_prog_us", "t_bers_us", "t_set_feature_us",
                     "t_reset_read_us", "t_dma_page_us", "t_ecc_us",
                     "program_suspend_us", "erase_suspend_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- convenience accessors (paper notation) ------------------------------
    @property
    def t_r_avg_us(self) -> float:
        """Average page-sensing latency ``tR`` (about 90 us, Table 1)."""
        return self.read.average_sensing_latency_us()

    def t_r_us(self, page_type: PageType,
               read_timing: ReadTimingParameters = None) -> float:
        """Page-sensing latency for a page type with optional override timing."""
        timing = read_timing if read_timing is not None else self.read
        return timing.sensing_latency_us(page_type)

    def t_transfer_us(self) -> float:
        """Page data transfer latency ``tDMA`` (chip to controller)."""
        return self.t_dma_page_us

    def with_read(self, read: ReadTimingParameters) -> "TimingParameters":
        """Return a copy with a different set of read-phase parameters."""
        return replace(self, read=read)

    # -- manifest round-trip --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "read": self.read.to_dict(),
            "t_prog_us": self.t_prog_us,
            "t_bers_us": self.t_bers_us,
            "t_set_feature_us": self.t_set_feature_us,
            "t_reset_read_us": self.t_reset_read_us,
            "t_dma_page_us": self.t_dma_page_us,
            "t_ecc_us": self.t_ecc_us,
            "program_suspend_us": self.program_suspend_us,
            "erase_suspend_us": self.erase_suspend_us,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimingParameters":
        payload = dict(payload)
        read = payload.pop("read", None)
        if isinstance(read, dict):
            read = ReadTimingParameters.from_dict(read)
        return cls(read=read or ReadTimingParameters(), **payload)

    def table1(self) -> dict:
        """Render the parameters as the rows of Table 1 of the paper."""
        return {
            "tR (avg.)": round(self.t_r_avg_us, 1),
            "tPRE": self.read.t_pre_us,
            "tEVAL": self.read.t_eval_us,
            "tDISCH": self.read.t_disch_us,
            "tPROG": self.t_prog_us,
            "tBERS": self.t_bers_us,
            "tSET": self.t_set_feature_us,
            "tRST": self.t_reset_read_us,
            "tDMA": self.t_dma_page_us,
            "tECC": self.t_ecc_us,
        }


#: The timing parameters of the simulated high-end SSD (Table 1).
TABLE1_TIMING = TimingParameters()
