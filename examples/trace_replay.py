#!/usr/bin/env python3
"""Replay an MSRC-format block trace on the simulated SSD.

Demonstrates the trace substrate: the example first synthesizes a trace file
in the MSRC CSV layout (the same layout the public enterprise traces use), so
the script is self-contained, then parses it back, converts it to
page-granularity host requests and replays it under two SSD configurations.
Point ``--trace`` at a real MSRC CSV file to replay it instead.

Usage::

    python examples/trace_replay.py [--trace FILE] [--requests N]
"""

import argparse
import os
import tempfile

from repro.sim import Simulation
from repro.ssd.config import SsdConfig
from repro.workloads import (
    generate_workload,
    read_msrc_csv,
    records_to_requests,
    write_msrc_csv,
)
from repro.workloads.trace import TraceRecord


def synthesize_trace(path: str, num_requests: int, page_size: int) -> None:
    """Write a prn_1-like request stream as an MSRC CSV file."""
    requests = generate_workload("prn_1", num_requests,
                                 footprint_pages=8192, seed=11)
    records = [TraceRecord(timestamp_us=request.arrival_us,
                           is_read=request.is_read,
                           offset_bytes=request.start_lpn * page_size,
                           size_bytes=request.page_count * page_size,
                           hostname="prn", disk_number=1)
               for request in requests]
    write_msrc_csv(records, path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", type=str, default=None,
                        help="MSRC CSV trace to replay (synthesized if omitted)")
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--pe-cycles", type=int, default=1000)
    parser.add_argument("--retention-months", type=float, default=6.0)
    args = parser.parse_args()

    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)
    page_size = config.page_size_kib * 1024

    trace_path = args.trace
    synthesized = False
    if trace_path is None:
        handle, trace_path = tempfile.mkstemp(suffix=".csv", prefix="msrc_")
        os.close(handle)
        synthesize_trace(trace_path, args.requests, page_size)
        synthesized = True
        print(f"Synthesized an MSRC-format trace at {trace_path}")

    records = read_msrc_csv(trace_path, max_records=args.requests)
    print(f"Parsed {len(records)} records "
          f"({sum(r.is_read for r in records)} reads)")

    requests = records_to_requests(records, page_size_bytes=page_size,
                                   logical_pages=config.logical_pages)
    run = (Simulation(config)
           .policies("Baseline", "PnAR2")
           .requests(requests)
           .condition(pec=args.pe_cycles, months=args.retention_months)
           .run())
    for policy, result in run:
        print(f"  {policy:<9} mean response "
              f"{result.metrics.mean_response_time_us():8.1f} us | "
              f"p99 {result.metrics.percentile_response_time_us(99):8.1f} us | "
              f"mean retry steps {result.metrics.mean_retry_steps():.1f}")

    if synthesized:
        os.unlink(trace_path)


if __name__ == "__main__":
    main()
