"""Declarative experiment registry: named experiments with typed parameters.

This module is the experiment-layer counterpart of the policy registry in
:mod:`repro.sim.registry`.  Every ``fig*``/``table*``/ablation harness
registers its ``run()`` function with :func:`register_experiment`, declaring

* the **paper artifact** it reproduces ("Figure 14", "Table 2", ...),
* **tags** so callers can address whole suites (``paper``, ``system``,
  ``characterization``, ``ablation``), and
* a :class:`ParamSpec` — the typed parameters ``run()`` accepts, with their
  full defaults plus named **profiles** (``full``/``fast``/``smoke``) that
  replace the old hardcoded ``_FAST_OVERRIDES`` dict in the runner.

The registry resolves a (profile, overrides) pair into the exact keyword
arguments for ``run()``, validating override names up front so a typo
produces a helpful error instead of an opaque ``TypeError`` from deep
inside the harness.  The resolved parameters are also what the
:class:`~repro.experiments.store.ArtifactStore` content-addresses results
by.

>>> from repro.experiments.api import default_experiment_registry
>>> registry = default_experiment_registry()
>>> registry.names(tag="system")  # doctest: +NORMALIZE_WHITESPACE
('fig14', 'fig15', 'tail_latency', 'fleet_capacity', 'wear_dynamics',
 'adversarial_scenarios', 'ablation_rpt', 'ablation_scheduling',
 'ablation_extensions')
>>> registry.entry("fig05").params.resolve(profile="fast")["num_chips"]
4
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

#: The named parameter profiles every experiment understands.  ``full`` is
#: the declared defaults (paper-scale, minutes to hours), ``fast`` completes
#: in seconds-to-a-minute per experiment, ``smoke`` is CI-sized.
PROFILES = ("full", "fast", "smoke")

_MISSING = object()


class ExperimentLookupError(ValueError):
    """Raised when an experiment name is not in the registry."""


class DuplicateExperimentError(ValueError):
    """Raised when an experiment name is registered twice without overwrite."""


class UnknownProfileError(ValueError):
    """Raised when a profile name is not one of :data:`PROFILES`."""


class ParameterValueError(ValueError):
    """Raised when a CLI override value cannot be parsed as the declared type."""


class UnknownParameterError(ValueError):
    """Raised when an override names a parameter the experiment lacks."""

    def __init__(self, experiment: str, unknown: Iterable[str],
                 valid: Iterable[str]):
        self.experiment = experiment
        self.unknown = tuple(sorted(unknown))
        self.valid = tuple(valid)
        names = ", ".join(repr(name) for name in self.unknown)
        valid_text = (", ".join(self.valid)
                      if self.valid else "(none — this experiment takes "
                      "no parameters)")
        super().__init__(
            f"unknown parameter(s) {names} for experiment "
            f"{experiment!r}; valid parameters: {valid_text}")


def _coerce_like(template, raw: str):
    """Parse a CLI string into the type of ``template`` (a default value)."""
    if isinstance(template, bool):
        lowered = raw.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"expected a boolean, got {raw!r}")
    if isinstance(template, int):
        return int(raw)
    if isinstance(template, float):
        return float(raw)
    if isinstance(template, str):
        return raw
    # Sequence-valued (or untyped/None-default) parameters: accept JSON
    # ("[[1000, 6.0]]") with a comma-list fallback ("usr_1,stg_0" — or a
    # single "usr_1", which still means a one-element sequence).
    try:
        parsed = json.loads(raw)
    except ValueError:
        parts = tuple(part.strip() for part in raw.split(",") if part.strip())
        if isinstance(template, (list, tuple)):
            element = template[0] if template else None
            if element is not None and not isinstance(element, str):
                raise ValueError(
                    f"{raw!r} is not valid JSON; a sequence of "
                    f"{type(element).__name__}s must be written as JSON, "
                    f"e.g. '[[1000, 6.0]]'")
            return parts
        return parts if len(parts) > 1 else raw
    return _tuplify(parsed)


def _tuplify(value):
    """Lists (from JSON) to tuples, recursively — run() signatures and the
    cache key both treat sequences as immutable."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter.

    :param name: keyword name in the experiment's ``run()`` signature.
    :param default: the ``full``-profile value.
    :param help: one-line description for ``repro-experiment list``.
    :param profiles: per-profile values; profiles not listed here fall back
        to ``default``.  Use the :func:`param` helper to write these as
        keyword arguments (``param("num_chips", 12, fast=4, smoke=2)``).
    :param cache_relevant: whether the parameter affects the result rows.
        Execution-only knobs (worker-process counts and the like) declare
        ``cache_relevant=False`` so they are excluded from the artifact
        store's content address — runs differing only in such knobs are
        guaranteed bitwise identical and share one cached artifact.
    """

    name: str
    default: object
    help: str = ""
    profiles: Mapping[str, object] = field(default_factory=dict)
    cache_relevant: bool = True

    def __post_init__(self) -> None:
        unknown = set(self.profiles) - set(PROFILES)
        if unknown:
            raise UnknownProfileError(
                f"parameter {self.name!r} declares unknown profile(s) "
                f"{sorted(unknown)}; profiles are {PROFILES}")

    def value_for(self, profile: str):
        value = self.profiles.get(profile, _MISSING)
        return self.default if value is _MISSING else value

    def coerce(self, raw):
        """Parse a ``--set name=value`` CLI string into this param's type."""
        if not isinstance(raw, str):
            return _tuplify(raw) if isinstance(raw, list) else raw
        template = self.default
        if template is None:
            # Untyped default: look for any typed profile value to mimic.
            for value in self.profiles.values():
                if value is not None:
                    template = value
                    break
        try:
            return _coerce_like(template, raw)
        except ValueError as error:
            raise ParameterValueError(
                f"invalid value {raw!r} for parameter {self.name!r}: "
                f"{error}") from error


def param(name: str, default, help: str = "", *,  # noqa: A002 - mirrors argparse
          fast=_MISSING, smoke=_MISSING, cache_relevant: bool = True) -> Param:
    """Concise :class:`Param` constructor with per-profile keywords."""
    profiles = {}
    if fast is not _MISSING:
        profiles["fast"] = fast
    if smoke is not _MISSING:
        profiles["smoke"] = smoke
    return Param(name=name, default=default, help=help, profiles=profiles,
                 cache_relevant=cache_relevant)


class ParamSpec:
    """Ordered collection of :class:`Param` declarations for one experiment."""

    def __init__(self, *params: Param):
        self._params: Dict[str, Param] = {}
        for entry in params:
            if entry.name in self._params:
                raise ValueError(f"duplicate parameter {entry.name!r}")
            self._params[entry.name] = entry

    def names(self) -> Tuple[str, ...]:
        return tuple(self._params)

    def get(self, name: str) -> Param:
        return self._params[name]

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self):
        return iter(self._params.values())

    def __len__(self) -> int:
        return len(self._params)

    def cache_params(self, resolved: Mapping[str, object]) -> Dict[str, object]:
        """The subset of resolved parameters that content-addresses a run
        (declared parameters with ``cache_relevant=False`` are dropped)."""
        return {name: value for name, value in resolved.items()
                if name not in self._params or self._params[name].cache_relevant}

    def validate_overrides(self, overrides: Mapping[str, object],
                           experiment: str = "?") -> None:
        """Reject overrides naming parameters this spec does not declare."""
        unknown = set(overrides) - set(self._params)
        if unknown:
            raise UnknownParameterError(experiment, unknown, self.names())

    def resolve(self, profile: str = "full",
                overrides: Optional[Mapping[str, object]] = None,
                experiment: str = "?",
                coerce: bool = False) -> Dict[str, object]:
        """The exact ``run()`` keyword arguments for (profile, overrides).

        :param coerce: parse string override values (from CLI ``--set``)
            into the declared parameter types.
        :raises UnknownProfileError: for a profile not in :data:`PROFILES`.
        :raises UnknownParameterError: for an override the spec lacks.
        """
        if profile not in PROFILES:
            raise UnknownProfileError(
                f"unknown profile {profile!r}; choose from {PROFILES}")
        overrides = dict(overrides or {})
        self.validate_overrides(overrides, experiment=experiment)
        resolved = {name: entry.value_for(profile)
                    for name, entry in self._params.items()}
        for name, value in overrides.items():
            resolved[name] = (self._params[name].coerce(value)
                              if coerce else value)
        return resolved


@dataclass
class ExperimentRegistration:
    """One registry entry: the harness function plus its declared surface."""

    name: str
    fn: Callable
    artifact: str = ""
    tags: Tuple[str, ...] = ()
    params: ParamSpec = field(default_factory=ParamSpec)
    doc: str = ""
    order: int = 0

    def resolve_params(self, profile: str = "full",
                       overrides: Optional[Mapping[str, object]] = None,
                       coerce: bool = False) -> Dict[str, object]:
        return self.params.resolve(profile=profile, overrides=overrides,
                                   experiment=self.name, coerce=coerce)

    def run(self, profile: str = "full",
            overrides: Optional[Mapping[str, object]] = None):
        """Resolve parameters and execute the harness (no caching here)."""
        return self.fn(**self.resolve_params(profile=profile,
                                             overrides=overrides))


class ExperimentRegistry:
    """A case-insensitive mapping from experiment names to harnesses."""

    def __init__(self):
        self._entries: Dict[str, ExperimentRegistration] = {}
        self._order = 0

    @staticmethod
    def _key(name: str) -> str:
        return str(name).strip().lower()

    # -- registration ---------------------------------------------------------
    def register(self, name: str, fn: Callable, *,
                 artifact: str = "",
                 tags: Iterable[str] = (),
                 params: Iterable[Param] = (),
                 doc: str = "",
                 overwrite: bool = False) -> ExperimentRegistration:
        """Register ``fn`` (a keyword-callable harness) under ``name``."""
        if not name or not name.strip():
            raise ValueError("experiment name must be a non-empty string")
        name = name.strip()
        key = self._key(name)
        if key in self._entries and not overwrite:
            raise DuplicateExperimentError(
                f"experiment {name!r} already registered; pass "
                "overwrite=True to replace it")
        spec = params if isinstance(params, ParamSpec) else ParamSpec(*params)
        self._check_signature(name, fn, spec)
        previous = self._entries.get(key)
        registration = ExperimentRegistration(
            name=name, fn=fn, artifact=artifact, tags=tuple(tags),
            params=spec, doc=doc,
            order=previous.order if previous is not None else self._order)
        if previous is None:
            self._order += 1
        self._entries[key] = registration
        return registration

    @staticmethod
    def _check_signature(name: str, fn: Callable, spec: ParamSpec) -> None:
        """Every declared parameter must be a keyword ``fn`` accepts."""
        signature = inspect.signature(fn)
        accepts_kwargs = any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in signature.parameters.values())
        if accepts_kwargs:
            return
        missing = [entry.name for entry in spec
                   if entry.name not in signature.parameters]
        if missing:
            raise ValueError(
                f"experiment {name!r} declares parameter(s) {missing} "
                f"that {fn.__name__}() does not accept")

    def register_experiment(self, name: Optional[str] = None, *,
                            artifact: str = "",
                            tags: Iterable[str] = (),
                            params: Iterable[Param] = (),
                            overwrite: bool = False):
        """Decorator form of :meth:`register` for harness functions."""
        def decorator(fn):
            experiment_name = name or fn.__name__
            doc = ((fn.__doc__ or "").strip().splitlines() or [""])[0]
            self.register(experiment_name, fn, artifact=artifact, tags=tags,
                          params=params, doc=doc, overwrite=overwrite)
            return fn
        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration (mainly for tests)."""
        del self._entries[self._key(self.entry(name).name)]

    # -- lookup ---------------------------------------------------------------
    def entry(self, name: str) -> ExperimentRegistration:
        registration = self._entries.get(self._key(name))
        if registration is None:
            raise ExperimentLookupError(
                f"unknown experiment {name!r}; available: "
                f"{sorted(self.names())}")
        return registration

    def canonical_name(self, name: str) -> str:
        return self.entry(name).name

    def names(self, tag: Optional[str] = None) -> Tuple[str, ...]:
        """Registered names (registration order), optionally by tag."""
        entries = sorted(self._entries.values(), key=lambda entry: entry.order)
        if tag is not None:
            entries = [entry for entry in entries if tag in entry.tags]
        return tuple(entry.name for entry in entries)

    def tags(self) -> Tuple[str, ...]:
        seen = set()
        for entry in self._entries.values():
            seen.update(entry.tags)
        return tuple(sorted(seen))

    def resolve_targets(self, target: str) -> Tuple[str, ...]:
        """Expand a CLI target — a name, a tag, or ``all`` — into names."""
        if self._key(target) == "all":
            return self.names()
        if self._key(target) in self._entries:
            return (self.canonical_name(target),)
        tagged = self.names(tag=target)
        if tagged:
            return tagged
        raise ExperimentLookupError(
            f"unknown experiment or tag {target!r}; experiments: "
            f"{sorted(self.names())}; tags: {sorted(self.tags())}")

    # -- dunder sugar ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return self._key(str(name)) in self._entries

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExperimentRegistry({', '.join(self.names())})"


#: The process-wide default registry.  The experiment modules populate it at
#: import time via the :func:`register_experiment` decorator.
DEFAULT_EXPERIMENT_REGISTRY = ExperimentRegistry()


def register_experiment(name: Optional[str] = None, *,
                        artifact: str = "",
                        tags: Iterable[str] = (),
                        params: Iterable[Param] = (),
                        overwrite: bool = False):
    """Decorator registering a harness in the default experiment registry."""
    return DEFAULT_EXPERIMENT_REGISTRY.register_experiment(
        name, artifact=artifact, tags=tags, params=params,
        overwrite=overwrite)


#: Modules whose import populates the default registry, in presentation
#: order (this order is the registry order, and therefore the order
#: ``run all`` executes and EXPERIMENTS.md documents).
EXPERIMENT_MODULES = (
    "table1", "table2", "fig04b", "fig05", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig14", "fig15", "tail_latency", "fleet_capacity",
    "wear_dynamics", "adversarial_scenarios", "ablation",
)


def default_experiment_registry() -> ExperimentRegistry:
    """The default registry, with all built-in experiments loaded."""
    import importlib

    for module in EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{module}")
    return DEFAULT_EXPERIMENT_REGISTRY
