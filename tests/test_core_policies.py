"""Tests for the read-retry policies of Section 7."""

import pytest

from repro.core.policies import (
    AR2Policy,
    BaselinePolicy,
    NoRRPolicy,
    PR2Policy,
    PSOPolicy,
    PnAR2Policy,
    available_policies,
    get_policy,
    policy_suite,
)
from repro.errors.condition import OperatingCondition
from repro.nand.geometry import PageType


@pytest.fixture(scope="module")
def aged():
    return OperatingCondition(2000, 12.0, 30.0)


class TestFactory:
    def test_available_policies(self):
        names = available_policies()
        assert set(names) == {"Baseline", "PR2", "AR2", "PnAR2", "NoRR",
                              "PSO", "PSO+PnAR2"}

    def test_get_policy_case_insensitive(self):
        assert isinstance(get_policy("baseline"), BaselinePolicy)
        assert isinstance(get_policy("PnAr2"), PnAR2Policy)
        assert get_policy("pso+pnar2").name == "PSO+PnAR2"

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            get_policy("turbo")

    def test_policy_suite_shares_rpt(self, default_rpt):
        suite = policy_suite(("AR2", "PnAR2"), rpt=default_rpt)
        assert suite["AR2"].rpt is default_rpt
        assert suite["PnAR2"].rpt is default_rpt


class TestRetryStepBehaviour:
    def test_baseline_keeps_required_steps(self, aged):
        assert BaselinePolicy().effective_retry_steps(12, aged) == 12

    def test_norr_never_retries(self, aged):
        assert NoRRPolicy().effective_retry_steps(12, aged) == 0

    def test_pso_reduces_steps_with_floor_of_three(self, aged):
        pso = PSOPolicy()
        # ~70% reduction but at least 3 steps when any retry is needed.
        assert pso.effective_retry_steps(20, aged) == 6
        assert pso.effective_retry_steps(8, aged) == 3
        assert pso.effective_retry_steps(2, aged) == 2
        assert pso.effective_retry_steps(0, aged) == 0

    def test_negative_steps_rejected(self, aged):
        with pytest.raises(ValueError):
            BaselinePolicy().effective_retry_steps(-1, aged)

    def test_pso_validation(self):
        with pytest.raises(ValueError):
            PSOPolicy(mechanism="warp")
        with pytest.raises(ValueError):
            PSOPolicy(step_fraction=0.0)
        with pytest.raises(ValueError):
            PSOPolicy(min_steps=0)


class TestLatencyOrdering:
    def test_policy_ordering_for_aged_reads(self, aged, default_rpt):
        steps = 15
        suite = policy_suite(("Baseline", "PR2", "AR2", "PnAR2", "NoRR"),
                             rpt=default_rpt)
        responses = {name: policy.read_breakdown(steps, PageType.CSB, aged).response_us
                     for name, policy in suite.items()}
        assert (responses["NoRR"] < responses["PnAR2"] < responses["PR2"]
                < responses["Baseline"])
        assert responses["AR2"] < responses["Baseline"]

    def test_no_retry_read_is_identical_across_policies(self, default_rpt):
        fresh = OperatingCondition(0, 0.0, 30.0)
        suite = policy_suite(("Baseline", "PR2", "AR2", "PnAR2"), rpt=default_rpt)
        responses = {name: policy.read_breakdown(0, PageType.MSB, fresh).response_us
                     for name, policy in suite.items()}
        assert len(set(round(value, 6) for value in responses.values())) == 1

    def test_ar2_uses_rpt_reduction(self, aged, default_rpt):
        policy = AR2Policy(rpt=default_rpt)
        reduced = policy.reduced_timing_for(aged)
        entry = default_rpt.entry_for(aged.pe_cycles, aged.retention_months)
        assert reduced.t_pre_us == pytest.approx(entry.t_pre_us)

    def test_uses_reduced_timing_flags(self):
        assert not BaselinePolicy().uses_reduced_timing
        assert not PR2Policy().uses_reduced_timing
        assert AR2Policy().uses_reduced_timing
        assert PnAR2Policy().uses_reduced_timing
        assert not PSOPolicy().uses_reduced_timing
        assert PSOPolicy(mechanism="pnar2").uses_reduced_timing

    def test_pso_pnar2_faster_than_pso(self, aged, default_rpt):
        pso = PSOPolicy(rpt=default_rpt)
        combined = PSOPolicy(rpt=default_rpt, mechanism="pnar2")
        steps = 20
        assert (combined.read_breakdown(steps, PageType.CSB, aged).response_us
                < pso.read_breakdown(steps, PageType.CSB, aged).response_us)

    def test_breakdown_step_counts(self, aged, default_rpt):
        pso = PSOPolicy(rpt=default_rpt)
        breakdown = pso.read_breakdown(20, PageType.CSB, aged)
        assert breakdown.retry_steps == 6
        norr = NoRRPolicy().read_breakdown(20, PageType.CSB, aged)
        assert norr.retry_steps == 0
