"""Tests for the trace format and the synthetic workload generators."""

import io

import pytest

from repro.ssd.request import RequestKind
from repro.workloads import (
    SyntheticWorkload,
    WORKLOAD_CATALOG,
    WorkloadShape,
    generate_workload,
    read_msrc_csv,
    records_to_requests,
    workload_names,
    write_msrc_csv,
)
from repro.workloads.catalog import (
    READ_DOMINANT_WORKLOADS,
    WRITE_DOMINANT_WORKLOADS,
    WorkloadSpec,
    table2_rows,
)
from repro.workloads.trace import TraceRecord


class TestTraceFormat:
    def test_csv_roundtrip(self):
        records = [
            TraceRecord(0.0, True, 0, 16 * 1024, hostname="stg", disk_number=0),
            TraceRecord(150.5, False, 32 * 1024, 64 * 1024, hostname="stg"),
        ]
        buffer = io.StringIO()
        assert write_msrc_csv(records, buffer) == 2
        buffer.seek(0)
        parsed = read_msrc_csv(buffer)
        assert len(parsed) == 2
        assert parsed[0].is_read and not parsed[1].is_read
        assert parsed[1].timestamp_us == pytest.approx(150.5)
        assert parsed[1].size_bytes == 64 * 1024

    def test_read_msrc_csv_max_records(self):
        buffer = io.StringIO("0,host,0,Read,0,4096\n10,host,0,Write,4096,4096\n")
        assert len(read_msrc_csv(buffer, max_records=1)) == 1

    def test_malformed_row_rejected(self):
        with pytest.raises(ValueError):
            read_msrc_csv(io.StringIO("1,host,0,Read\n"))

    def test_records_to_requests_page_rounding(self):
        records = [TraceRecord(5.0, True, offset_bytes=10_000, size_bytes=20_000)]
        requests = records_to_requests(records, page_size_bytes=16 * 1024)
        assert len(requests) == 1
        assert requests[0].kind is RequestKind.READ
        assert requests[0].start_lpn == 0
        assert requests[0].page_count == 2

    def test_records_to_requests_wraps_logical_space(self):
        records = [TraceRecord(0.0, False, offset_bytes=10 * 16 * 1024,
                               size_bytes=16 * 1024)]
        requests = records_to_requests(records, logical_pages=4)
        assert requests[0].start_lpn == 2

    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1.0, True, 0, 4096)
        with pytest.raises(ValueError):
            TraceRecord(0.0, True, 0, 0)


class TestSyntheticWorkload:
    def test_deterministic_per_seed(self):
        shape = WorkloadShape(read_ratio=0.8, cold_ratio=0.5)
        first = SyntheticWorkload(shape, 4096, seed=3).generate(100)
        second = SyntheticWorkload(shape, 4096, seed=3).generate(100)
        assert [(r.kind, r.start_lpn, r.page_count) for r in first] == \
               [(r.kind, r.start_lpn, r.page_count) for r in second]

    def test_arrivals_are_increasing(self):
        workload = SyntheticWorkload(WorkloadShape(), 4096, seed=1)
        requests = workload.generate(200)
        arrivals = [request.arrival_us for request in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_addresses_stay_in_footprint(self):
        workload = SyntheticWorkload(WorkloadShape(read_ratio=0.5), 2048, seed=2)
        for request in workload.generate(500):
            assert 0 <= request.start_lpn < 2048
            assert request.start_lpn + request.page_count <= 2048

    def test_measured_ratios_track_shape(self):
        shape = WorkloadShape(read_ratio=0.9, cold_ratio=0.7,
                              mean_interarrival_us=100.0)
        workload = SyntheticWorkload(shape, 8192, seed=4)
        requests = workload.generate(3000)
        measured = workload.measured_ratios(requests)
        assert measured["read_ratio"] == pytest.approx(0.9, abs=0.05)
        assert measured["cold_ratio"] == pytest.approx(0.7, abs=0.12)

    def test_writes_never_touch_cold_region(self):
        shape = WorkloadShape(read_ratio=0.3, cold_ratio=0.5,
                              cold_region_fraction=0.6)
        workload = SyntheticWorkload(shape, 4096, seed=5)
        requests = workload.generate(1000)
        cold_limit = int(4096 * 0.6)
        for request in requests:
            if request.kind is RequestKind.WRITE:
                assert request.start_lpn >= cold_limit

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadShape(read_ratio=1.5)
        with pytest.raises(ValueError):
            WorkloadShape(mean_interarrival_us=0.0)
        with pytest.raises(ValueError):
            SyntheticWorkload(WorkloadShape(), footprint_pages=8)
        with pytest.raises(ValueError):
            SyntheticWorkload(WorkloadShape(), 4096).generate(0)

    def test_zipf_skews_towards_low_indexes(self):
        uniform = SyntheticWorkload(WorkloadShape(zipf_theta=0.0,
                                                  read_ratio=1.0), 8192, seed=6)
        skewed = SyntheticWorkload(WorkloadShape(zipf_theta=0.99,
                                                 read_ratio=1.0), 8192, seed=6)
        mean_uniform = sum(r.start_lpn for r in uniform.generate(800)) / 800
        mean_skewed = sum(r.start_lpn for r in skewed.generate(800)) / 800
        assert mean_skewed < mean_uniform


class TestCatalog:
    def test_twelve_workloads(self):
        assert len(workload_names()) == 12
        assert set(WRITE_DOMINANT_WORKLOADS) | set(READ_DOMINANT_WORKLOADS) == \
            set(workload_names())

    def test_table2_values_match_paper(self):
        assert WORKLOAD_CATALOG["stg_0"].read_ratio == 0.15
        assert WORKLOAD_CATALOG["stg_0"].cold_ratio == 0.38
        assert WORKLOAD_CATALOG["proj_1"].cold_ratio == 0.96
        assert WORKLOAD_CATALOG["YCSB-C"].read_ratio == 0.99
        assert WORKLOAD_CATALOG["YCSB-E"].scan_heavy

    def test_read_dominant_classification(self):
        assert not WORKLOAD_CATALOG["stg_0"].read_dominant
        assert not WORKLOAD_CATALOG["hm_0"].read_dominant
        assert WORKLOAD_CATALOG["prn_1"].read_dominant

    def test_generate_workload(self):
        requests = generate_workload("YCSB-B", 200, footprint_pages=4096, seed=1)
        assert len(requests) == 200
        reads = sum(1 for request in requests
                    if request.kind is RequestKind.READ)
        assert reads / len(requests) > 0.9

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            generate_workload("nope", 10, 4096)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("x", "OTHER", 0.5, 0.5)
        with pytest.raises(ValueError):
            WorkloadSpec("x", "MSRC", 1.5, 0.5)

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 12
        assert {"workload", "suite", "read_ratio", "cold_ratio", "class"} <= set(rows[0])
