"""Tests for the DFTL page-mapped FTL: CMT/GTD, GC invariants, integration.

Unit tests pin the mapper's mechanics (LRU caching, dirty write-back,
batched translation updates, watermark-driven GC, wear-leveled allocation);
Hypothesis storms assert the structural invariants — no valid page is ever
lost, P/E counts only grow, and the mapping/GTD/OOB views always agree —
after arbitrary write/trim sequences with GC running; the integration tests
drive the full simulator in ``mapping="page"`` mode and check that the
wear-dynamics counters flow into :class:`SimulationMetrics`, sweep rows and
fleet aggregation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.fleet import FleetResult, FleetSpec
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, SsdSimulator
from repro.ssd.dftl import GC_STREAM, HOST_STREAM, TRANS_STREAM, DftlMapper
from repro.ssd.metrics import SimulationMetrics
from repro.workloads import generate_workload


def small_config(**overrides) -> SsdConfig:
    """One plane of 10 x 4-page blocks: every structure is inspectable."""
    parameters = dict(channels=1, dies_per_channel=1, planes_per_die=1,
                      blocks_per_plane=10, pages_per_block=4,
                      write_buffer_pages=4, overprovisioning=0.25,
                      mapping="page", cmt_capacity_entries=4,
                      translation_entries_per_page=4,
                      gc_free_block_threshold=3, gc_stop_free_blocks=4)
    parameters.update(overrides)
    return SsdConfig(**parameters)


class TestCachedMappingTable:
    def test_miss_then_hit(self):
        mapper = DftlMapper(small_config())
        mapper.write(0)
        assert (mapper.cmt_hits, mapper.cmt_misses) == (0, 1)
        physical, ops = mapper.lookup(0, now_us=0.0)
        assert physical is not None
        assert ops == []
        assert (mapper.cmt_hits, mapper.cmt_misses) == (1, 1)

    def test_miss_on_persisted_region_reads_translation_page(self):
        mapper = DftlMapper(small_config())
        mapper.precondition_fill(pages=8)
        assert mapper.cached_entries == 0  # CMT starts cold
        physical, ops = mapper.lookup(0, now_us=0.0)
        assert physical is not None
        assert [op.kind for op in ops] == ["read"]
        assert mapper.translation_reads == 1

    def test_lru_eviction_writes_back_dirty_entry(self):
        mapper = DftlMapper(small_config(cmt_capacity_entries=2))
        mapper.write(0)  # dirty
        mapper.write(1)  # dirty
        # Caching a third entry evicts LPN 0 (least recently used) and must
        # persist it: a fresh translation page is programmed.
        _, ops = mapper.lookup(2, now_us=0.0)
        assert "program" in [op.kind for op in ops]
        assert mapper.translation_writes == 1
        assert 0 not in mapper._cmt and 1 in mapper._cmt

    def test_lru_order_follows_recency(self):
        mapper = DftlMapper(small_config(cmt_capacity_entries=2))
        mapper.write(0)
        mapper.write(1)
        mapper.lookup(0, now_us=0.0)  # 0 becomes most recent
        mapper.lookup(2, now_us=0.0)  # evicts 1, not 0
        assert 0 in mapper._cmt and 1 not in mapper._cmt

    def test_clean_eviction_is_free(self):
        mapper = DftlMapper(small_config(cmt_capacity_entries=1))
        mapper.precondition_fill(pages=8)
        mapper.lookup(0, now_us=0.0)  # cached clean
        _, ops = mapper.lookup(1, now_us=0.0)  # evicts clean LPN 0
        assert [op.kind for op in ops] == ["read"]  # only the demand fetch
        assert mapper.translation_writes == 0

    def test_dirty_writeback_batches_same_translation_page(self):
        # LPNs 0 and 1 share a translation page (4 entries per page), so
        # persisting one must mark the other clean: its later eviction
        # generates no second program.
        mapper = DftlMapper(small_config(cmt_capacity_entries=2))
        mapper.write(0)
        mapper.write(1)
        mapper.lookup(2, now_us=0.0)  # evicts dirty 0, persists the page
        assert mapper.translation_writes == 1
        mapper.lookup(3, now_us=0.0)  # evicts 1 — now clean, no write-back
        assert mapper.translation_writes == 1


class TestGtdAndTrim:
    def test_gtd_locates_written_translation_pages(self):
        mapper = DftlMapper(small_config(cmt_capacity_entries=1))
        mapper.write(0)
        mapper.write(5)  # evicts dirty 0 -> persists translation page 0
        tvpn = mapper.tvpn_of(0)
        assert tvpn in mapper._gtd
        physical = mapper._physical(mapper._gtd[tvpn])
        assert mapper.block_at(physical).page_lpns[physical.page] == tvpn

    def test_translation_rewrite_invalidates_old_page(self):
        mapper = DftlMapper(small_config())
        mapper.precondition_fill(pages=4)
        old = mapper._physical(mapper._gtd[0])
        ops = mapper.trim(0, now_us=0.0)  # forces a read-modify-write
        assert [op.kind for op in ops] == ["read", "program"]
        assert not mapper.block_at(old).page_valid[old.page]
        mapper.check_consistency()

    def test_trim_unmaps_and_invalidates(self):
        mapper = DftlMapper(small_config())
        mapper.write(3)
        physical = mapper.lookup_direct(3)
        mapper.trim(3, now_us=0.0)
        assert not mapper.is_mapped(3)
        assert not mapper.block_at(physical).page_valid[physical.page]
        mapper.check_consistency()

    def test_trim_of_unwritten_lpn_is_a_noop(self):
        mapper = DftlMapper(small_config())
        assert mapper.trim(7, now_us=0.0) == []


class TestGarbageCollection:
    def test_watermarks_drive_collection(self):
        config = small_config()
        mapper = DftlMapper(config)
        # Overwrite a tiny working set until the plane crosses the trigger.
        invoked = False
        for step in range(200):
            mapper.write(step % 6)
            operations = mapper.collect_if_needed()
            if operations:
                invoked = True
                assert mapper.planes[0].free_block_count >= \
                    config.gc_stop_free_blocks
        assert invoked
        assert mapper.gc_invocations > 0
        assert mapper.gc_erased_blocks > 0
        mapper.check_consistency()

    def test_victim_is_full_block_with_fewest_valid_pages(self):
        mapper = DftlMapper(small_config())
        plane = mapper.planes[0]
        # Fill two blocks through the host stream, then invalidate more
        # pages in the second: the greedy victim must be the second.
        for lpn in range(8):
            mapper.write(lpn)
        first = mapper.lookup_direct(0).block
        second = mapper.lookup_direct(4).block
        plane.invalidate(first, 0)
        for page in range(3):
            plane.invalidate(second, page)
        assert plane.gc_victim() == second

    def test_fully_valid_blocks_are_not_victims(self):
        mapper = DftlMapper(small_config())
        for lpn in range(4):
            mapper.write(lpn)
        assert mapper.planes[0].gc_victim() is None

    def test_gc_preserves_mapping_and_retention(self):
        mapper = DftlMapper(small_config())
        mapper.write(0, retention_months=6.0)
        for lpn in range(1, 4):
            mapper.write(lpn)
        victim_block = mapper.lookup_direct(0).block
        mapper.write(1)  # invalidates the victim's copy of LPN 1
        operation = mapper._collect_block(0, victim_block, now_us=0.0)
        assert operation.relocated_pages == 3
        moved = mapper.lookup_direct(0)
        assert moved.block != victim_block
        assert mapper.retention_months_of(moved, now_us=0.0) == 6.0
        mapper.check_consistency()

    def test_gc_batches_translation_updates(self):
        # Relocating 3 data pages that share one translation page emits one
        # read-modify-write, not three.
        mapper = DftlMapper(small_config(cmt_capacity_entries=8))
        mapper.precondition_fill(pages=4)
        victim_block = mapper.lookup_direct(0).block
        mapper.trim(3, now_us=0.0)  # one invalid page in the victim
        before = mapper.translation_writes
        operation = mapper._collect_block(0, victim_block, now_us=0.0)
        assert operation.relocated_pages == 3
        assert mapper.translation_writes == before + 1
        mapper.check_consistency()

    def test_gc_relocates_translation_blocks_via_gtd(self):
        mapper = DftlMapper(small_config())
        mapper.precondition_fill(pages=16)
        trans_physical = mapper._physical(mapper._gtd[0])
        victim_block = trans_physical.block
        block = mapper.planes[0].blocks[victim_block]
        assert block.stream == TRANS_STREAM
        # Rewriting translation page 1 invalidates its copy in the victim.
        mapper._write_translation_page(1, now_us=0.0)
        mapper._collect_block(0, victim_block, now_us=0.0)
        relocated = mapper._physical(mapper._gtd[0])
        assert relocated.block != victim_block
        assert mapper.block_at(relocated).stream == TRANS_STREAM
        mapper.check_consistency()

    def test_erase_increments_pe_cycles(self):
        mapper = DftlMapper(small_config())
        plane = mapper.planes[0]
        before = plane.blocks[0].pe_cycles
        plane.blocks[0].stream = HOST_STREAM
        plane.erase(0)
        assert plane.blocks[0].pe_cycles == before + 1
        assert plane.blocks[0].stream is None

    def test_wear_leveling_opens_least_worn_free_block(self):
        mapper = DftlMapper(small_config())
        plane = mapper.planes[0]
        for block in plane.blocks:
            block.pe_cycles = 10
        plane.blocks[7].pe_cycles = 2
        opened = plane._open_active_block(GC_STREAM)
        assert opened == 7

    def test_streams_never_share_blocks(self):
        mapper = DftlMapper(small_config())
        mapper.precondition_fill(pages=8)
        for lpn in range(8):
            mapper.write(lpn)
            mapper.collect_if_needed()
        for plane in mapper.planes:
            for block in plane.blocks:
                streams = {HOST_STREAM if block.page_lpns[page] is not None
                           else None
                           for page in range(block.next_free_page)}
                # Programmed pages all came through one append stream.
                assert block.stream in (None, HOST_STREAM, GC_STREAM,
                                        TRANS_STREAM)
                assert len(streams - {None}) <= 1


storm_settings = settings(max_examples=40, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


class TestDftlStorms:
    """Randomized write/trim storms with GC running after every step."""

    operations = st.lists(
        st.tuples(st.sampled_from(["write", "trim", "lookup"]),
                  st.integers(min_value=0, max_value=11)),
        min_size=1, max_size=120)

    @storm_settings
    @given(operations)
    def test_no_valid_page_lost_and_state_consistent(self, steps):
        mapper = DftlMapper(small_config())
        live = set()
        for kind, lpn in steps:
            if kind == "write":
                mapper.write(lpn)
                live.add(lpn)
            elif kind == "trim":
                mapper.trim(lpn)
                live.discard(lpn)
            else:
                mapper.lookup(lpn, now_us=0.0)
            mapper.collect_if_needed()
        mapper.check_consistency()
        for lpn in live:
            physical = mapper.lookup_direct(lpn)
            assert physical is not None, f"live LPN {lpn} lost its mapping"
            block = mapper.block_at(physical)
            assert block.page_valid[physical.page]
            assert block.page_lpns[physical.page] == lpn
        assert mapper.mapped_pages == len(live)

    @storm_settings
    @given(operations)
    def test_pe_cycles_grow_monotonically(self, steps):
        mapper = DftlMapper(small_config())
        watermark = [block.pe_cycles for block in mapper.planes[0].blocks]
        for kind, lpn in steps:
            if kind == "write":
                mapper.write(lpn)
            elif kind == "trim":
                mapper.trim(lpn)
            else:
                mapper.lookup(lpn, now_us=0.0)
            mapper.collect_if_needed()
            for block_id, block in enumerate(mapper.planes[0].blocks):
                assert block.pe_cycles >= watermark[block_id]
                watermark[block_id] = block.pe_cycles

    @storm_settings
    @given(operations)
    def test_retention_age_survives_relocation(self, steps):
        mapper = DftlMapper(small_config())
        ages = {}
        for index, (kind, lpn) in enumerate(steps):
            if kind == "write":
                age = float(index % 3) * 6.0
                mapper.write(lpn, retention_months=age)
                ages[lpn] = age
            elif kind == "trim":
                mapper.trim(lpn)
                ages.pop(lpn, None)
            else:
                mapper.lookup(lpn, now_us=0.0)
            mapper.collect_if_needed()
        for lpn, age in ages.items():
            physical = mapper.lookup_direct(lpn)
            assert mapper.retention_months_of(physical, now_us=0.0) == age


@pytest.fixture(scope="module")
def page_mode_result():
    """One write-heavy page-mapped run that reaches GC steady state."""
    config = SsdConfig(channels=2, dies_per_channel=1, planes_per_die=1,
                       blocks_per_plane=12, pages_per_block=24,
                       write_buffer_pages=16, mapping="page",
                       cmt_capacity_entries=64,
                       translation_entries_per_page=32,
                       gc_free_block_threshold=3, gc_stop_free_blocks=5)
    simulator = SsdSimulator(config, policy="Baseline",
                             rpt=ReadTimingParameterTable.default())
    simulator.precondition(pe_cycles=1000, retention_months=6.0,
                           fill_fraction=0.6)
    footprint = int(config.logical_pages * 0.5)
    requests = generate_workload("stg_0", 300, footprint, seed=1,
                                 mean_interarrival_us=500.0)
    result = simulator.run(requests)
    return simulator, result


class TestPageModeIntegration:
    def test_gc_and_translation_traffic_happen(self, page_mode_result):
        _, result = page_mode_result
        metrics = result.metrics
        assert metrics.gc_invocations > 0
        assert metrics.gc_programs > 0
        assert metrics.gc_erases > 0
        assert metrics.translation_reads > 0
        assert metrics.translation_writes > 0

    def test_write_amplification_above_one(self, page_mode_result):
        _, result = page_mode_result
        assert result.metrics.write_amplification() > 1.0

    def test_mapping_cache_hit_rate_in_range(self, page_mode_result):
        _, result = page_mode_result
        rate = result.metrics.mapping_cache_hit_rate()
        assert 0.0 < rate < 1.0
        lookups = (result.metrics.mapping_cache_hits
                   + result.metrics.mapping_cache_misses)
        assert lookups > 0

    def test_gc_diversifies_read_conditions(self, page_mode_result):
        simulator, _ = page_mode_result
        # Statically preconditioned block mapping sees at most two
        # conditions (cold data and fresh rewrites); live GC erases raise
        # blocks above the preconditioned P/E count.
        assert simulator.distinct_read_conditions > 2

    def test_mapper_state_is_consistent_after_run(self, page_mode_result):
        simulator, _ = page_mode_result
        simulator.dftl.check_consistency()

    def test_summary_surfaces_wear_columns(self, page_mode_result):
        _, result = page_mode_result
        summary = result.metrics.summary()
        assert summary["write_amplification"] > 1.0
        assert 0.0 < summary["mapping_cache_hit_rate"] < 1.0
        assert summary["gc_invocations"] > 0
        assert summary["translation_reads"] > 0
        assert summary["translation_writes"] > 0


class TestMetricsCounters:
    def test_counter_fields_cover_every_int_counter(self):
        # The merge() contract: every plain-int counter on the collector is
        # summed via COUNTER_FIELDS.  A counter added to __init__ but not to
        # the tuple would silently vanish from fleet/sweep aggregation —
        # exactly the bug this guard exists to catch.
        metrics = SimulationMetrics()
        int_counters = {name for name, value in vars(metrics).items()
                        if type(value) is int and not name.startswith("_")}
        assert int_counters == set(SimulationMetrics.COUNTER_FIELDS)

    def test_merge_sums_every_counter(self):
        left = SimulationMetrics()
        right = SimulationMetrics()
        for index, name in enumerate(SimulationMetrics.COUNTER_FIELDS):
            setattr(left, name, index + 1)
            setattr(right, name, 100 * (index + 1))
        left.merge(right)
        for index, name in enumerate(SimulationMetrics.COUNTER_FIELDS):
            assert getattr(left, name) == 101 * (index + 1)

    def test_write_amplification_neutral_without_host_programs(self):
        assert SimulationMetrics().write_amplification() == 1.0

    def test_write_amplification_counts_gc_and_translation(self):
        metrics = SimulationMetrics()
        metrics.host_programs = 100
        metrics.gc_programs = 50
        metrics.translation_writes = 25
        assert metrics.write_amplification() == 1.75

    def test_mapping_cache_hit_rate_neutral_without_lookups(self):
        assert SimulationMetrics().mapping_cache_hit_rate() == 1.0

    def test_mapping_cache_hit_rate(self):
        metrics = SimulationMetrics()
        metrics.mapping_cache_hits = 3
        metrics.mapping_cache_misses = 1
        assert metrics.mapping_cache_hit_rate() == 0.75


class TestFleetAggregation:
    def test_fleet_merge_carries_wear_counters(self):
        # Regression guard for the silent-zero bug: FleetResult.merged used
        # to drop counters merge() did not know about.
        def device(reads, writes, hits, programs):
            metrics = SimulationMetrics()
            metrics.translation_reads = reads
            metrics.translation_writes = writes
            metrics.mapping_cache_hits = hits
            metrics.mapping_cache_misses = hits
            metrics.host_programs = programs
            metrics.gc_programs = programs // 2
            metrics.gc_invocations = 1
            return SimulationResult(
                policy_name="Baseline", config=SsdConfig.tiny(),
                metrics=metrics, preconditioned_pe_cycles=0,
                preconditioned_retention_months=0.0)

        fleet = FleetResult(spec=FleetSpec(devices=2), policy="Baseline",
                            device_results=[device(10, 4, 6, 100),
                                            device(30, 6, 14, 300)])
        merged = fleet.merged
        assert merged.translation_reads == 40
        assert merged.translation_writes == 10
        assert merged.gc_invocations == 2
        assert merged.mapping_cache_hit_rate() == 0.5
        assert merged.write_amplification() == (400 + 200 + 10) / 400
