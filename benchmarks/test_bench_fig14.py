"""Benchmark regenerating Figure 14 (PR2 / AR2 / PnAR2 / NoRR vs Baseline).

The benchmark runs a reduced grid — one read-dominant MSRC trace, one YCSB
trace and the write-dominant ``stg_0`` across three operating conditions —
and checks the paper's qualitative findings: every proposed configuration
improves on the Baseline, PnAR2 is the best non-ideal configuration, and the
gain grows with the severity of the operating condition.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.experiments import fig14

WORKLOADS = ("usr_1", "YCSB-C", "stg_0")
CONDITIONS = ((0, 0.0), (1000, 6.0), (2000, 12.0))


@pytest.mark.figure("fig14")
def test_bench_fig14_policy_comparison(benchmark, bench_rpt):
    result = run_once(benchmark, fig14.run, workloads=WORKLOADS,
                      conditions=CONDITIONS, num_requests=300)

    def mean_normalized(policy, condition=None):
        rows = [row for row in result.rows if row["policy"] == policy]
        if condition is not None:
            rows = [row for row in rows
                    if (row["pe_cycles"], row["retention_months"]) == condition]
        return float(np.mean([row["normalized_response_time"] for row in rows]))

    # Ordering of the mechanisms (Figure 14).
    assert mean_normalized("NoRR") <= mean_normalized("PnAR2")
    assert mean_normalized("PnAR2") < mean_normalized("PR2") < 1.0
    assert mean_normalized("AR2") < 1.0

    # The worse the operating condition, the larger PnAR2's benefit
    # (Section 7.2, third observation).
    assert (mean_normalized("PnAR2", (2000, 12.0))
            < mean_normalized("PnAR2", (1000, 6.0))
            <= mean_normalized("PnAR2", (0, 0.0)) + 1e-9)

    # Average improvement lands in the paper's ballpark (28.9% on average,
    # up to 51.8%): allow a generous band because the grid is reduced.
    mean_gain = 1.0 - mean_normalized("PnAR2")
    assert 0.15 <= mean_gain <= 0.55
