"""Tests for the codeword raw-bit-error model and the retry walk."""

import numpy as np
import pytest

from repro.errors.condition import OperatingCondition
from repro.errors.timing import TimingReduction
from repro.errors.variation import VariationSample
from repro.nand.geometry import PageType
from repro.nand.voltage import ReadRetryTable


class TestExpectedErrors:
    def test_fresh_page_is_nearly_error_free(self, error_model, fresh_condition):
        for page_type in PageType:
            errors = error_model.expected_errors(fresh_condition, page_type)
            assert errors < 15.0

    def test_default_read_of_aged_page_exceeds_capability(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        errors = error_model.expected_errors(condition, PageType.CSB)
        assert errors > error_model.ecc_capability

    def test_errors_decrease_toward_the_optimal_shift(self, error_model, vth_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        optimal = vth_model.optimal_shift_mv(condition)
        at_default = error_model.expected_errors(condition, PageType.CSB, 0.0)
        halfway = error_model.expected_errors(condition, PageType.CSB, optimal / 2)
        at_optimal = error_model.expected_errors(condition, PageType.CSB, optimal)
        assert at_default > halfway > at_optimal

    def test_csb_pages_have_most_errors(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        optimal_errors = {
            page_type: error_model.errors_at_optimal(condition, page_type)
            for page_type in PageType}
        assert optimal_errors[PageType.CSB] >= optimal_errors[PageType.MSB]
        assert optimal_errors[PageType.CSB] >= optimal_errors[PageType.LSB]

    def test_timing_reduction_adds_errors(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        base = error_model.errors_at_optimal(condition, PageType.CSB)
        reduced = error_model.errors_at_optimal(
            condition, PageType.CSB,
            timing_reduction=TimingReduction(pre=0.54))
        assert reduced > base

    def test_variation_increases_errors(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        worse = VariationSample(sigma_multiplier=1.1)
        assert (error_model.errors_at_optimal(condition, PageType.CSB, worse)
                > error_model.errors_at_optimal(condition, PageType.CSB))

    def test_reference_set_wrapper_matches_shift(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        table = ReadRetryTable()
        refs = table.reference_set_for_step(3)
        direct = error_model.expected_errors(condition, PageType.CSB,
                                             table.shift_for_step(3))
        wrapped = error_model.expected_errors_with_reference_set(
            condition, PageType.CSB, refs)
        assert wrapped == pytest.approx(direct)


class TestSampling:
    def test_sampling_is_poisson_like(self, error_model, rng):
        condition = OperatingCondition(1000, 6.0, 85.0)
        expected = error_model.errors_at_optimal(condition, PageType.CSB)
        samples = [error_model.sample_errors(
            condition, PageType.CSB, rng,
            reference_shift_mv=error_model.vth_model.optimal_shift_mv(condition))
            for _ in range(300)]
        assert np.mean(samples) == pytest.approx(expected, rel=0.2)

    def test_sampling_is_deterministic_per_seed(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        first = error_model.sample_errors(condition, PageType.CSB,
                                          np.random.default_rng(3))
        second = error_model.sample_errors(condition, PageType.CSB,
                                           np.random.default_rng(3))
        assert first == second


class TestRetryWalk:
    def test_fresh_page_needs_no_retry(self, error_model, fresh_condition):
        outcome = error_model.walk_retry_table(fresh_condition, PageType.CSB)
        assert outcome.retry_steps == 0
        assert outcome.succeeded

    def test_aged_page_needs_many_steps(self, error_model):
        condition = OperatingCondition(2000, 12.0, 30.0)
        outcome = error_model.walk_retry_table(condition, PageType.CSB)
        assert outcome.succeeded
        assert 15 <= outcome.retry_steps <= 30
        assert outcome.final_errors <= error_model.ecc_capability
        # Every earlier step failed.
        assert all(errors > error_model.ecc_capability
                   for errors in outcome.errors_per_step[:-1])

    def test_retry_steps_monotonic_in_retention(self, error_model):
        steps = []
        for months in (0.0, 3.0, 6.0, 12.0):
            outcome = error_model.walk_retry_table(
                OperatingCondition(1000, months, 85.0), PageType.CSB)
            steps.append(outcome.retry_steps)
        assert steps == sorted(steps)

    def test_errors_per_step_starts_with_default_read(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        outcome = error_model.walk_retry_table(condition, PageType.CSB)
        assert len(outcome.errors_per_step) == outcome.retry_steps + 1

    def test_small_table_causes_read_failure(self, error_model):
        condition = OperatingCondition(2000, 12.0, 30.0)
        tiny_table = ReadRetryTable(num_entries=3)
        outcome = error_model.walk_retry_table(condition, PageType.CSB,
                                               table=tiny_table)
        assert not outcome.succeeded
        assert outcome.retry_steps is None

    def test_near_optimal_errors_leave_margin(self, error_model):
        # Section 5.1: a large ECC-capability margin remains in the final
        # retry step even at the worst condition.
        condition = OperatingCondition(2000, 12.0, 30.0)
        errors = error_model.near_optimal_step_errors(condition, PageType.CSB)
        assert errors < error_model.ecc_capability
        margin = error_model.final_step_margin(condition, PageType.CSB)
        assert margin == pytest.approx(error_model.ecc_capability - errors)
        assert margin > 0.25 * error_model.ecc_capability

    def test_retry_steps_required_helper(self, error_model):
        condition = OperatingCondition(1000, 6.0, 85.0)
        steps = error_model.retry_steps_required(condition, PageType.CSB)
        outcome = error_model.walk_retry_table(condition, PageType.CSB)
        assert steps == outcome.retry_steps
