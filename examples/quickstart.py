#!/usr/bin/env python3
"""Quickstart: compare the read-retry policies with the session API.

Builds one :class:`repro.sim.Simulation`: the five SSD configurations of
Figure 14 (Baseline, PR2, AR2, PnAR2 and the ideal NoRR) are taken from the
policy registry, run against a read-dominant synthetic workload under a
moderately aged operating condition, and the mean response time of each is
printed.

Usage::

    python examples/quickstart.py [num_requests]
"""

import sys

from repro.sim import Simulation, default_registry
from repro.ssd.config import SsdConfig


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 400

    print("Simulating", num_requests, "requests at 1K P/E cycles and a "
          "6-month retention age...\n")
    run = (Simulation(SsdConfig.scaled(blocks_per_plane=24,
                                       pages_per_block=48))
           .policies(default_registry().names(tag="fig14"))
           .synthetic(read_ratio=0.95, cold_ratio=0.7,
                      mean_interarrival_us=300.0,
                      n=num_requests, seed=42)
           .condition(pec=1000, months=6.0)
           .run())

    baseline = run.mean_response_us("Baseline")
    print(f"{'configuration':<12} {'mean response [us]':>20} {'vs Baseline':>12}")
    print("-" * 48)
    for name, result in run:
        mean = result.mean_response_time_us
        reduction = 1.0 - mean / baseline
        print(f"{name:<12} {mean:>20.1f} {reduction:>11.1%}")

    print("\nPR2 pipelines consecutive retry steps with CACHE READ; AR2 "
          "shortens each retry step's sensing latency using the ECC margin "
          "of the final step; PnAR2 combines both (the paper's proposal).")


if __name__ == "__main__":
    main()
