"""Figure 8: effect of reducing each read-timing parameter individually."""

from __future__ import annotations

from repro.characterization.timing_sweep import individual_parameter_sweep
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult


@register_experiment(
    "fig08",
    artifact="Figure 8 — effect of reducing each timing parameter",
    tags=("paper", "figure", "characterization"),
    params=(
        param("num_chips", 8, "chips in the virtual test platform",
              fast=3, smoke=2),
        param("blocks_per_chip", 3, "sampled blocks per chip",
              fast=2, smoke=2),
        param("seed", 0, "platform seed"),
    ))
def run(num_chips: int = 8, blocks_per_chip: int = 3,
        seed: int = 0) -> ExperimentResult:
    from repro.characterization.platform import VirtualTestPlatform

    platform = VirtualTestPlatform(num_chips=num_chips,
                                   blocks_per_chip=blocks_per_chip,
                                   wordlines_per_block=1, seed=seed)
    sweeps = individual_parameter_sweep(platform)
    rows = []
    for parameter, entries in sweeps.items():
        for entry in entries:
            row = {"parameter": parameter}
            row.update(entry)
            rows.append(row)
    result = ExperimentResult(
        name="fig08",
        title="Figure 8: effect of reducing individual read-timing parameters",
        rows=rows,
        notes=["the paper reports ~30 additional errors for a 20% tEVAL "
               "reduction even on fresh pages, a ~60% retention-induced "
               "increase of the tPRE penalty at 2K P/E cycles, and safe "
               "reductions of 47%/10%/27% for tPRE/tEVAL/tDISCH at the worst "
               "condition"],
    )

    def delta(parameter, pec, months, reduction):
        row = result.first_row(parameter=parameter, pe_cycles=pec,
                               retention_months=months,
                               approx={"reduction": reduction})
        return row["delta_m_err"] if row else None

    result.headline = {
        "Delta M_ERR for 47% tPRE reduction at (2K, 12 mo)":
            delta("pre", 2000, 12.0, 0.47),
        "Delta M_ERR for 47% tPRE reduction at (2K, 0 mo)":
            delta("pre", 2000, 0.0, 0.47),
        "Delta M_ERR for 20% tEVAL reduction on a fresh page":
            delta("eval", 0, 0.0, 0.20),
        "Delta M_ERR for 20% tDISCH reduction at (1K, 0 mo)":
            delta("disch", 1000, 0.0, 0.20),
    }
    return result


def main() -> None:  # pragma: no cover
    print(run().to_text(max_rows=60))


if __name__ == "__main__":  # pragma: no cover
    main()
