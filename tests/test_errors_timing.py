"""Tests for the reduced read-timing error model (Section 5.2)."""

import pytest

from repro.errors.condition import OperatingCondition
from repro.errors.timing import TimingReduction
from repro.errors.variation import VariationSample
from repro.nand.timing import ReadTimingParameters


@pytest.fixture(scope="module")
def reference_condition():
    """Figure 8's reference point (1K P/E cycles, no retention, 85C)."""
    return OperatingCondition(1000, 0.0, 85.0)


class TestTimingReduction:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimingReduction(pre=1.0)
        with pytest.raises(ValueError):
            TimingReduction(disch=-0.1)

    def test_none_is_default(self):
        assert TimingReduction.none().is_default
        assert not TimingReduction(pre=0.1).is_default

    def test_from_parameters_roundtrip(self):
        default = ReadTimingParameters()
        reduced = default.with_reduction(pre=0.4, disch=0.07)
        reduction = TimingReduction.from_parameters(reduced, default)
        assert reduction.pre == pytest.approx(0.4)
        assert reduction.disch == pytest.approx(0.07)
        assert reduction.apply_to(default).t_pre_us == pytest.approx(reduced.t_pre_us)


class TestIndividualReductions:
    def test_no_reduction_no_errors(self, timing_error_model, reference_condition):
        assert timing_error_model.additional_errors_per_codeword(
            TimingReduction.none(), reference_condition) == 0.0

    def test_errors_monotonic_in_reduction(self, timing_error_model,
                                           reference_condition):
        errors = [timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=value), reference_condition)
            for value in (0.1, 0.3, 0.5, 0.6)]
        assert all(b >= a for a, b in zip(errors, errors[1:]))

    def test_paper_anchor_54pct_tpre_at_1k_fresh(self, timing_error_model,
                                                 reference_condition):
        # Section 5.2.2: reducing tPRE by 54% costs ~35 errors at (1K, 0).
        delta = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.54), reference_condition)
        assert delta == pytest.approx(35.0, rel=0.3)

    def test_paper_anchor_20pct_teval_on_fresh_page(self, timing_error_model):
        # Section 5.2.1: a 20% tEVAL reduction costs ~30 errors even fresh.
        delta = timing_error_model.additional_errors_per_codeword(
            TimingReduction(eval_=0.2), OperatingCondition(0, 0.0, 85.0))
        assert delta == pytest.approx(30.0, rel=0.35)

    def test_small_disch_reduction_is_nearly_free(self, timing_error_model):
        # Figure 9, third observation: 7% tDISCH costs at most ~4 errors.
        for pec, months in ((0, 0.0), (1000, 0.0), (2000, 12.0)):
            delta = timing_error_model.additional_errors_per_codeword(
                TimingReduction(disch=0.07), OperatingCondition(pec, months, 85.0))
            assert delta <= 4.5

    def test_sensitivity_ordering_eval_worst(self, timing_error_model,
                                             reference_condition):
        # Equal fractional reductions: tEVAL hurts most, tPRE least.
        pre = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.2), reference_condition)
        eval_ = timing_error_model.additional_errors_per_codeword(
            TimingReduction(eval_=0.2), reference_condition)
        disch = timing_error_model.additional_errors_per_codeword(
            TimingReduction(disch=0.2), reference_condition)
        assert eval_ > disch > pre


class TestConditionScaling:
    def test_severity_normalized_at_reference(self, timing_error_model,
                                              reference_condition):
        assert timing_error_model.severity(reference_condition) == pytest.approx(1.0)

    def test_retention_raises_tpre_penalty_by_about_60pct(self, timing_error_model):
        # Figure 8(a): Delta M_ERR(2K, 12) is ~60% higher than (2K, 0).
        fresh = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.47), OperatingCondition(2000, 0.0, 85.0))
        aged = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.47), OperatingCondition(2000, 12.0, 85.0))
        assert aged / fresh == pytest.approx(1.6, rel=0.1)

    def test_variation_scales_errors(self, timing_error_model, reference_condition):
        slow_bitlines = VariationSample(timing_multiplier=1.3)
        base = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.47), reference_condition)
        worse = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.47), reference_condition, slow_bitlines)
        assert worse == pytest.approx(1.3 * base, rel=1e-6)


class TestTemperature:
    def test_low_temperature_adds_bounded_errors(self, timing_error_model):
        # Figure 10: at most ~7 extra errors at 30C vs 85C.
        for reduction in (0.2, 0.4, 0.47, 0.54, 0.6):
            hot = timing_error_model.additional_errors_per_codeword(
                TimingReduction(pre=reduction), OperatingCondition(2000, 12.0, 85.0))
            cold = timing_error_model.additional_errors_per_codeword(
                TimingReduction(pre=reduction), OperatingCondition(2000, 12.0, 30.0))
            assert cold >= hot
            assert cold - hot <= 7.5


class TestCombinedReductions:
    def test_combination_is_super_additive(self, timing_error_model,
                                           reference_condition):
        # Figure 9: the coupling through partially discharged bitlines makes
        # the combination cost more than the sum of its parts.
        pre_only = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.54), reference_condition)
        disch_only = timing_error_model.additional_errors_per_codeword(
            TimingReduction(disch=0.20), reference_condition)
        combined = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.54, disch=0.20), reference_condition)
        assert combined > pre_only + disch_only

    def test_combined_54_20_exceeds_capability(self, timing_error_model,
                                               reference_condition):
        combined = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=0.54, disch=0.20), reference_condition)
        assert combined > 72


class TestSafeReductionSearch:
    def test_safe_pre_reduction_within_budget(self, timing_error_model):
        condition = OperatingCondition(2000, 12.0, 30.0)
        reduction = timing_error_model.safe_pre_reduction(condition,
                                                          error_budget=18.0)
        assert 0.3 <= reduction <= 0.5
        delta = timing_error_model.additional_errors_per_codeword(
            TimingReduction(pre=reduction), condition)
        assert delta <= 18.0

    def test_zero_budget_means_no_reduction(self, timing_error_model):
        condition = OperatingCondition(2000, 12.0, 30.0)
        assert timing_error_model.safe_pre_reduction(condition, -5.0) == 0.0
