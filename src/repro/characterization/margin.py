"""ECC-capability margin in the final retry step (Figures 4(b) and 7).

Section 5.1 of the paper observes that although a read-retry is triggered
precisely because the ECC capability was exceeded, the *final* (successful)
retry step uses near-optimal read voltages and therefore leaves a large
unused ECC margin — at least 44% of the 72-bit capability even at
(2K P/E cycles, 12 months, 30 degC).  That margin is what AR2 spends on a
reduced tPRE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.characterization.platform import VirtualTestPlatform
from repro.errors.calibration import ECC_CALIBRATION
from repro.errors.condition import (
    CHARACTERIZATION_PE_CYCLES,
    CHARACTERIZATION_RETENTION_MONTHS,
    CHARACTERIZATION_TEMPERATURES_C,
    OperatingCondition,
)
from repro.nand.geometry import PageType


@dataclass(frozen=True)
class FinalStepErrors:
    """M_ERR for one operating condition (one cell of Figure 7)."""

    condition: OperatingCondition
    max_errors: float
    mean_errors: float

    @property
    def margin_bits(self) -> float:
        """ECC-capability margin left in the final retry step."""
        return ECC_CALIBRATION.capability_bits - self.max_errors

    @property
    def margin_fraction(self) -> float:
        """Margin as a fraction of the ECC capability (44.4% in the paper's
        worst case)."""
        return self.margin_bits / ECC_CALIBRATION.capability_bits


def final_step_error_sweep(
        platform: VirtualTestPlatform = None,
        pe_cycles: Sequence[int] = CHARACTERIZATION_PE_CYCLES,
        retention_months: Sequence[float] = CHARACTERIZATION_RETENTION_MONTHS,
        temperatures_c: Sequence[float] = CHARACTERIZATION_TEMPERATURES_C,
) -> Dict[Tuple[float, int, float], FinalStepErrors]:
    """Measure M_ERR over the Figure 7 grid.

    :return: mapping from ``(temperature, pe_cycles, retention_months)`` to
        the measured final-retry-step error statistics.
    """
    platform = platform or VirtualTestPlatform()
    results: Dict[Tuple[float, int, float], FinalStepErrors] = {}
    for temperature in temperatures_c:
        for pec in pe_cycles:
            for months in retention_months:
                condition = OperatingCondition(pe_cycles=pec,
                                               retention_months=months,
                                               temperature_c=temperature)
                values = [platform.final_step_errors(sample, condition)
                          for sample in platform.pages()]
                results[(temperature, pec, months)] = FinalStepErrors(
                    condition=condition,
                    max_errors=float(max(values)),
                    mean_errors=float(sum(values) / len(values)),
                )
    return results


def ecc_margin_sweep(platform: VirtualTestPlatform = None,
                     **kwargs) -> List[dict]:
    """Figure 7 rendered as printable rows (M_ERR and margin per condition)."""
    results = final_step_error_sweep(platform, **kwargs)
    rows = []
    for (temperature, pec, months), stats in sorted(results.items()):
        rows.append({
            "temperature_c": temperature,
            "pe_cycles": pec,
            "retention_months": months,
            "m_err": round(stats.max_errors, 1),
            "margin_bits": round(stats.margin_bits, 1),
            "margin_fraction": round(stats.margin_fraction, 3),
        })
    return rows


def rber_per_retry_step(platform: VirtualTestPlatform = None,
                        conditions: Sequence[OperatingCondition] = None,
                        last_steps: int = 4) -> List[dict]:
    """Figure 4(b): raw bit errors over the last retry steps of a read.

    The paper shows two pages whose reads need 16 and 21 retry steps; the
    error count collapses in the final step because its read voltages are
    nearly optimal.  By default this sweep picks two aged conditions that
    produce comparable step counts with the calibrated model.
    """
    platform = platform or VirtualTestPlatform(num_chips=2, blocks_per_chip=1,
                                               wordlines_per_block=1,
                                               page_types=(PageType.CSB,))
    if conditions is None:
        conditions = (
            OperatingCondition(pe_cycles=2000, retention_months=6.0,
                               temperature_c=30.0),
            OperatingCondition(pe_cycles=2000, retention_months=12.0,
                               temperature_c=30.0),
        )
    rows = []
    sample = platform.pages()[0]
    for condition in conditions:
        outcome = platform.read_test(sample, condition)
        errors = list(outcome.errors_per_step)
        total_steps = outcome.retry_steps
        tail = errors[-(last_steps + 1):]
        rows.append({
            "condition": condition.label(),
            "total_retry_steps": total_steps,
            "last_step_errors": [round(value, 1) for value in tail],
            "final_step_errors": round(errors[-1], 1),
            "ecc_capability": ECC_CALIBRATION.capability_bits,
        })
    return rows
