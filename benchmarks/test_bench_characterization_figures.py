"""Benchmarks regenerating the characterization figures (4b, 5, 7, 8, 9, 10, 11).

Each benchmark produces the same rows as the corresponding
``repro.experiments`` module and asserts the headline property the paper
reports, so the benchmark doubles as an end-to-end regression check of the
characterization pipeline.
"""

import pytest

from conftest import run_once

from repro.characterization.margin import ecc_margin_sweep, rber_per_retry_step
from repro.characterization.retry_profile import profile_retry_steps
from repro.characterization.rpt_builder import build_rpt, minimum_safe_tpre_sweep
from repro.characterization.timing_sweep import (
    combined_parameter_sweep,
    individual_parameter_sweep,
    temperature_sweep,
)


@pytest.mark.figure("fig04b")
def test_bench_fig04b_rber_per_retry_step(benchmark):
    rows = run_once(benchmark, rber_per_retry_step)
    assert len(rows) == 2
    for row in rows:
        # The final retry step collapses below the ECC capability.
        assert row["final_step_errors"] <= row["ecc_capability"]
        assert row["total_retry_steps"] >= 10


@pytest.mark.figure("fig05")
def test_bench_fig05_retry_profile(benchmark, bench_platform):
    profiles = run_once(benchmark, profile_retry_steps, bench_platform)
    worst = profiles[(2000, 12.0)]
    fresh = profiles[(0, 0.0)]
    assert fresh.max_steps == 0
    assert 15.0 <= worst.mean_steps <= 26.0


@pytest.mark.figure("fig07")
def test_bench_fig07_ecc_margin(benchmark, bench_platform):
    rows = run_once(benchmark, ecc_margin_sweep, bench_platform,
                    temperatures_c=(85.0, 30.0))
    worst = next(row for row in rows
                 if row["temperature_c"] == 30.0 and row["pe_cycles"] == 2000
                 and row["retention_months"] == 12.0)
    # A large ECC-capability margin remains even at the worst condition.
    assert worst["margin_fraction"] >= 0.3


@pytest.mark.figure("fig08")
def test_bench_fig08_individual_timing_sweep(benchmark, bench_platform):
    sweeps = run_once(benchmark, individual_parameter_sweep, bench_platform)
    eval_fresh = next(row for row in sweeps["eval"]
                      if row["pe_cycles"] == 0 and row["retention_months"] == 0.0
                      and row["reduction"] == pytest.approx(0.20))
    assert eval_fresh["delta_m_err"] >= 20.0


@pytest.mark.figure("fig09")
def test_bench_fig09_combined_timing_sweep(benchmark, bench_platform):
    rows = run_once(benchmark, combined_parameter_sweep, bench_platform,
                    conditions=((1000, 0.0), (2000, 12.0)))
    combined = next(row for row in rows
                    if row["pe_cycles"] == 1000
                    and row["pre_reduction"] == pytest.approx(0.54)
                    and row["disch_reduction"] == pytest.approx(0.20))
    assert combined["m_err"] > 72.0


@pytest.mark.figure("fig10")
def test_bench_fig10_temperature_sweep(benchmark, bench_platform):
    rows = run_once(benchmark, temperature_sweep, bench_platform,
                    pe_cycles=(2000,), retention_months=(12.0,))
    assert max(row["extra_errors_vs_85c"] for row in rows) <= 8.0


@pytest.mark.figure("fig11")
def test_bench_fig11_minimum_safe_tpre(benchmark):
    rows = run_once(benchmark, minimum_safe_tpre_sweep)
    reductions = [row["max_pre_reduction_pct"] for row in rows]
    assert min(reductions) >= 40.0
    assert max(reductions) <= 60.0


@pytest.mark.figure("fig13")
def test_bench_rpt_build(benchmark):
    """Offline RPT profiling cost (the Figure 13 table AR2 consumes)."""
    rpt = run_once(benchmark, build_rpt)
    assert rpt.storage_bytes() <= 1024
