"""Inline suppression pragmas: ``# repro-lint: disable=<rule>``.

A pragma comment suppresses findings of the named rule(s):

* ``# repro-lint: disable=no-wall-clock`` on (or trailing) a line suppresses
  that rule's findings on that line;
* ``# repro-lint: disable=rule-a,rule-b`` names several rules;
* ``# repro-lint: disable=all`` suppresses every rule on the line;
* ``# repro-lint: disable-file=<rule>`` anywhere in a file suppresses the
  rule(s) for the whole file.

Comments are found with :mod:`tokenize`, so pragma-looking text inside
string literals is ignored.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Tuple

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)

#: The wildcard rule name matching every rule.
ALL_RULES = "all"


class PragmaIndex:
    """Per-file index of suppression pragmas, queried per finding."""

    def __init__(
        self,
        line_rules: Dict[int, FrozenSet[str]],
        file_rules: FrozenSet[str] = frozenset(),
    ):
        self._line_rules = dict(line_rules)
        self._file_rules = frozenset(file_rules)

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        line_rules: Dict[int, FrozenSet[str]] = {}
        file_rules: FrozenSet[str] = frozenset()
        for line, scope, rules in _iter_pragmas(source):
            if scope == "disable-file":
                file_rules = file_rules | rules
            else:
                line_rules[line] = line_rules.get(line, frozenset()) | rules
        return cls(line_rules, file_rules)

    def suppressed(self, rule_name: str, line: int) -> bool:
        """Whether a finding of ``rule_name`` on ``line`` is pragma-suppressed."""
        names = self._file_rules | self._line_rules.get(line, frozenset())
        return rule_name in names or ALL_RULES in names


def _iter_pragmas(source: str):
    """Yield ``(line, scope, rule_names)`` for each pragma comment."""
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            name.strip() for name in match.group("rules").split(",") if name.strip()
        )
        yield token.start[0], match.group("scope"), rules


def pragma_names(source: str) -> Tuple[str, ...]:
    """Every rule name referenced by a pragma in ``source`` (sorted, unique)."""
    names = set()
    for _line, _scope, rules in _iter_pragmas(source):
        names.update(rules)
    return tuple(sorted(names))
