"""Fleet capacity: max sustainable arrival rate under a p99 SLO.

The production question behind the paper's mechanisms: given an array of N
aged SSDs behind a striping/replication front-end serving a multi-tenant
workload mix, what aggregate arrival rate can the array sustain while the
p99 response time stays within the SLO — and how much more load does a
better read-retry policy buy?

The experiment builds a :class:`~repro.sim.fleet.FleetSpec` from its
parameters, mixes the named Table 2 workloads as tenants (each confined to
its own namespace slice of the array), and runs
:class:`~repro.sim.fleet.SloCapacitySearch` — geometric bracketing plus
bisection over the aggregate arrival rate — for each policy.  Rows report
every probe (rate, measured p99, SLO verdict) plus the per-device balance
at the found capacity; headlines compare the policies' capacities, i.e.
"PnAR2 serves X% more load than Baseline under the same SLO".

The per-device fleet simulations fan out over the shared worker pool
(``processes``); parallel runs are bitwise-identical to serial ones.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.experiments.api import param, register_experiment
from repro.experiments.common import default_experiment_config
from repro.experiments.reporting import ExperimentResult
from repro.sim.fleet import FleetRunner, FleetSpec, SloCapacitySearch
from repro.sim.spec import Condition, WorkloadSpec
from repro.workloads.tenants import TenantMix

#: Every row carries the full column set; probe rows leave the device
#: columns empty and device rows the probe columns.
_ROW_COLUMNS = (
    "policy", "kind", "probe", "rate_rps", "mean_interarrival_us",
    "p99_response_us", "meets_slo", "device", "host_reads", "host_writes",
    "mean_response_us", "p999_response_us", "die_utilization",
)


def _normalized_row(**values) -> dict:
    row = dict.fromkeys(_ROW_COLUMNS)
    row.update(values)
    return row


@register_experiment(
    "fleet_capacity",
    artifact="Fleet capacity — max sustainable load under a p99 SLO",
    tags=("system", "fleet"),
    params=(
        param("devices", 8, "SSDs in the array", fast=4, smoke=2),
        param("replication", 2, "copies of every stripe unit",
              fast=1, smoke=1),
        param("stripe_unit_pages", 8, "pages per stripe unit"),
        param("tenants", ("usr_1", "YCSB-C", "stg_0"),
              "Table 2 workloads mixed as tenants",
              fast=("usr_1", "YCSB-C"), smoke=("usr_1",)),
        param("num_requests", 1500, "host requests per tenant per probe",
              fast=400, smoke=200),
        param("policies", ("Baseline", "PnAR2"),
              "policies whose capacity is searched",
              smoke=("PnAR2",)),
        param("target_p99_us", 8000.0, "the array p99 SLO in microseconds",
              fast=7000.0, smoke=6000.0),
        param("tolerance", 0.05,
              "relative rate tolerance the search converges to",
              fast=0.08, smoke=0.10),
        param("max_probes", 12, "fleet runs per policy at most",
              fast=10, smoke=8),
        param("condition", (1000, 6.0), "(PEC, months) the devices aged to"),
        param("seed", 0, "stream seed"),
        param("processes", 1, "worker processes for the device simulations",
              cache_relevant=False),
    ))
def run(devices: int = 8,
        replication: int = 2,
        stripe_unit_pages: int = 8,
        tenants: Sequence[str] = ("usr_1", "YCSB-C", "stg_0"),
        num_requests: int = 1500,
        policies: Sequence[str] = ("Baseline", "PnAR2"),
        target_p99_us: float = 8000.0,
        tolerance: float = 0.05,
        max_probes: int = 12,
        condition: Tuple[int, float] = (1000, 6.0),
        seed: int = 0,
        config=None,
        processes: int = 1) -> ExperimentResult:
    """Search each policy's SLO capacity on a multi-tenant SSD array."""
    config = config or default_experiment_config()
    if isinstance(policies, str):
        policies = (policies,)
    if isinstance(tenants, str):
        tenants = (tenants,)
    spec = FleetSpec(devices=devices, replication=replication,
                     stripe_unit_pages=stripe_unit_pages, config=config,
                     condition=Condition.coerce(tuple(condition)))
    mix = TenantMix(tenants=tuple(
        WorkloadSpec(name=name, num_requests=num_requests,
                     seed=seed + index, mean_interarrival_us=700.0)
        for index, name in enumerate(tenants)))
    runner = FleetRunner(spec=spec, processes=processes)
    search = SloCapacitySearch(runner, target_p99_us=target_p99_us,
                               tolerance=tolerance, max_probes=max_probes)

    rows = []
    capacities = {}
    for policy in policies:
        result = search.find(mix, policy=policy)
        capacities[result.policy] = result
        for probe in result.probe_rows():
            rows.append(_normalized_row(
                policy=result.policy, kind="probe", **probe))
        if result.fleet is not None:
            for device_row in result.fleet.device_rows():
                rows.append(_normalized_row(kind="device", **device_row))

    headline = {}
    for name, result in capacities.items():
        rate = result.max_rate_rps
        headline[f"{name} capacity (p99 <= {target_p99_us:g} us)"] = (
            f"{rate:.0f} req/s" if rate is not None else "below search range")
        headline[f"{name} search converged"] = result.converged
        if result.fleet is not None:
            headline[f"{name} utilization skew at capacity"] = round(
                result.fleet.utilization_skew(), 3)
    baseline = capacities.get("Baseline")
    if (baseline is not None and baseline.max_rate_rps
            and len(capacities) > 1):
        for name, result in capacities.items():
            if name == "Baseline" or not result.max_rate_rps:
                continue
            gain = result.max_rate_rps / baseline.max_rate_rps - 1.0
            headline[f"{name} capacity gain over Baseline"] = f"{gain:+.1%}"

    tenant_text = "+".join(tenants)
    return ExperimentResult(
        name="fleet_capacity",
        title=(f"Fleet capacity: {devices}-device array "
               f"(replication {replication}), p99 SLO {target_p99_us:g} us"),
        rows=rows,
        headline=headline,
        notes=[
            f"tenant mix {tenant_text} x {num_requests} requests/tenant/"
            f"probe at {condition[0]} PEC / {condition[1]:g} months; the "
            "search brackets then geometrically bisects the aggregate "
            f"arrival rate until the bracket is within {tolerance:.0%}; "
            "array p99 is measured on the merged per-device histograms "
            "(sub-request granularity: replicated writes count once per "
            "copy)",
        ],
    )


def main() -> None:  # pragma: no cover
    result = run(devices=2, replication=1, tenants=("usr_1",),
                 num_requests=300, policies=("Baseline", "PnAR2"),
                 target_p99_us=6000.0, tolerance=0.1, max_probes=8)
    print(result.to_text(max_rows=60))


if __name__ == "__main__":  # pragma: no cover
    main()
