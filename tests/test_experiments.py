"""Tests for the experiment harnesses and the runner."""

import pytest

from repro.experiments import EXPERIMENT_NAMES
from repro.experiments.reporting import ExperimentResult
from repro.experiments.runner import run_experiment
from repro.experiments import (fig14, fig15, table1, table2, tail_latency,
                               wear_dynamics)


class TestReporting:
    def test_columns_and_filter(self):
        result = ExperimentResult(name="x", title="X", rows=[
            {"a": 1, "b": 2}, {"a": 1, "b": 3}, {"a": 2, "b": 4}])
        assert result.columns() == ["a", "b"]
        assert result.column("b") == [2, 3, 4]
        assert len(result.filter_rows(a=1)) == 2

    def test_to_text_renders_headline_and_rows(self):
        result = ExperimentResult(name="x", title="Title",
                                  rows=[{"a": 1}],
                                  headline={"key": "value"},
                                  notes=["caveat"])
        text = result.to_text()
        assert "Title" in text
        assert "key: value" in text
        assert "caveat" in text

    def test_to_text_row_limit(self):
        result = ExperimentResult(name="x", title="T",
                                  rows=[{"a": i} for i in range(10)])
        text = result.to_text(max_rows=3)
        assert "more rows" in text

    def test_empty_result_renders(self):
        assert "T" in ExperimentResult(name="x", title="T").to_text()


class TestStaticExperiments:
    def test_table1_matches_timing_parameters(self):
        result = table1.run()
        assert result.headline["tPROG [us]"] == 700.0
        rows = {row["parameter"]: row["time_us"] for row in result.rows}
        assert rows["tDMA"] == 16.0
        assert rows["tECC"] == 20.0

    def test_table2_measured_ratios_close_to_paper(self):
        result = table2.run(num_requests=1500, footprint_pages=6000)
        assert result.headline["workloads"] == 12
        assert result.headline["largest paper-vs-measured ratio gap"] <= 0.15


class TestRunner:
    def test_experiment_names_are_registered(self):
        assert "fig05" in EXPERIMENT_NAMES
        assert "fig14" in EXPERIMENT_NAMES

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")

    def test_run_experiment_fast_characterization(self):
        result = run_experiment("fig11", fast=True)
        assert result.name == "fig11"
        assert result.headline["smallest safe tPRE reduction [%]"] >= 40.0

    def test_run_experiment_overrides(self):
        result = run_experiment("fig05", fast=True, num_chips=2)
        assert result.rows


class TestSystemExperiments:
    """Small smoke runs of the Figure 14/15 harnesses."""

    @pytest.fixture(scope="class")
    def fig14_result(self):
        return fig14.run(workloads=("usr_1",), conditions=((1000, 6.0),),
                         num_requests=120)

    def test_fig14_rows_cover_all_policies(self, fig14_result):
        policies = {row["policy"] for row in fig14_result.rows}
        assert policies == {"Baseline", "PR2", "AR2", "PnAR2", "NoRR"}

    def test_fig14_baseline_normalized_to_one(self, fig14_result):
        for row in fig14_result.filter_rows(policy="Baseline"):
            assert row["normalized_response_time"] == pytest.approx(1.0)

    def test_fig14_pnar2_improves_over_baseline(self, fig14_result):
        for row in fig14_result.filter_rows(policy="PnAR2"):
            assert row["normalized_response_time"] < 1.0

    def test_fig14_norr_is_lower_bound(self, fig14_result):
        by_policy = {row["policy"]: row["normalized_response_time"]
                     for row in fig14_result.rows}
        assert by_policy["NoRR"] <= min(by_policy.values())

    def test_fig15_pso_combined_beats_pso(self):
        result = fig15.run(workloads=("YCSB-C",), conditions=((2000, 12.0),),
                           num_requests=120)
        by_policy = {row["policy"]: row["normalized_response_time"]
                     for row in result.rows}
        assert by_policy["PSO+PnAR2"] < by_policy["PSO"] < 1.0


class TestTailLatencyExperiment:
    """Smoke runs of the tail-latency harness."""

    @pytest.fixture(scope="class")
    def tail_result(self):
        return tail_latency.run(workloads=("usr_1",),
                                conditions=((1000, 6.0),), num_requests=120)

    def test_rows_cover_all_policies_with_tail_columns(self, tail_result):
        policies = {row["policy"] for row in tail_result.rows}
        assert policies == {"Baseline", "PR2", "AR2", "PnAR2", "NoRR"}
        for row in tail_result.rows:
            assert row["p999_response_us"] >= row["p99_response_us"] \
                >= row["p50_response_us"] >= 0.0

    def test_pnar2_shortens_the_tail(self, tail_result):
        by_policy = {row["policy"]: row for row in tail_result.rows}
        assert by_policy["PnAR2"]["p99_response_us"] < \
            by_policy["Baseline"]["p99_response_us"]
        assert by_policy["PnAR2"]["p999_response_us"] < \
            by_policy["Baseline"]["p999_response_us"]

    def test_headline_reports_merged_tails(self, tail_result):
        assert "PnAR2 p99 reduction vs Baseline" in tail_result.headline
        assert "Baseline merged p99/p999 (us)" in tail_result.headline

    def test_serial_equals_parallel(self, tail_result):
        parallel = tail_latency.run(workloads=("usr_1",),
                                    conditions=((1000, 6.0),),
                                    num_requests=120, processes=2)
        assert parallel.rows == tail_result.rows
        assert parallel.headline == tail_result.headline


class TestWearDynamicsExperiment:
    """Smoke runs of the DFTL wear-dynamics harness."""

    @pytest.fixture(scope="class")
    def wear_result(self):
        return wear_dynamics.run(workloads=("stg_0",), num_requests=300)

    def test_rows_cover_all_policies_under_live_gc(self, wear_result):
        policies = {row["policy"] for row in wear_result.rows}
        assert policies == {"Baseline", "PR2", "AR2", "PnAR2", "NoRR"}
        for row in wear_result.rows:
            assert row["gc_invocations"] > 0
            assert row["gc_erases"] > 0
            assert row["translation_reads"] > 0
            assert row["translation_writes"] > 0
            assert row["write_amplification"] > 1.0
            assert 0.0 < row["mapping_cache_hit_rate"] < 1.0
            assert row["distinct_read_conditions"] > 1
            assert row["p999_response_us"] >= row["p99_response_us"] > 0.0

    def test_headline_reports_tails_and_wear_costs(self, wear_result):
        for policy in ("Baseline", "PR2", "AR2", "PnAR2", "NoRR"):
            assert f"{policy} p99/p999 under GC (us)" in wear_result.headline
        assert float(wear_result.headline["write amplification"]) > 1.0
        assert int(wear_result.headline["gc invocations"]) > 0
        assert wear_result.headline["mapping cache hit rate"].endswith("%")

    def test_norr_is_lower_bound_under_gc(self, wear_result):
        by_policy = {row["policy"]: row["normalized_response_time"]
                     for row in wear_result.rows}
        assert by_policy["NoRR"] <= min(by_policy.values())

    def test_serial_equals_parallel(self, wear_result):
        parallel = wear_dynamics.run(workloads=("stg_0",),
                                     num_requests=300, processes=2)
        assert parallel.rows == wear_result.rows
        assert parallel.headline == wear_result.headline
