"""Tests for host requests, flash transactions and failure-path behaviour."""

import pytest

from repro.nand.voltage import ReadRetryTable
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SsdSimulator
from repro.ssd.flash_backend import FlashBackend
from repro.ssd.ftl import PhysicalPage
from repro.ssd.request import (
    FlashTransaction,
    HostRequest,
    RequestKind,
    TransactionKind,
)
from repro.nand.geometry import PageType


class TestHostRequest:
    def test_lpns_and_pending_pages(self):
        request = HostRequest(arrival_us=10.0, kind=RequestKind.READ,
                              start_lpn=5, page_count=3)
        assert request.lpns == [5, 6, 7]
        assert request.pending_pages == 3
        assert request.is_read

    def test_response_time(self):
        request = HostRequest(arrival_us=10.0, kind=RequestKind.WRITE,
                              start_lpn=0)
        assert request.response_time_us is None
        request.completion_us = 35.0
        assert request.response_time_us == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HostRequest(arrival_us=-1.0, kind=RequestKind.READ, start_lpn=0)
        with pytest.raises(ValueError):
            HostRequest(arrival_us=0.0, kind=RequestKind.READ, start_lpn=0,
                        page_count=0)
        with pytest.raises(ValueError):
            HostRequest(arrival_us=0.0, kind=RequestKind.READ, start_lpn=-3)

    def test_request_ids_unique(self):
        first = HostRequest(0.0, RequestKind.READ, 0)
        second = HostRequest(0.0, RequestKind.READ, 0)
        assert first.request_id != second.request_id


class TestFlashTransaction:
    def test_kind_classification(self):
        assert TransactionKind.GC_READ.is_read
        assert TransactionKind.GC_PROGRAM.is_background
        assert not TransactionKind.PROGRAM.is_background

    def test_waiting_time(self):
        transaction = FlashTransaction(kind=TransactionKind.READ, lpn=1,
                                       channel=0, die=0, plane=0, block=0,
                                       page=0, issue_us=100.0)
        assert transaction.waiting_time_us is None
        transaction.service_start_us = 160.0
        assert transaction.waiting_time_us == pytest.approx(60.0)
        assert transaction.die_key() == (0, 0)


class TestReadFailurePath:
    """A retry table too short for the V_TH shift: the read fails outright
    (footnote 13) and the backend charges the full table walk."""

    def test_backend_charges_full_table_on_failure(self, default_rpt):
        config = SsdConfig.tiny()
        tiny_table = ReadRetryTable(num_entries=4)
        backend = FlashBackend(config, rpt=default_rpt, retry_table=tiny_table)
        behaviour = backend.read_behaviour(
            PhysicalPage(0, 0, 0, 1, 3), PageType.CSB,
            pe_cycles=2000, retention_months=12.0)
        assert behaviour.retry_steps == tiny_table.num_entries

    def test_simulation_survives_unreadable_pages(self, default_rpt):
        config = SsdConfig.tiny()
        simulator = SsdSimulator(config, policy="Baseline", rpt=default_rpt)
        # A custom retry table gives the backend a private grid, so the
        # shortened table cannot pollute the process-shared one.
        simulator.backend = FlashBackend(
            config, rpt=default_rpt, retry_table=ReadRetryTable(num_entries=4))
        simulator.precondition(pe_cycles=2000, retention_months=12.0)
        requests = [HostRequest(i * 200.0, RequestKind.READ, i)
                    for i in range(10)]
        result = simulator.run(requests)
        assert result.metrics.host_reads == 10
        # Every read paid for the whole (short) table.
        assert result.metrics.mean_retry_steps() == pytest.approx(4.0)
