"""Storage workloads: trace format and synthetic generators.

The paper evaluates twelve block-I/O workloads (Table 2): six enterprise
traces from the Microsoft Research Cambridge (MSRC) suite and six YCSB
key-value workloads.  The original traces are not redistributable, so this
subpackage provides:

* :mod:`repro.workloads.trace` — a trace-record format plus a reader/writer
  for the MSRC CSV layout, so the harness can also replay real traces when
  they are available;
* :mod:`repro.workloads.synthetic` — a parametric generator reproducing the
  two characteristics the evaluation is sensitive to: the *read ratio* and
  the *cold ratio* (fraction of reads whose target page is never updated and
  therefore keeps a long retention age);
* :mod:`repro.workloads.msrc` and :mod:`repro.workloads.ycsb` — presets that
  shape the generic generator like the respective suites;
* :mod:`repro.workloads.catalog` — Table 2 itself, mapping workload names to
  their parameters.
"""

from repro.workloads.trace import (
    TraceRecord,
    iter_msrc_csv,
    iter_records_to_requests,
    read_msrc_csv,
    records_to_requests,
    write_msrc_csv,
)
from repro.workloads.router import StripeRouter
from repro.workloads.synthetic import SyntheticWorkload, WorkloadShape
from repro.workloads.catalog import (
    WORKLOAD_CATALOG,
    WorkloadSpec,
    generate_workload,
    iter_workload,
    workload_names,
)

__all__ = [
    "TraceRecord",
    "iter_msrc_csv",
    "read_msrc_csv",
    "write_msrc_csv",
    "iter_records_to_requests",
    "records_to_requests",
    "StripeRouter",
    "SyntheticWorkload",
    "WorkloadShape",
    "WorkloadSpec",
    "WORKLOAD_CATALOG",
    "workload_names",
    "generate_workload",
    "iter_workload",
]
