"""Latency equations of the paper (Equations (1) to (5)).

These functions translate "a read of this page type needed ``N_RR`` retry
steps under policy X" into latency numbers:

* Equation (1): ``tR = N_SENSE * (tPRE + tEVAL + tDISCH)`` — provided by
  :class:`repro.nand.timing.ReadTimingParameters`.
* Equation (2): ``tREAD = tR + tDMA + tECC + tRETRY``.
* Equation (3): regular read-retry, ``tRETRY = N_RR * (tR + tDMA + tECC)``.
* Equation (4): PR2, ``tRETRY = N_RR * tR + tDMA + tECC`` — the data
  transfer and ECC decoding of all but the final step are hidden behind the
  pipelined sensing of the next step (Figure 12(b)).
* Equation (5): PnAR2, ``tRETRY = tSET + rho * N_RR * tR + tDMA + tECC`` —
  every retry step is additionally shortened by the tPRE reduction that the
  RPT prescribes for the current operating condition (Figure 13).

The :class:`ReadLatencyModel` also reports how long the die and the channel
bus stay busy, which is what the event-driven SSD simulator schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nand.geometry import PageType
from repro.nand.timing import ReadTimingParameters, TimingParameters


@dataclass(frozen=True)
class ReadLatencyBreakdown:
    """Latency decomposition of one page read (all values in microseconds).

    :param response_us: time from the start of page sensing until the page's
        data has been transferred and successfully decoded (what the host
        observes, ignoring queueing).
    :param die_busy_us: how long the target die is occupied and cannot serve
        other transactions (includes the speculative retry step that PR2
        cancels with RESET and the SET FEATURE rollback of AR2).
    :param channel_busy_us: total time the channel bus spends transferring
        this read's data to the controller.
    :param ecc_busy_us: total ECC-engine time spent on this read.
    :param retry_steps: number of retry steps the read performed.
    """

    response_us: float
    die_busy_us: float
    channel_busy_us: float
    ecc_busy_us: float
    retry_steps: int

    def __post_init__(self) -> None:
        if self.retry_steps < 0:
            raise ValueError("retry_steps must be non-negative")
        for name in ("response_us", "die_busy_us", "channel_busy_us",
                     "ecc_busy_us"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class ReadLatencyModel:
    """Computes read latencies under the different read-retry mechanisms."""

    def __init__(self, timing: TimingParameters = None):
        self.timing = timing or TimingParameters()

    # -- building blocks --------------------------------------------------------
    def sensing_latency_us(self, page_type: PageType,
                           read_timing: ReadTimingParameters = None) -> float:
        """Equation (1): chip-level sensing latency ``tR``."""
        return self.timing.t_r_us(page_type, read_timing)

    def step_latency_us(self, page_type: PageType,
                        read_timing: ReadTimingParameters = None) -> float:
        """Latency of one non-pipelined read step: ``tR + tDMA + tECC``."""
        return (self.sensing_latency_us(page_type, read_timing)
                + self.timing.t_dma_page_us + self.timing.t_ecc_us)

    # -- Equations (2)-(5) -------------------------------------------------------
    def baseline(self, retry_steps: int, page_type: PageType) -> ReadLatencyBreakdown:
        """Regular read-retry (Equations (2) and (3), Figure 12(a))."""
        self._check_steps(retry_steps)
        step = self.step_latency_us(page_type)
        response = (retry_steps + 1) * step
        return ReadLatencyBreakdown(
            response_us=response,
            die_busy_us=response,
            channel_busy_us=(retry_steps + 1) * self.timing.t_dma_page_us,
            ecc_busy_us=(retry_steps + 1) * self.timing.t_ecc_us,
            retry_steps=retry_steps,
        )

    def pr2(self, retry_steps: int, page_type: PageType) -> ReadLatencyBreakdown:
        """Pipelined Read-Retry (Equation (4), Figure 12(b)).

        Consecutive retry steps are issued with CACHE READ immediately after
        the previous step's sensing completes, so only the final step's data
        transfer and ECC decode remain on the critical path.  The
        speculatively started extra step is cancelled with RESET, which keeps
        the die busy for ``tRST`` beyond the response time.
        """
        self._check_steps(retry_steps)
        t_r = self.sensing_latency_us(page_type)
        tail = self.timing.t_dma_page_us + self.timing.t_ecc_us
        response = (retry_steps + 1) * t_r + tail
        die_busy = response + (self.timing.t_reset_read_us if retry_steps else 0.0)
        return ReadLatencyBreakdown(
            response_us=response,
            die_busy_us=die_busy,
            channel_busy_us=(retry_steps + 1) * self.timing.t_dma_page_us,
            ecc_busy_us=(retry_steps + 1) * self.timing.t_ecc_us,
            retry_steps=retry_steps,
        )

    def ar2(self, retry_steps: int, page_type: PageType,
            reduced_timing: ReadTimingParameters) -> ReadLatencyBreakdown:
        """Adaptive Read-Retry without pipelining (Section 6.2).

        The initial read uses the default timing parameters; once it fails,
        the controller installs the RPT-prescribed reduced tPRE with
        SET FEATURE, performs every retry step with the shorter ``tR``, and
        rolls the parameters back afterwards (the rollback is off the
        response-time critical path but keeps the die busy).
        """
        self._check_steps(retry_steps)
        default_step = self.step_latency_us(page_type)
        if retry_steps == 0:
            return ReadLatencyBreakdown(
                response_us=default_step, die_busy_us=default_step,
                channel_busy_us=self.timing.t_dma_page_us,
                ecc_busy_us=self.timing.t_ecc_us, retry_steps=0)
        reduced_step = self.step_latency_us(page_type, reduced_timing)
        response = (default_step + self.timing.t_set_feature_us
                    + retry_steps * reduced_step)
        die_busy = response + self.timing.t_set_feature_us
        return ReadLatencyBreakdown(
            response_us=response,
            die_busy_us=die_busy,
            channel_busy_us=(retry_steps + 1) * self.timing.t_dma_page_us,
            ecc_busy_us=(retry_steps + 1) * self.timing.t_ecc_us,
            retry_steps=retry_steps,
        )

    def pnar2(self, retry_steps: int, page_type: PageType,
              reduced_timing: ReadTimingParameters) -> ReadLatencyBreakdown:
        """PR2 and AR2 combined (Equation (5), Figure 13)."""
        self._check_steps(retry_steps)
        default_step = self.step_latency_us(page_type)
        if retry_steps == 0:
            return ReadLatencyBreakdown(
                response_us=default_step, die_busy_us=default_step,
                channel_busy_us=self.timing.t_dma_page_us,
                ecc_busy_us=self.timing.t_ecc_us, retry_steps=0)
        reduced_t_r = self.sensing_latency_us(page_type, reduced_timing)
        tail = self.timing.t_dma_page_us + self.timing.t_ecc_us
        response = (default_step + self.timing.t_set_feature_us
                    + retry_steps * reduced_t_r + tail)
        die_busy = (response + self.timing.t_reset_read_us
                    + self.timing.t_set_feature_us)
        return ReadLatencyBreakdown(
            response_us=response,
            die_busy_us=die_busy,
            channel_busy_us=(retry_steps + 1) * self.timing.t_dma_page_us,
            ecc_busy_us=(retry_steps + 1) * self.timing.t_ecc_us,
            retry_steps=retry_steps,
        )

    def no_retry(self, page_type: PageType) -> ReadLatencyBreakdown:
        """The ideal NoRR configuration: every read succeeds immediately."""
        return self.baseline(0, page_type)

    # -- helpers ------------------------------------------------------------------
    @staticmethod
    def _check_steps(retry_steps: int) -> None:
        if retry_steps < 0:
            raise ValueError("retry_steps must be non-negative")

    def retry_latency_us(self, retry_steps: int, page_type: PageType,
                         mechanism: str = "baseline",
                         reduced_timing: ReadTimingParameters = None) -> float:
        """``tRETRY`` alone, exactly as Equations (3)-(5) define it."""
        self._check_steps(retry_steps)
        if retry_steps == 0:
            return 0.0
        t_r = self.sensing_latency_us(page_type)
        tail = self.timing.t_dma_page_us + self.timing.t_ecc_us
        mechanism = mechanism.lower()
        if mechanism == "baseline":
            return retry_steps * (t_r + tail)
        if mechanism == "pr2":
            return retry_steps * t_r + tail
        if mechanism in ("ar2", "pnar2"):
            if reduced_timing is None:
                raise ValueError(f"{mechanism} requires reduced_timing")
            reduced_t_r = self.sensing_latency_us(page_type, reduced_timing)
            if mechanism == "ar2":
                return (self.timing.t_set_feature_us
                        + retry_steps * (reduced_t_r + tail))
            return (self.timing.t_set_feature_us
                    + retry_steps * reduced_t_r + tail)
        if mechanism in ("norr", "no_retry"):
            return 0.0
        raise ValueError(f"unknown read mechanism: {mechanism}")

    def dispatch(self, mechanism: str, retry_steps: int, page_type: PageType,
                 reduced_timing: ReadTimingParameters = None) -> ReadLatencyBreakdown:
        """Compute the breakdown for a mechanism selected by name."""
        mechanism = mechanism.lower()
        if mechanism == "baseline":
            return self.baseline(retry_steps, page_type)
        if mechanism == "pr2":
            return self.pr2(retry_steps, page_type)
        if mechanism == "ar2":
            if reduced_timing is None:
                raise ValueError("AR2 requires reduced_timing")
            return self.ar2(retry_steps, page_type, reduced_timing)
        if mechanism == "pnar2":
            if reduced_timing is None:
                raise ValueError("PnAR2 requires reduced_timing")
            return self.pnar2(retry_steps, page_type, reduced_timing)
        if mechanism in ("norr", "no_retry"):
            return self.no_retry(page_type)
        raise ValueError(f"unknown read mechanism: {mechanism}")
