"""Equivalence suite: the vectorized batch kernel versus the scalar model.

The batch kernel's contract is *bit-for-bit* equality with the scalar
:class:`~repro.errors.rber.CodewordErrorModel` — retry-step counts, the
fallback flag, failure cases, and even the raw float error values.  The
randomized sweeps here exercise conditions, page types, variation corners,
timing reductions and short retry tables against that contract, and the
Hypothesis properties pin the physical invariants (monotonicity in P/E
cycles and retention, reduced-timing walks never finishing earlier).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import CodewordErrorModel, OperatingCondition
from repro.errors.batch import BatchErrorModel, VariationArrays
from repro.errors.timing import TimingReduction
from repro.errors.variation import ProcessVariation, VariationSample
from repro.nand.geometry import PageType
from repro.nand.voltage import ReadRetryTable

_MODEL = CodewordErrorModel()
_BATCH = BatchErrorModel(_MODEL)
_TABLE = ReadRetryTable()


@pytest.fixture(scope="module")
def corners() -> VariationArrays:
    variation = ProcessVariation(seed=7)
    samples = [variation.block_sample(chip=chip, block=block)
               for chip in range(6) for block in range(20)]
    return VariationArrays.from_samples(samples)


def _random_conditions(rng, count):
    return [OperatingCondition(
        pe_cycles=int(rng.integers(0, 3001)),
        retention_months=float(rng.uniform(0.0, 13.0)),
        temperature_c=float(rng.choice([30.0, 55.0, 85.0])))
        for _ in range(count)]


class TestExpectedErrorsEquivalence:
    def test_grid_matches_scalar_bitwise(self, corners):
        rng = np.random.default_rng(0)
        shifts = [0.0, -90.0, -300.0, -750.0, -1200.0]
        for condition in _random_conditions(rng, 6):
            for page_type in PageType:
                grid = _BATCH.expected_errors_grid(
                    condition, page_type, shifts, corners)
                for index in range(len(corners)):
                    sample = corners.sample_at(index)
                    for column, shift in enumerate(shifts):
                        scalar = _MODEL.expected_errors(
                            condition, page_type, reference_shift_mv=shift,
                            variation=sample)
                        assert grid[index, column] == scalar

    def test_timing_reduction_matches_scalar_bitwise(self, corners):
        rng = np.random.default_rng(1)
        reduction = TimingReduction(pre=0.45, disch=0.1)
        for condition in _random_conditions(rng, 4):
            grid = _BATCH.expected_errors_grid(
                condition, PageType.CSB, [-240.0], corners,
                timing_reduction=reduction)
            for index in range(len(corners)):
                scalar = _MODEL.expected_errors(
                    condition, PageType.CSB, reference_shift_mv=-240.0,
                    variation=corners.sample_at(index),
                    timing_reduction=reduction)
                assert grid[index, 0] == scalar

    def test_elementwise_api_broadcasts_conditions(self, corners):
        rng = np.random.default_rng(2)
        count = len(corners)
        pe = rng.integers(0, 3001, size=count)
        retention = rng.uniform(0.0, 13.0, size=count)
        shifts = rng.uniform(-1200.0, 60.0, size=count)
        batch = _BATCH.expected_errors(pe, retention, 30.0, PageType.MSB,
                                       shifts, variation=corners)
        for index in range(count):
            scalar = _MODEL.expected_errors(
                OperatingCondition(int(pe[index]), float(retention[index]),
                                   30.0),
                PageType.MSB, reference_shift_mv=float(shifts[index]),
                variation=corners.sample_at(index))
            assert batch[index] == scalar

    def test_nominal_variation_is_default(self):
        condition = OperatingCondition(1500, 9.0, 30.0)
        batch = _BATCH.expected_errors_grid(
            condition, PageType.LSB, [0.0], VariationArrays.nominal(1))
        scalar = _MODEL.expected_errors(condition, PageType.LSB,
                                        variation=VariationSample.nominal())
        assert batch[0, 0] == scalar


class TestWalkEquivalence:
    def test_steps_fallback_and_errors_match_scalar(self, corners):
        rng = np.random.default_rng(3)
        for condition in _random_conditions(rng, 8):
            page_type = list(PageType)[int(rng.integers(0, 3))]
            reduction = (None if rng.random() < 0.4
                         else TimingReduction(pre=float(rng.uniform(0.1, 0.6))))
            outcome = _BATCH.walk_retry_table(
                condition, page_type, corners, table=_TABLE,
                retry_timing_reduction=reduction)
            for index in range(len(corners)):
                scalar = _MODEL.walk_retry_table(
                    condition, page_type, table=_TABLE,
                    variation=corners.sample_at(index),
                    retry_timing_reduction=reduction)
                expected_steps = (-1 if scalar.retry_steps is None
                                  else scalar.retry_steps)
                assert outcome.retry_steps[index] == expected_steps
                assert outcome.succeeded[index] == scalar.succeeded
                assert outcome.final_errors[index] == scalar.final_errors
                assert (outcome.best_step_errors[index]
                        == scalar.best_step_errors)
                attempted = len(scalar.errors_per_step)
                assert np.array_equal(
                    outcome.errors_per_step[index, :attempted],
                    np.asarray(scalar.errors_per_step))

    def test_short_table_produces_failures(self, corners):
        """A table too short for the V_TH shift fails in both paths."""
        short = ReadRetryTable(num_entries=4)
        condition = OperatingCondition(2000, 12.0, 30.0)
        outcome = _BATCH.walk_retry_table(condition, PageType.CSB, corners,
                                          table=short)
        assert not outcome.succeeded.all()
        for index in range(len(corners)):
            scalar = _MODEL.walk_retry_table(
                condition, PageType.CSB, table=short,
                variation=corners.sample_at(index))
            assert outcome.succeeded[index] == scalar.succeeded

    def test_capability_override(self, corners):
        condition = OperatingCondition(1000, 6.0, 30.0)
        generous = _BATCH.walk_retry_table(condition, PageType.CSB, corners,
                                           table=_TABLE, capability=10_000)
        assert (generous.retry_steps == 0).all()


class TestReadBehaviourLattice:
    def _scalar_behaviour(self, condition, page_type, sample, pre_reduction):
        """The FlashBackend recipe, computed with the scalar model."""
        walk = _MODEL.walk_retry_table(condition, page_type, table=_TABLE,
                                       variation=sample)
        default = (walk.retry_steps if walk.retry_steps is not None
                   else _TABLE.num_entries)
        if pre_reduction > 0.0 and default > 0:
            reduced_walk = _MODEL.walk_retry_table(
                condition, page_type, table=_TABLE, variation=sample,
                retry_timing_reduction=TimingReduction(pre=pre_reduction))
            if reduced_walk.retry_steps is None:
                return default, default, True
            return default, reduced_walk.retry_steps, False
        return default, default, False

    @pytest.mark.parametrize("pre_reduction", [0.0, 0.35, 0.6])
    def test_matches_flash_backend_recipe(self, corners, pre_reduction):
        rng = np.random.default_rng(4)
        for condition in _random_conditions(rng, 4):
            lattice = _BATCH.read_behaviour_lattice(
                condition, corners, pre_reduction, table=_TABLE)
            for page_type in PageType:
                batch = lattice[page_type]
                for index in range(len(corners)):
                    expected = self._scalar_behaviour(
                        condition, page_type, corners.sample_at(index),
                        pre_reduction)
                    got = (int(batch.retry_steps[index]),
                           int(batch.retry_steps_reduced[index]),
                           bool(batch.reduced_timing_fallback[index]))
                    assert got == expected

    def test_reduced_walk_never_finishes_earlier(self, corners):
        condition = OperatingCondition(2000, 12.0, 30.0)
        lattice = _BATCH.read_behaviour_lattice(condition, corners, 0.6,
                                                table=_TABLE)
        for behaviour in lattice.values():
            assert (behaviour.retry_steps_reduced
                    >= behaviour.retry_steps).all()


conditions = st.builds(
    OperatingCondition,
    pe_cycles=st.integers(min_value=0, max_value=3000),
    retention_months=st.floats(min_value=0.0, max_value=13.0,
                               allow_nan=False, allow_infinity=False),
    temperature_c=st.sampled_from([30.0, 55.0, 85.0]),
)

variation_samples = st.builds(
    VariationSample,
    shift_multiplier=st.floats(min_value=0.7, max_value=1.4),
    sigma_multiplier=st.floats(min_value=0.8, max_value=1.25),
    timing_multiplier=st.floats(min_value=0.7, max_value=1.4),
)

page_types = st.sampled_from(list(PageType))


def _steps(condition, page_type, sample):
    outcome = _BATCH.walk_retry_table(
        condition, page_type, VariationArrays.from_samples([sample]),
        table=_TABLE)
    step = int(outcome.retry_steps[0])
    # Order failures after every successful count, like the backend does
    # when it charges the full table for an unreadable page.
    return step if step >= 0 else _TABLE.num_entries + 1


class TestMonotonicityProperties:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(condition=conditions, page_type=page_types,
           sample=variation_samples,
           extra_months=st.floats(min_value=0.1, max_value=12.0))
    def test_retry_steps_monotonic_in_retention(self, condition, page_type,
                                                sample, extra_months):
        older = condition.with_retention(condition.retention_months
                                         + extra_months)
        assert (_steps(condition, page_type, sample)
                <= _steps(older, page_type, sample))

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(condition=conditions, page_type=page_types,
           sample=variation_samples,
           extra_pe=st.integers(min_value=1, max_value=2000))
    def test_retry_steps_monotonic_in_pe_cycles(self, condition, page_type,
                                                sample, extra_pe):
        worn = condition.with_pe_cycles(condition.pe_cycles + extra_pe)
        assert (_steps(condition, page_type, sample)
                <= _steps(worn, page_type, sample))
