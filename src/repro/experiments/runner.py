"""The ``repro-experiment`` command-line tool and suite-run machinery.

The CLI is organized around subcommands over the declarative experiment
registry (:mod:`repro.experiments.api`)::

    repro-experiment list [--tag system] [--format json]
    repro-experiment run all --profile fast --jobs 4
    repro-experiment run fig14 --set num_requests=200 --no-cache
    repro-experiment export all --profile smoke --format csv --dir out/
    repro-experiment show fig14 --profile fast

``run``/``export`` accept an experiment name, a tag (``paper``,
``ablation``, ``system``, ...) or ``all``.  Results are cached in a
content-addressed :class:`~repro.experiments.store.ArtifactStore` keyed by
the fully resolved parameters, so re-runs are instant and an interrupted
suite resumes where it stopped; independent experiments of a suite fan out
over the same process pool the sweep runner uses
(:func:`repro.sim.sweep.pool_map`), with parallel and cached runs producing
byte-identical exports to serial fresh runs.

The pre-registry interface (``repro-experiment fig14 --fast``) still works
as a deprecated alias for ``run fig14 --profile fast``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.api import (
    ExperimentLookupError,
    ExperimentRegistration,
    ParameterValueError,
    UnknownParameterError,
    UnknownProfileError,
    default_experiment_registry,
)
from repro.experiments.reporting import ExperimentResult, RunManifest, jsonify
from repro.experiments.store import ArtifactStore, cache_key
from repro.sim.sweep import pool_map
from repro.version import __version__

Targets = Union[str, Sequence[str]]


# -- execution -----------------------------------------------------------------
def _execute(name: str, profile: str,
             params: Mapping[str, object]) -> ExperimentResult:
    """Run one experiment fresh and attach its run manifest."""
    entry = default_experiment_registry().entry(name)
    result = entry.fn(**dict(params))
    result.manifest = RunManifest(
        experiment=entry.name, params=jsonify(dict(params)), profile=profile,
        seed=params.get("seed"), repro_version=__version__,
        cache_key=cache_key(entry.name, entry.params.cache_params(params)))
    return result


def _suite_worker(payload: dict) -> Tuple[dict, float]:
    """Pool-friendly wrapper: plain dicts in, plain dicts out."""
    # Wall-clock reads here time the harness for progress display; no
    # simulation result depends on them.
    started = time.perf_counter()  # repro-lint: disable=no-wall-clock
    result = _execute(payload["name"], payload["profile"], payload["params"])
    elapsed = time.perf_counter() - started  # repro-lint: disable=no-wall-clock
    return result.to_dict(), elapsed


def run_experiment(name: str, profile: Optional[str] = None,
                   fast: bool = False,
                   store: Optional[ArtifactStore] = None,
                   **overrides) -> ExperimentResult:
    """Run one experiment by name and return its result.

    :param profile: parameter profile (``full``/``fast``/``smoke``);
        defaults to ``full``.
    :param fast: legacy alias for ``profile="fast"``.
    :param store: optional :class:`ArtifactStore`; when given, a cached
        result for the same resolved parameters is returned instead of
        re-running, and fresh results are persisted.
    :param overrides: experiment parameters, validated against the declared
        :class:`~repro.experiments.api.ParamSpec`.
    :raises ExperimentLookupError: for an unknown experiment name.
    :raises UnknownParameterError: for an override the experiment lacks.
    """
    entry = default_experiment_registry().entry(name)
    profile = profile or ("fast" if fast else "full")
    params = entry.resolve_params(profile=profile, overrides=overrides)
    if store is not None:
        cached = store.load(entry.name, entry.params.cache_params(params))
        if cached is not None:
            return cached
    result = _execute(entry.name, profile, params)
    if store is not None:
        store.save(result)
    return result


@dataclass
class SuiteRun:
    """One suite entry: the result plus where it came from."""

    name: str
    result: ExperimentResult
    cached: bool
    seconds: float


def _filtered_overrides(entry: ExperimentRegistration,
                        overrides: Mapping[str, object],
                        coerce: bool) -> Dict[str, object]:
    subset = {name: value for name, value in overrides.items()
              if name in entry.params}
    if coerce:
        subset = {name: entry.params.get(name).coerce(value)
                  for name, value in subset.items()}
    return subset


def run_suite(targets: Targets = "all", profile: str = "fast",
              overrides: Optional[Mapping[str, object]] = None,
              jobs: int = 1,
              store: Optional[ArtifactStore] = None,
              coerce: bool = False) -> List[SuiteRun]:
    """Run a set of experiments, optionally cached and in parallel.

    :param targets: an experiment name, a tag, ``"all"``, or a sequence of
        those; duplicates are collapsed, registry order is preserved.
    :param overrides: parameter overrides; each is applied to every selected
        experiment that declares the parameter, and a name no selected
        experiment declares raises :class:`UnknownParameterError`.
    :param jobs: worker processes for fresh experiments (cache hits never
        occupy a worker).
    :param coerce: parse string override values per the declared types
        (the CLI's ``--set key=value`` path).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    registry = default_experiment_registry()
    if isinstance(targets, str):
        targets = (targets,)
    selected: List[str] = []
    for target in targets:
        for name in registry.resolve_targets(target):
            if name not in selected:
                selected.append(name)

    overrides = dict(overrides or {})
    declared_anywhere = set()
    for name in selected:
        declared_anywhere.update(registry.entry(name).params.names())
    unknown = set(overrides) - declared_anywhere
    if unknown:
        raise UnknownParameterError("/".join(selected) or "?", unknown,
                                    tuple(sorted(declared_anywhere)))

    plan: List[dict] = []
    for name in selected:
        entry = registry.entry(name)
        params = entry.resolve_params(
            profile=profile,
            overrides=_filtered_overrides(entry, overrides, coerce))
        cached = (store.load(entry.name, entry.params.cache_params(params))
                  if store is not None else None)
        plan.append({"name": entry.name, "profile": profile,
                     "params": params, "cached": cached})

    fresh = [payload for payload in plan if payload["cached"] is None]
    fresh_runs: Dict[str, SuiteRun] = {}

    def _collect(outcome) -> None:
        # Runs in the parent as each result arrives, so finished experiments
        # are persisted even if a later one crashes — an interrupted suite
        # resumes from the artifact store.
        data, seconds = outcome
        result = ExperimentResult.from_dict(data)
        if store is not None:
            store.save(result)
        fresh_runs[result.manifest.experiment] = SuiteRun(
            name=result.manifest.experiment, result=result,
            cached=False, seconds=seconds)

    pool_map(_suite_worker, fresh, jobs, on_result=_collect)

    return [SuiteRun(name=payload["name"], result=payload["cached"],
                     cached=True, seconds=0.0)
            if payload["cached"] is not None else fresh_runs[payload["name"]]
            for payload in plan]


def run_all(fast: bool = True, jobs: int = 1,
            store: Optional[ArtifactStore] = None) -> List[ExperimentResult]:
    """Run the full paper-artifact suite (fast parameters by default)."""
    runs = run_suite(targets="paper", profile="fast" if fast else "full",
                     jobs=jobs, store=store)
    return [run.result for run in runs]


# -- CLI -----------------------------------------------------------------------
_SUBCOMMANDS = ("list", "run", "export", "show")
_EXPORTERS = {"json": lambda result: result.to_json(),
              "csv": lambda result: result.to_csv()}


def _parse_sets(pairs: Sequence[str]) -> Dict[str, str]:
    overrides: Dict[str, str] = {}
    for pair in pairs or ():
        key, separator, value = pair.partition("=")
        if not separator or not key.strip():
            raise ParameterValueError(
                f"--set expects key=value, got {pair!r}")
        overrides[key.strip()] = value
    return overrides


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return value


def _make_store(args) -> Optional[ArtifactStore]:
    if getattr(args, "no_cache", False):
        return None
    return ArtifactStore(root=getattr(args, "cache_dir", None))


def _export_suite(runs: Sequence[SuiteRun], directory: str,
                  fmt: str) -> List[str]:
    import pathlib

    target = pathlib.Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for run in runs:
        path = target / f"{run.name}.{fmt}"
        path.write_text(_EXPORTERS[fmt](run.result))
        written.append(str(path))
    return written


def _cmd_list(args) -> int:
    registry = default_experiment_registry()
    names = registry.names(tag=args.tag)
    if args.format == "json":
        payload = []
        for name in names:
            entry = registry.entry(name)
            payload.append({
                "name": entry.name,
                "artifact": entry.artifact,
                "tags": list(entry.tags),
                "doc": entry.doc,
                "params": [{"name": parameter.name,
                            "default": jsonify(parameter.default),
                            "profiles": jsonify(dict(parameter.profiles)),
                            "help": parameter.help}
                           for parameter in entry.params],
            })
        print(json.dumps(payload, indent=2))
        return 0
    for name in names:
        entry = registry.entry(name)
        tags = ", ".join(entry.tags)
        print(f"{entry.name:22} {entry.artifact}  [{tags}]")
        if args.params:
            for parameter in entry.params:
                profiles = "".join(
                    f"  {profile}={jsonify(value)!r}"
                    for profile, value in parameter.profiles.items())
                print(f"    --set {parameter.name}="
                      f"{jsonify(parameter.default)!r}{profiles}"
                      f"  # {parameter.help}")
    if not args.params:
        print(f"\n{len(names)} experiments; tags: "
              f"{', '.join(registry.tags())}")
    return 0


def _suite_from_args(args) -> List[SuiteRun]:
    return run_suite(targets=args.target, profile=args.profile,
                     overrides=_parse_sets(args.set), jobs=args.jobs,
                     store=_make_store(args), coerce=True)


def _cmd_run(args) -> int:
    runs = _suite_from_args(args)
    outputs = []
    for run in runs:
        source = "cached" if run.cached else f"ran in {run.seconds:.1f}s"
        print(f"== {run.name} [{args.profile}] ({source})")
        text = run.result.to_text(max_rows=args.max_rows)
        outputs.append(text)
        print(text)
        print()
    if args.out:
        import pathlib

        parent = pathlib.Path(args.out).parent
        parent.mkdir(parents=True, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    if args.export:
        for path in _export_suite(runs, args.export, args.format):
            print(f"exported {path}")
    return 0


def _cmd_export(args) -> int:
    for path in _export_suite(_suite_from_args(args), args.dir, args.format):
        print(path)
    return 0


def _cmd_show(args) -> int:
    registry = default_experiment_registry()
    entry = registry.entry(args.name)
    params = entry.params.cache_params(
        entry.resolve_params(profile=args.profile,
                             overrides=_parse_sets(args.set), coerce=True))
    store = ArtifactStore(root=args.cache_dir)
    result = store.load(entry.name, params)
    if result is None:
        print(f"no cached artifact for {entry.name!r} with profile "
              f"{args.profile!r} (key {store.key(entry.name, params)}); "
              f"run `repro-experiment run {entry.name} "
              f"--profile {args.profile}` first", file=sys.stderr)
        return 1
    if args.format == "json":
        print(result.to_json(), end="")
    else:
        print(result.to_text(max_rows=args.max_rows))
    return 0


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("target", nargs="+",
                        help="experiment name, tag, or 'all'")
    parser.add_argument("--profile", default="full",
                        choices=("full", "fast", "smoke"),
                        help="parameter profile (default: full)")
    parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                        help="override a declared parameter (repeatable)")
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="run fresh experiments on N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the artifact store entirely")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact store root "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the tables and figures of the read-retry "
                    "paper from the declarative experiment registry.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments, tags and parameters")
    list_parser.add_argument("--tag", default=None,
                             help="only experiments carrying this tag")
    list_parser.add_argument("--params", action="store_true",
                             help="also list each declared parameter")
    list_parser.add_argument("--format", default="text",
                             choices=("text", "json"))
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run experiments (cached, optionally in parallel)")
    _add_common_run_options(run_parser)
    run_parser.add_argument("--max-rows", type=int, default=None,
                            help="limit the number of printed rows")
    run_parser.add_argument("--out", default=None, metavar="FILE",
                            help="also write the rendered table(s) to FILE")
    run_parser.add_argument("--export", default=None, metavar="DIR",
                            help="also export one file per experiment to DIR")
    run_parser.add_argument("--format", default="json",
                            choices=tuple(_EXPORTERS),
                            help="export format for --export")
    run_parser.set_defaults(handler=_cmd_run)

    export_parser = subparsers.add_parser(
        "export", help="run (or reuse cached) experiments and write "
                       "JSON/CSV artifacts")
    _add_common_run_options(export_parser)
    export_parser.add_argument("--format", default="json",
                               choices=tuple(_EXPORTERS))
    export_parser.add_argument("--dir", default="exports", metavar="DIR",
                               help="output directory (default: ./exports)")
    export_parser.set_defaults(handler=_cmd_export)

    show_parser = subparsers.add_parser(
        "show", help="display a cached artifact without running anything")
    show_parser.add_argument("name", help="experiment name")
    show_parser.add_argument("--profile", default="full",
                             choices=("full", "fast", "smoke"))
    show_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                             help="parameter overrides identifying the run")
    show_parser.add_argument("--cache-dir", default=None, metavar="DIR")
    show_parser.add_argument("--format", default="text",
                             choices=("text", "json"))
    show_parser.add_argument("--max-rows", type=int, default=None)
    show_parser.set_defaults(handler=_cmd_show)

    return parser


def _rewrite_legacy_argv(argv: List[str]) -> List[str]:
    """Map the pre-registry CLI (``fig14 --fast``) onto ``run``."""
    if not argv or argv[0] in _SUBCOMMANDS or argv[0].startswith("-"):
        return argv
    # The legacy CLI's "all" meant the 11 paper artifacts; the registry's
    # "all" also includes the ablation studies, so map it to the paper tag.
    target = "paper" if argv[0] == "all" else argv[0]
    print(f"note: 'repro-experiment {argv[0]}' is deprecated; use "
          f"'repro-experiment run {target}'", file=sys.stderr)
    rewritten = ["run", target]
    for argument in argv[1:]:
        if argument == "--fast":
            rewritten.extend(["--profile", "fast"])
        else:
            rewritten.append(argument)
    return rewritten


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    args = parser.parse_args(_rewrite_legacy_argv(argv))
    try:
        return args.handler(args)
    except (ExperimentLookupError, ParameterValueError,
            UnknownParameterError, UnknownProfileError) as error:
        parser.exit(2, f"{parser.prog}: error: {error}\n")
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`); not an error.
        # Point stdout at devnull so the interpreter's flush-at-exit does
        # not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
