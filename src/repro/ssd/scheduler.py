"""Per-die transaction scheduling.

The baseline SSD of Section 7.1 is a high-end device that already employs
two latency-hiding techniques orthogonal to read-retry:

* *out-of-order I/O scheduling* — reads overtake queued programs/erases at
  the same die, because read latency is what applications wait on;
* *program/erase suspension* — an in-flight program or erase is suspended
  when a read arrives, the read executes, and the suspended operation
  resumes afterwards.

Each die has one :class:`DieScheduler` holding a read queue and a
write/erase queue.  Service times are provided by the controller (they
depend on the read-retry policy); completion notifications flow back to the
controller, which updates request state, the write buffer and GC.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.ssd.config import SsdConfig
from repro.ssd.engine import EventHandle, EventQueue
from repro.ssd.request import (
    _READ_TRANSACTION_KINDS,
    FlashTransaction,
    TransactionKind,
)

#: Kinds whose in-flight operation a read may suspend.  Only these need a
#: cancellable completion event; read completions are scheduled through the
#: engine's handle-free hot path.
_SUSPENDABLE_KINDS = frozenset((TransactionKind.PROGRAM,
                                TransactionKind.GC_PROGRAM,
                                TransactionKind.TRANS_PROGRAM,
                                TransactionKind.ERASE))


class _ActiveOperation:
    """The transaction a die is currently executing."""

    __slots__ = ("transaction", "start_us", "service_us", "handle",
                 "suspended_before")

    def __init__(self, transaction: FlashTransaction, start_us: float,
                 service_us: float, handle: Optional[EventHandle],
                 suspended_before: bool = False):
        self.transaction = transaction
        self.start_us = start_us
        self.service_us = service_us
        self.handle = handle
        self.suspended_before = suspended_before


class DieScheduler:
    """Schedules the transactions of one die."""

    def __init__(self, die_key: tuple, config: SsdConfig, events: EventQueue,
                 service_time_fn: Callable[[FlashTransaction], float],
                 on_complete: Callable[[FlashTransaction], None]):
        self.die_key = die_key
        self.config = config
        self.events = events
        self.service_time_fn = service_time_fn
        self.on_complete = on_complete
        # Hot-path copies of the config flags (attribute-chain hoisting).
        self._read_priority = config.read_priority
        self._suspension = config.suspension
        self.read_queue: Deque[FlashTransaction] = deque()
        self.write_queue: Deque[FlashTransaction] = deque()
        self.current: Optional[_ActiveOperation] = None
        self.total_busy_us = 0.0
        self.completed_transactions = 0
        self.suspensions = 0

    # -- queueing -----------------------------------------------------------------
    def enqueue(self, transaction: FlashTransaction) -> None:
        """Add a transaction; may trigger immediate service or a suspension."""
        is_read = transaction.kind in _READ_TRANSACTION_KINDS
        if is_read and self._read_priority:
            self.read_queue.append(transaction)
        else:
            self.write_queue.append(transaction)

        if self.current is None:
            self._start_next()
        elif (is_read and self._suspension
              and self._current_is_suspendable()):
            self._suspend_current()
            self._start_next()

    @property
    def queue_depth(self) -> int:
        return len(self.read_queue) + len(self.write_queue)

    @property
    def is_idle(self) -> bool:
        return self.current is None and self.queue_depth == 0

    # -- suspension ---------------------------------------------------------------
    def _current_is_suspendable(self) -> bool:
        active = self.current
        if active is None or active.suspended_before:
            return False
        return active.transaction.kind in _SUSPENDABLE_KINDS

    def _suspend_current(self) -> None:
        """Suspend the in-flight program/erase so a read can run first."""
        active = self.current
        active.handle.cancel()
        now = self.events.now_us
        elapsed = max(0.0, now - active.start_us)
        remaining = max(0.0, active.service_us - elapsed)
        if active.transaction.kind is TransactionKind.ERASE:
            overhead = self.config.timing.erase_suspend_us
        else:
            overhead = self.config.timing.program_suspend_us
        transaction = active.transaction
        transaction.remaining_service_us = remaining + overhead
        transaction.was_suspended = True
        self.total_busy_us += elapsed
        self.write_queue.appendleft(transaction)
        self.current = None
        self.suspensions += 1

    # -- dispatch ------------------------------------------------------------------
    def _next_transaction(self) -> Optional[FlashTransaction]:
        if self.read_queue:
            return self.read_queue.popleft()
        if self.write_queue:
            return self.write_queue.popleft()
        return None

    def _start_next(self) -> None:
        if self.current is not None:
            return
        transaction = self._next_transaction()
        if transaction is None:
            return
        self._start(transaction)

    def _start(self, transaction: FlashTransaction) -> None:
        now = self.events.now_us
        remaining = transaction.remaining_service_us
        if remaining is not None:
            service = remaining
        else:
            service = self.service_time_fn(transaction)
        if transaction.service_start_us is None:
            transaction.service_start_us = now
        if self._suspension and transaction.kind in _SUSPENDABLE_KINDS:
            # Only an operation a read may suspend needs a cancellable event.
            handle = self.events.schedule_call_after(
                service, self._complete, transaction)
        else:
            self.events.schedule_call(now + service, self._complete,
                                      transaction)
            handle = None
        self.current = _ActiveOperation(transaction, now, service, handle)

    def _complete(self, transaction: FlashTransaction) -> None:
        active = self.current
        if active is None or active.transaction is not transaction:
            # A stale completion (the operation was suspended); ignore it.
            return
        now = self.events.now_us
        self.total_busy_us += active.service_us
        transaction.completion_us = now
        self.current = None
        self.completed_transactions += 1
        self.on_complete(transaction)
        self._start_next()
