"""Flash translation layer: page-level mapping and block allocation.

The FTL maps logical page numbers (LPNs) onto physical pages spread across
every plane of the SSD (channel-first striping, so consecutive writes go to
different dies and can proceed in parallel).  Each plane keeps one *active*
block that absorbs new writes; when it fills, the wear-leveling allocator
opens the free block with the lowest P/E-cycle count.

The FTL also keeps the per-block metadata the read-retry study needs: the
block's P/E-cycle count and, per page, the retention age of the stored data
(pages written during preconditioning carry the experiment's cold-data
retention age; pages rewritten at run time are fresh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nand.geometry import PAGE_TYPE_ORDER, PageType
from repro.ssd.config import SsdConfig


class PhysicalPage:
    """Physical location of one page.

    A hand-written ``__slots__`` value class rather than a frozen dataclass:
    one is built per mapping lookup and per page allocation, so construction
    cost is hot-path cost (a frozen dataclass pays five ``object.__setattr__``
    calls per instance).  Treated as immutable by convention everywhere.
    """

    __slots__ = ("channel", "die", "plane", "block", "page")

    def __init__(self, channel: int, die: int, plane: int, block: int,
                 page: int):
        self.channel = channel
        self.die = die
        self.plane = plane
        self.block = block
        self.page = page

    def die_key(self) -> Tuple[int, int]:
        return (self.channel, self.die)

    def __eq__(self, other):
        if not isinstance(other, PhysicalPage):
            return NotImplemented
        return (self.channel == other.channel and self.die == other.die
                and self.plane == other.plane and self.block == other.block
                and self.page == other.page)

    def __hash__(self):
        return hash((self.channel, self.die, self.plane, self.block,
                     self.page))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"PhysicalPage(channel={self.channel!r}, die={self.die!r}, "
                f"plane={self.plane!r}, block={self.block!r}, "
                f"page={self.page!r})")


@dataclass
class BlockMetadata:
    """Mutable state of one physical block."""

    block_id: int
    pe_cycles: int = 0
    next_free_page: int = 0
    valid_count: int = 0
    #: LPN stored in each page (``None`` = free or invalidated).
    page_lpns: List[Optional[int]] = field(default_factory=list)
    #: Retention age (months) of the data in each page.
    page_retention_months: List[float] = field(default_factory=list)

    def initialize(self, pages_per_block: int) -> None:
        self.next_free_page = 0
        self.valid_count = 0
        self.page_lpns = [None] * pages_per_block
        self.page_retention_months = [0.0] * pages_per_block

    @property
    def is_full(self) -> bool:
        return self.next_free_page >= len(self.page_lpns)

    @property
    def invalid_count(self) -> int:
        return self.next_free_page - self.valid_count


class PlaneManager:
    """Free-block pool, active block and block metadata of one plane."""

    def __init__(self, config: SsdConfig, channel: int, die: int, plane: int):
        self.config = config
        self.channel = channel
        self.die = die
        self.plane = plane
        self.blocks: List[BlockMetadata] = []
        for block_id in range(config.blocks_per_plane):
            metadata = BlockMetadata(block_id=block_id)
            metadata.initialize(config.pages_per_block)
            self.blocks.append(metadata)
        self._free_blocks: List[int] = list(range(config.blocks_per_plane))
        self._active_block: Optional[int] = None
        self._filled_blocks: List[int] = []

    # -- free-block pool ----------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        count = len(self._free_blocks)
        if self._active_block is not None:
            count += 1
        return count

    def needs_gc(self) -> bool:
        return len(self._free_blocks) < self.config.gc_free_block_threshold

    def _open_new_active_block(self) -> None:
        if not self._free_blocks:
            raise RuntimeError(
                f"plane ({self.channel},{self.die},{self.plane}) ran out of "
                "free blocks; garbage collection fell behind"
            )
        # Wear leveling: pick the free block with the lowest P/E-cycle count.
        self._free_blocks.sort(key=lambda block_id: self.blocks[block_id].pe_cycles)
        self._active_block = self._free_blocks.pop(0)

    # -- page allocation -----------------------------------------------------------
    def allocate_page(self, lpn: int, retention_months: float = 0.0) -> PhysicalPage:
        """Allocate the next free page of the active block for ``lpn``."""
        if self._active_block is None or self.blocks[self._active_block].is_full:
            if self._active_block is not None:
                self._filled_blocks.append(self._active_block)
            self._open_new_active_block()
        block = self.blocks[self._active_block]
        page = block.next_free_page
        block.page_lpns[page] = lpn
        block.page_retention_months[page] = retention_months
        block.next_free_page += 1
        block.valid_count += 1
        return PhysicalPage(self.channel, self.die, self.plane, self._active_block, page)

    def invalidate(self, block_id: int, page: int) -> None:
        block = self.blocks[block_id]
        if block.page_lpns[page] is None:
            return
        block.page_lpns[page] = None
        block.valid_count -= 1

    def erase(self, block_id: int) -> None:
        """Erase a block and return it to the free pool."""
        block = self.blocks[block_id]
        block.pe_cycles += 1
        block.initialize(self.config.pages_per_block)
        if block_id in self._filled_blocks:
            self._filled_blocks.remove(block_id)
        if block_id == self._active_block:
            self._active_block = None
        if block_id not in self._free_blocks:
            self._free_blocks.append(block_id)

    # -- GC victim selection ------------------------------------------------------------
    def gc_victim(self) -> Optional[int]:
        """Block with the most invalid pages among the full blocks (greedy)."""
        candidates = [block_id for block_id in self._filled_blocks if self.blocks[block_id].is_full]
        if self._active_block is not None and self.blocks[self._active_block].is_full:
            candidates.append(self._active_block)
        if not candidates:
            return None
        return max(candidates, key=lambda block_id: self.blocks[block_id].invalid_count)

    def set_pe_cycles(self, pe_cycles: int) -> None:
        for block in self.blocks:
            block.pe_cycles = pe_cycles


class FlashTranslationLayer:
    """Page-level mapping FTL with channel-first striping."""

    def __init__(self, config: SsdConfig):
        self.config = config
        self.planes: List[PlaneManager] = []
        for channel in range(config.channels):
            for die in range(config.dies_per_channel):
                for plane in range(config.planes_per_die):
                    self.planes.append(PlaneManager(config, channel, die, plane))
        self._mapping: Dict[int, Tuple[int, int, int]] = {}
        self._next_plane = 0

    # -- lookups -----------------------------------------------------------------------
    def plane_index(self, channel: int, die: int, plane: int) -> int:
        return (channel * self.config.dies_per_channel + die) * self.config.planes_per_die + plane

    def plane_for(self, physical: PhysicalPage) -> PlaneManager:
        return self.planes[self.plane_index(physical.channel, physical.die, physical.plane)]

    def lookup(self, lpn: int) -> Optional[PhysicalPage]:
        """Physical location of a logical page (``None`` if never written)."""
        entry = self._mapping.get(lpn)
        if entry is None:
            return None
        plane_index, block, page = entry
        plane = self.planes[plane_index]
        return PhysicalPage(plane.channel, plane.die, plane.plane, block, page)

    def is_mapped(self, lpn: int) -> bool:
        return lpn in self._mapping

    def page_type_of(self, physical: PhysicalPage) -> PageType:
        return PAGE_TYPE_ORDER[physical.page % len(PAGE_TYPE_ORDER)]

    def block_metadata(self, physical: PhysicalPage) -> BlockMetadata:
        return self.plane_for(physical).blocks[physical.block]

    def retention_months_of(self, physical: PhysicalPage) -> float:
        return self.block_metadata(physical).page_retention_months[physical.page]

    def pe_cycles_of(self, physical: PhysicalPage) -> int:
        return self.block_metadata(physical).pe_cycles

    # -- updates -------------------------------------------------------------------------
    def write(
        self, lpn: int, retention_months: float = 0.0, plane_index: int = None
    ) -> Tuple[PhysicalPage, Optional[PhysicalPage]]:
        """Map ``lpn`` to a newly allocated page.

        :return: ``(new_physical_page, invalidated_physical_page_or_None)``.
        """
        if lpn < 0 or lpn >= self.config.logical_pages:
            raise ValueError(f"LPN {lpn} outside the logical space")
        old_physical = self.lookup(lpn)
        if old_physical is not None:
            self.plane_for(old_physical).invalidate(old_physical.block, old_physical.page)
        if plane_index is None:
            plane_index = self._next_plane
            self._next_plane = (self._next_plane + 1) % len(self.planes)
        plane = self.planes[plane_index]
        physical = plane.allocate_page(lpn, retention_months)
        self._mapping[lpn] = (plane_index, physical.block, physical.page)
        return physical, old_physical

    def trim(self, lpn: int) -> bool:
        """Unmap ``lpn`` (host TRIM/discard), invalidating its page.

        :return: whether the LPN was mapped (a trim of a never-written or
            already-trimmed page is a no-op).
        """
        entry = self._mapping.pop(lpn, None)
        if entry is None:
            return False
        plane_index, block, page = entry
        self.planes[plane_index].invalidate(block, page)
        return True

    def set_uniform_pe_cycles(self, pe_cycles: int) -> None:
        """Install the experiment's P/E-cycle count on every block."""
        if pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        for plane in self.planes:
            plane.set_pe_cycles(pe_cycles)

    def precondition_fill(self, pages: int, retention_months: float = 0.0,
                          pe_cycles: int = 0) -> None:
        """Bulk preconditioning: fill LPNs 0..pages-1 and set a uniform wear.

        Produces the *exact* state that ``write(lpn, retention_months)`` for
        every LPN in order followed by :meth:`set_uniform_pe_cycles` would:
        round-robin plane striping (LPN ``n`` lands on plane ``n % planes``
        as its ``n // planes``-th write), blocks opened in ascending id
        order (the wear-leveling sort is stable and every block starts at
        the same P/E count), pages filled sequentially.  The closed form
        replaces ``pages`` allocator calls with per-block slice assignments,
        which is what keeps simulator preconditioning off the hot-path
        profile.  A non-fresh FTL falls back to the per-page loop, whose
        allocator decisions depend on the existing state.
        """
        if pages < 0 or pages > self.config.logical_pages:
            raise ValueError(f"cannot precondition {pages} pages into a "
                             f"logical space of {self.config.logical_pages}")
        if pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        fresh = (not self._mapping and self._next_plane == 0
                 and all(plane._active_block is None
                         and not plane._filled_blocks
                         for plane in self.planes))
        if not fresh:
            for lpn in range(pages):
                self.write(lpn, retention_months=retention_months)
            self.set_uniform_pe_cycles(pe_cycles)
            return
        plane_count = len(self.planes)
        pages_per_block = self.config.pages_per_block
        for plane_index, plane in enumerate(self.planes):
            writes = (pages - plane_index + plane_count - 1) // plane_count
            if writes <= 0:
                continue
            full_blocks, partial = divmod(writes, pages_per_block)
            last_block = full_blocks if partial else full_blocks - 1
            for block_id in range(last_block + 1):
                block = plane.blocks[block_id]
                fill = partial if (block_id == last_block
                                   and partial) else pages_per_block
                base = block_id * pages_per_block
                block.page_lpns[:fill] = [
                    (base + page) * plane_count + plane_index
                    for page in range(fill)
                ]
                block.page_retention_months[:fill] = [retention_months] * fill
                block.next_free_page = fill
                block.valid_count = fill
            plane._filled_blocks = list(range(last_block))
            plane._active_block = last_block
            plane._free_blocks = list(
                range(last_block + 1, self.config.blocks_per_plane))
        if pages:
            # Build the mapping in one vectorized pass (ascending LPN order,
            # matching the loop's insertion order).  ``tolist()`` matters:
            # the mapping must hold Python ints, not numpy scalars, so that
            # every PhysicalPage built from it stays identical to one the
            # allocator would have produced.
            lpns = np.arange(pages, dtype=np.int64)
            slots, plane_indices = np.divmod(lpns, plane_count)
            block_ids, page_indices = np.divmod(slots, pages_per_block)
            self._mapping.update(zip(
                range(pages),
                zip(plane_indices.tolist(), block_ids.tolist(),
                    page_indices.tolist())))
        self._next_plane = pages % plane_count
        self.set_uniform_pe_cycles(pe_cycles)

    # -- statistics ----------------------------------------------------------------------
    @property
    def mapped_pages(self) -> int:
        return len(self._mapping)

    def total_free_blocks(self) -> int:
        return sum(plane.free_block_count for plane in self.planes)

    def planes_needing_gc(self) -> List[int]:
        return [index for index, plane in enumerate(self.planes) if plane.needs_gc()]
