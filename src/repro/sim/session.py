"""The fluent simulation builder — the canonical way to run the simulator.

>>> from repro.sim import Simulation
>>> result = (Simulation()
...           .policy("PnAR2")
...           .workload("ycsb-a", n=800)
...           .condition(pec=2000, months=6)
...           .run())
>>> result.mean_response_us("PnAR2")  # doctest: +SKIP

A :class:`Simulation` collects *what* to run (policies, a workload spec, an
explicit request list or a stream factory, an operating condition) and
``run()`` executes each policy against an identical request stream on a
freshly preconditioned SSD, returning a :class:`RunResult` that carries the
per-policy :class:`~repro.ssd.controller.SimulationResult` objects plus a
JSON-able manifest describing the run exactly.  Workload specs and stream
factories feed the simulator's bounded-lookahead pump lazily, so session
runs never materialize the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.registry import default_registry
from repro.sim.spec import DEFAULT_FILL_FRACTION, Condition, WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, SsdSimulator
from repro.ssd.faults import FaultPlan
from repro.ssd.metrics import normalized_response_times
from repro.ssd.request import HostRequest
from repro.workloads.source import as_workload_source, source_to_dict
from repro.workloads.synthetic import WorkloadShape
from repro.workloads.tenants import TenantMix


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulation.run` call."""

    config: SsdConfig
    condition: Condition
    results: Dict[str, SimulationResult]
    #: The run's ``WorkloadSource`` (a spec, scenario pattern, trace
    #: replay...), when the run was driven by one.
    workload: Optional[object] = None
    manifest: dict = field(default_factory=dict)

    # -- access ---------------------------------------------------------------
    @property
    def policies(self) -> List[str]:
        return list(self.results)

    def __getitem__(self, policy: str) -> SimulationResult:
        return self.results[policy]

    def __iter__(self):
        return iter(self.results.items())

    @property
    def result(self) -> SimulationResult:
        """The single result of a one-policy run."""
        if len(self.results) != 1:
            raise ValueError(f"run holds {len(self.results)} policies; index by name")
        return next(iter(self.results.values()))

    # -- views ----------------------------------------------------------------
    def mean_response_us(self, policy: Optional[str] = None) -> float:
        result = self.result if policy is None else self.results[policy]
        return result.mean_response_time_us

    def normalized(self, baseline: str = "Baseline") -> Dict[str, float]:
        """Mean response times normalized to ``baseline`` (Figure 14 y-axis)."""
        return normalized_response_times(
            {name: result.metrics for name, result in self.results.items()}, baseline=baseline
        )

    def summary_rows(self) -> List[dict]:
        rows = []
        for name, result in self.results.items():
            row = {
                "policy": name,
                "pe_cycles": self.condition.pe_cycles,
                "retention_months": self.condition.retention_months,
            }
            if self.workload is not None:
                row["workload"] = self.workload.label
            row.update(result.metrics.summary())
            rows.append(row)
        return rows


class Simulation:
    """Fluent builder for one simulator run (one cell, one or more policies)."""

    def __init__(self, config: Optional[SsdConfig] = None):
        self._config = config or SsdConfig.scaled()
        self._policies: List[str] = []
        #: Any unified ``WorkloadSource`` — a spec, tenant mix, scenario
        #: pattern, trace replay... (see :mod:`repro.workloads.source`).
        self._source: Optional[object] = None
        self._requests: Optional[List[HostRequest]] = None
        self._stream: Optional[Callable[[], Iterable[HostRequest]]] = None
        self._condition = Condition()
        self._rpt: Optional[ReadTimingParameterTable] = None
        self._lookahead: Optional[int] = None
        self._registry = default_registry()
        self._fault_plan: Optional[FaultPlan] = None
        self._fleet_params: Optional[dict] = None
        self._slo_params: Optional[dict] = None
        self._closed_loop_params: Optional[dict] = None

    # -- builder steps --------------------------------------------------------
    def policy(self, policy) -> "Simulation":
        """Add one policy — a registry name or a ready policy instance."""
        if isinstance(policy, str):
            self._policies.append(self._registry.canonical_name(policy))
        else:
            self._policies.append(policy)
        return self

    def policies(self, *policies) -> "Simulation":
        """Add several policies at once (varargs or one iterable)."""
        if len(policies) == 1 and not isinstance(policies[0], str):
            try:
                policies = tuple(policies[0])
            except TypeError:
                pass
        for policy in policies:
            self.policy(policy)
        return self

    def workload(
        self,
        workload: Union[str, WorkloadSpec, WorkloadShape],
        n: Optional[int] = None,
        seed: Optional[int] = None,
        mean_interarrival_us: Optional[float] = None,
        footprint_fraction: Optional[float] = None,
    ) -> "Simulation":
        """Select the request stream.

        Accepts a Table 2 name, a :class:`~repro.sim.spec.WorkloadSpec`, a
        synthetic shape — or any ready ``WorkloadSource`` (a scenario
        pattern, a trace replay, a tenant mix); protocol objects pass
        through untouched and the keyword overrides apply only to the
        spec-building forms.
        """
        self._source = as_workload_source(
            workload,
            num_requests=n,
            seed=seed,
            mean_interarrival_us=mean_interarrival_us,
            footprint_fraction=footprint_fraction,
        )
        self._requests = None
        self._stream = None
        return self

    def pattern(self, pattern, **kwargs) -> "Simulation":
        """Select an adversarial access pattern by name (or a built one).

        ``pattern`` is a name from
        :data:`repro.workloads.scenarios.PATTERNS` (``kwargs`` construct
        it, e.g. ``.pattern("hot_cold", num_requests=2000)``) or an
        already-built scenario source, which ``kwargs`` must not
        accompany.
        """
        if isinstance(pattern, str):
            from repro.workloads.scenarios import make_pattern

            pattern = make_pattern(pattern, **kwargs)
        elif kwargs:
            raise ValueError(
                "keyword arguments only apply when naming a pattern; "
                "configure a ready source at construction instead"
            )
        return self.workload(pattern)

    def faults(self, *faults, seed: int = 0) -> "Simulation":
        """Install a deterministic fault-injection plan for the run.

        Each argument is a :class:`~repro.ssd.faults.FaultSpec` (or its
        dict form); a single :class:`~repro.ssd.faults.FaultPlan` is used
        as-is.  The plan is installed on every per-policy simulator after
        preconditioning; an empty plan leaves the run bitwise identical
        to a fault-free one.
        """
        if len(faults) == 1 and isinstance(faults[0], FaultPlan):
            self._fault_plan = faults[0]
        else:
            self._fault_plan = FaultPlan.coerce(list(faults), seed=seed)
        return self

    def synthetic(
        self, shape: Optional[WorkloadShape] = None, n: int = 500, seed: int = 0, **shape_kwargs
    ) -> "Simulation":
        """Use a parametric synthetic stream (``shape_kwargs`` build the shape)."""
        if shape is None:
            shape = WorkloadShape(**shape_kwargs)
        elif shape_kwargs:
            raise ValueError("pass either a shape or shape keyword arguments")
        return self.workload(WorkloadSpec(shape=shape, num_requests=n, seed=seed))

    def requests(self, requests: Sequence[HostRequest]) -> "Simulation":
        """Use an explicit, pre-generated request stream (e.g. a real trace).

        The simulator does not mutate host requests, so the caller's objects
        are replayed as-is for every policy — no defensive copies.
        """
        self._requests = list(requests)
        self._source = None
        self._stream = None
        return self

    def stream(self, factory: Callable[[], Iterable[HostRequest]]) -> "Simulation":
        """Use a zero-argument factory yielding a fresh request stream.

        The fully streaming option for large traces: the factory is called
        once per policy and its iterable is fed straight into the
        simulator's bounded-lookahead pump, so the trace is never
        materialized (e.g. ``lambda: iter_records_to_requests(
        iter_msrc_csv(path), ...)``).
        """
        if not callable(factory):
            raise TypeError(
                "stream() expects a zero-argument callable returning an iterable of HostRequest"
            )
        self._stream = factory
        self._requests = None
        self._source = None
        return self

    def tenants(
        self,
        *tenants,
        names: Optional[Sequence[str]] = None,
        n: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> "Simulation":
        """Mix several workloads as tenants of one shared device or fleet.

        Each argument is anything :meth:`workload` accepts (a Table 2 name,
        a :class:`WorkloadSpec`, a shape); a single :class:`TenantMix` is
        used as-is.  Requests are tagged with their tenant index, so the
        metrics layer reports a latency histogram per tenant.
        """
        if len(tenants) == 1 and isinstance(tenants[0], TenantMix):
            mix = tenants[0]
        else:
            mix = TenantMix.coerce(list(tenants), num_requests=n, seed=seed)
        if names is not None:
            mix = TenantMix(tenants=mix.tenants, names=tuple(names))
        self._source = mix
        self._requests = None
        self._stream = None
        return self

    def fleet(
        self,
        devices: int,
        stripe_unit_pages: int = 8,
        replication: int = 1,
        device_conditions: Optional[Sequence] = None,
        processes: int = 1,
        shard_devices: Optional[int] = None,
        checkpoint=None,
    ) -> "Simulation":
        """Run against an array of ``devices`` SSDs instead of a single one.

        The array stripes the workload across identical copies of this
        simulation's config (see :class:`repro.sim.fleet.FleetSpec`);
        ``processes`` fans the per-device simulations over a worker pool
        (bitwise-identical to serial).  Devices are dispatched in bounded
        shards of ``shard_devices`` (default
        :data:`repro.sim.fleet.DEFAULT_SHARD_DEVICES`), and ``checkpoint``
        — a :class:`~repro.experiments.store.CheckpointStore` or a cache
        root path — persists finished shards (and capacity-search probes)
        so a killed run resumes bitwise-identically.  ``run()`` then
        returns a :class:`repro.sim.fleet.FleetRunResult`.
        """
        self._fleet_params = {
            "devices": devices,
            "stripe_unit_pages": stripe_unit_pages,
            "replication": replication,
            "device_conditions": device_conditions,
            "processes": processes,
            "shard_devices": shard_devices,
            "checkpoint": checkpoint,
        }
        return self

    def slo(
        self,
        p99_us: float,
        tolerance: float = 0.05,
        max_probes: int = 12,
        kind: str = "all",
        start_rate_rps: Optional[float] = None,
    ) -> "Simulation":
        """Search for the max arrival rate sustaining ``p99 <= p99_us``.

        ``run()`` then bisects the workload's arrival rate on the
        configured fleet (a single device unless :meth:`fleet` was called)
        and returns a :class:`repro.sim.fleet.CapacityResult`.  Requires
        exactly one policy and a rate-scalable workload (a workload spec or
        tenant mix, not an explicit request list).
        """
        self._slo_params = {
            "target_p99_us": p99_us,
            "tolerance": tolerance,
            "max_probes": max_probes,
            "kind": kind,
            "start_rate_rps": start_rate_rps,
        }
        return self

    def closed_loop(
        self,
        clients: int = 4,
        queue_depth: int = 1,
        total_requests: int = 1000,
        think_time_us: float = 0.0,
    ) -> "Simulation":
        """Drive the device closed-loop instead of replaying arrival times.

        Each of ``clients`` keeps ``queue_depth`` requests outstanding and
        issues the next one when a previous completes (plus
        ``think_time_us``); request contents come from the configured
        workload, whose own arrival times are ignored.  Incompatible with
        :meth:`fleet` (closed-loop clients react to one device's
        completions).
        """
        self._closed_loop_params = {
            "clients": clients,
            "queue_depth": queue_depth,
            "total_requests": total_requests,
            "think_time_us": think_time_us,
        }
        return self

    def condition(
        self,
        condition: Union[Condition, tuple, None] = None,
        *,
        pec: int = 0,
        months: float = 0.0,
        fill: float = DEFAULT_FILL_FRACTION,
    ) -> "Simulation":
        """Set the preconditioned operating condition.

        ``fill`` is the fraction of the logical space the precondition
        pass writes (default 0.85); lower it when a fault plan retires
        blocks mid-run and needs free-pool headroom.
        """
        if condition is not None:
            self._condition = Condition.coerce(condition)
        else:
            self._condition = Condition(pe_cycles=pec, retention_months=months, fill_fraction=fill)
        return self

    def rpt(self, rpt: ReadTimingParameterTable) -> "Simulation":
        """Share a pre-built Read-timing Parameter Table across the run."""
        self._rpt = rpt
        return self

    def lookahead(self, requests: int) -> "Simulation":
        """Size the admission pump's lookahead window (default 64 requests).

        Streamed requests may arrive out of order by up to the window;
        raise it when replaying real traces with local timestamp
        misordering (e.g. interleaved multi-disk captures).
        """
        if requests < 1:
            raise ValueError("lookahead must be at least 1")
        self._lookahead = requests
        return self

    # -- execution ------------------------------------------------------------
    def manifest(self) -> dict:
        """JSON-able description of the run (config, workload, condition)."""
        manifest = {
            "config": self._config.to_dict(),
            "condition": self._condition.to_dict(),
            "policies": [
                policy if isinstance(policy, str) else getattr(policy, "name", repr(policy))
                for policy in self._policies
            ],
        }
        if self._source is not None:
            manifest["workload"] = source_to_dict(self._source)
        elif self._requests is not None:
            manifest["workload"] = {"explicit_requests": len(self._requests)}
        elif self._stream is not None:
            manifest["workload"] = {"stream": getattr(self._stream, "__name__", "<stream>")}
        if self._fault_plan:
            manifest["faults"] = self._fault_plan.to_dict()
        if self._fleet_params is not None:
            # Execution knobs (worker count, checkpoint store) do not alter
            # the simulated outcome and stay out of the manifest; the shard
            # size appears only when explicitly set.
            fleet = {
                key: value
                for key, value in self._fleet_params.items()
                if key not in ("processes", "checkpoint")
                and not (key == "shard_devices" and value is None)
            }
            if fleet.get("device_conditions") is not None:
                fleet["device_conditions"] = [
                    Condition.coerce(condition).to_dict()
                    for condition in fleet["device_conditions"]
                ]
            manifest["fleet"] = fleet
        if self._slo_params is not None:
            manifest["slo"] = dict(self._slo_params)
        if self._closed_loop_params is not None:
            manifest["closed_loop"] = dict(self._closed_loop_params)
        return manifest

    def _policy_stream(self) -> Iterable[HostRequest]:
        """A fresh request stream for one policy's run.

        Workload specs stream straight from their generator and stream
        factories from their callable; explicit request lists are replayed
        as-is (the simulator does not mutate them), so no copies are made
        on any path.
        """
        if self._source is not None:
            return self._source.iter_requests(self._config)
        if self._requests is not None:
            return self._requests
        if self._stream is not None:
            return self._stream()
        raise ValueError(
            "no workload configured; call .workload(), .synthetic(), "
            ".pattern(), .requests() or .stream() first"
        )

    def _fleet_spec(self):
        from repro.sim.fleet import FleetSpec

        params = self._fleet_params or {
            "devices": 1,
            "stripe_unit_pages": 8,
            "replication": 1,
            "device_conditions": None,
            "processes": 1,
        }
        device_conditions = params["device_conditions"]
        if device_conditions is not None:
            device_conditions = tuple(
                Condition.coerce(condition) for condition in device_conditions
            )
        return FleetSpec(
            devices=params["devices"],
            stripe_unit_pages=params["stripe_unit_pages"],
            replication=params["replication"],
            config=self._config,
            condition=self._condition,
            device_conditions=device_conditions,
        )

    def _fleet_source(self):
        if self._source is not None:
            return self._source
        if self._requests is not None:
            return self._requests
        raise ValueError(
            "fleet runs shard a declarative source; call .workload(), "
            ".synthetic(), .pattern(), .tenants() or .requests() first "
            "(.stream() factories cannot be re-sharded per device)"
        )

    def _run_fleet(self):
        from repro.sim.fleet import FleetRunner, SloCapacitySearch

        fleet_params = self._fleet_params or {}
        runner = FleetRunner(
            spec=self._fleet_spec(),
            processes=fleet_params.get("processes", 1),
            rpt=self._rpt,
            shard_devices=fleet_params.get("shard_devices"),
            checkpoint=fleet_params.get("checkpoint"),
        )
        if not all(isinstance(policy, str) for policy in self._policies):
            raise ValueError(
                "fleet runs resolve policies per device; pass registry "
                "names, not policy instances"
            )
        policy_names = list(self._policies)
        if self._slo_params is not None:
            if self._fault_plan:
                raise ValueError(
                    "faults() cannot be combined with slo(): the capacity "
                    "search would bisect against a transiently degraded array"
                )
            if len(policy_names) != 1:
                raise ValueError("slo() capacity search needs exactly one policy")
            if self._requests is not None:
                raise ValueError(
                    "slo() bisects the arrival rate; it needs a workload "
                    "spec or tenant mix, not an explicit request list"
                )
            params = self._slo_params
            search = SloCapacitySearch(
                runner,
                target_p99_us=params["target_p99_us"],
                tolerance=params["tolerance"],
                max_probes=params["max_probes"],
                kind=params["kind"],
            )
            return search.find(
                self._fleet_source(),
                policy=policy_names[0],
                start_rate_rps=params["start_rate_rps"],
            )
        result = runner.run(
            self._fleet_source(),
            policies=policy_names,
            lookahead=self._lookahead,
            faults=self._fault_plan,
        )
        result.manifest = dict(result.manifest, session=self.manifest())
        return result

    def _run_closed_loop(self) -> RunResult:
        from repro.workloads.closed_loop import ClosedLoopSource

        if not isinstance(self._source, WorkloadSpec):
            raise ValueError(
                "closed_loop() draws request contents from a workload "
                "spec; call .workload() or .synthetic() first"
            )
        spec = self._source
        shared_rpt = self._rpt or ReadTimingParameterTable.default()
        params = self._closed_loop_params
        results: Dict[str, SimulationResult] = {}
        for entry in self._policies:
            if isinstance(entry, str):
                policy = self._registry.create(entry, timing=self._config.timing, rpt=shared_rpt)
            else:
                policy = entry
            simulator = SsdSimulator(config=self._config, policy=policy, rpt=shared_rpt)
            simulator.precondition(
                pe_cycles=self._condition.pe_cycles,
                retention_months=self._condition.retention_months,
                fill_fraction=self._condition.fill_fraction,
            )
            if self._fault_plan is not None:
                simulator.install_faults(self._fault_plan)
            source = ClosedLoopSource(
                spec,
                config=self._config,
                clients=params["clients"],
                queue_depth=params["queue_depth"],
                total_requests=params["total_requests"],
                think_time_us=params["think_time_us"],
                seed=spec.seed,
            )
            result = simulator.run_closed_loop(source)
            results[result.policy_name] = result
        return RunResult(
            config=self._config,
            condition=self._condition,
            results=results,
            workload=spec,
            manifest=self.manifest(),
        )

    def run(self):
        """Execute the configured run and collect the results.

        Plain runs return a :class:`RunResult`; after :meth:`fleet` the
        return is a :class:`repro.sim.fleet.FleetRunResult`, and after
        :meth:`slo` a :class:`repro.sim.fleet.CapacityResult`.
        """
        if not self._policies:
            raise ValueError("no policy configured; call .policy(name) first")
        if self._closed_loop_params is not None:
            if self._fleet_params is not None or self._slo_params is not None:
                raise ValueError(
                    "closed_loop() drives a single device; it cannot be "
                    "combined with fleet() or slo()"
                )
            return self._run_closed_loop()
        if self._fleet_params is not None or self._slo_params is not None:
            return self._run_fleet()
        if getattr(self._source, "tracks_tenants", False):
            return self._run_tenant_device()
        return self._run_device()

    def _run_tenant_device(self) -> RunResult:
        """A tenant-tracking source on a single device: stream the merge."""
        mix = self._source
        shared_rpt = self._rpt or ReadTimingParameterTable.default()
        results: Dict[str, SimulationResult] = {}
        for entry in self._policies:
            if isinstance(entry, str):
                policy = self._registry.create(entry, timing=self._config.timing, rpt=shared_rpt)
            else:
                policy = entry
            simulator = SsdSimulator(
                config=self._config, policy=policy, rpt=shared_rpt, track_tenants=True
            )
            simulator.precondition(
                pe_cycles=self._condition.pe_cycles,
                retention_months=self._condition.retention_months,
                fill_fraction=self._condition.fill_fraction,
            )
            if self._fault_plan is not None:
                simulator.install_faults(self._fault_plan)
            stream = mix.iter_requests(self._config)
            if self._lookahead is not None:
                result = simulator.run(stream, lookahead=self._lookahead)
            else:
                result = simulator.run(stream)
            results[result.policy_name] = result
        return RunResult(
            config=self._config,
            condition=self._condition,
            results=results,
            workload=None,
            manifest=self.manifest(),
        )

    def _run_device(self) -> RunResult:
        shared_rpt = self._rpt or ReadTimingParameterTable.default()
        results: Dict[str, SimulationResult] = {}
        previous_stream = None
        for entry in self._policies:
            if isinstance(entry, str):
                policy = self._registry.create(entry, timing=self._config.timing, rpt=shared_rpt)
            else:
                policy = entry
            simulator = SsdSimulator(config=self._config, policy=policy, rpt=shared_rpt)
            simulator.precondition(
                pe_cycles=self._condition.pe_cycles,
                retention_months=self._condition.retention_months,
                fill_fraction=self._condition.fill_fraction,
            )
            if self._fault_plan is not None:
                simulator.install_faults(self._fault_plan)
            stream = self._policy_stream()
            if (
                self._stream is not None
                and stream is previous_stream
                and hasattr(stream, "__next__")
            ):
                # The factory handed back the very same iterator: the first
                # policy consumed it, so every later policy would silently
                # simulate zero requests and win every comparison.
                raise ValueError(
                    "stream() factory returned the same exhausted iterator "
                    "for a second policy; it must build a fresh iterable "
                    "per call"
                )
            previous_stream = stream
            if self._lookahead is not None:
                result = simulator.run(stream, lookahead=self._lookahead)
            else:
                result = simulator.run(stream)
            results[result.policy_name] = result
        if self._stream is not None and len(results) > 1:
            # Every policy replays the same stream, so the completed-request
            # counts must agree; a mismatch means the factory shared one
            # underlying iterator (however re-wrapped) and later policies
            # saw a drained stream.
            counts = {
                name: result.metrics.host_reads + result.metrics.host_writes
                for name, result in results.items()
            }
            if len(set(counts.values())) > 1:
                raise ValueError(
                    "stream() factory fed different request counts to the "
                    f"policies ({counts}); it must build an independent "
                    "iterable per call, not re-wrap one shared iterator"
                )
        return RunResult(
            config=self._config,
            condition=self._condition,
            results=results,
            workload=self._source,
            manifest=self.manifest(),
        )
