"""Error models for 3D TLC NAND flash memory.

The characterization results of the paper (Sections 3.1, 5.1 and 5.2) are
reproduced by an analytic threshold-voltage model plus a bitline-timing
model:

* :mod:`repro.errors.condition` — the operating condition triple
  (P/E cycles, retention age, operating temperature) that every model takes.
* :mod:`repro.errors.calibration` — every calibration constant, with the
  paper observation it reproduces.
* :mod:`repro.errors.retention` — Arrhenius acceleration of retention loss.
* :mod:`repro.errors.vth` — per-state V_TH distributions (means and sigmas)
  as a function of the operating condition.
* :mod:`repro.errors.rber` — raw-bit-error counts per 1-KiB codeword for a
  given read-reference set, page type and operating condition.
* :mod:`repro.errors.timing` — additional raw bit errors caused by reduced
  read-timing parameters (tPRE / tEVAL / tDISCH).
* :mod:`repro.errors.variation` — chip/block/wordline process variation.
"""

from repro.errors.condition import OperatingCondition
from repro.errors.retention import arrhenius_acceleration_factor, effective_retention_months
from repro.errors.vth import ThresholdVoltageModel
from repro.errors.rber import CodewordErrorModel
from repro.errors.timing import ReadTimingErrorModel, TimingReduction
from repro.errors.variation import ProcessVariation, VariationSample

__all__ = [
    "OperatingCondition",
    "arrhenius_acceleration_factor",
    "effective_retention_months",
    "ThresholdVoltageModel",
    "CodewordErrorModel",
    "ReadTimingErrorModel",
    "TimingReduction",
    "ProcessVariation",
    "VariationSample",
]
