"""Rendering helpers for lists of dict rows."""

from __future__ import annotations

import csv
import io
from typing import Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] = None) -> str:
    """Render rows as a fixed-width text table."""
    rows = list(rows)
    if not rows:
        return "(empty table)"
    columns = list(columns or rows[0].keys())
    widths = {column: max(len(str(column)),
                          *(len(str(row.get(column, ""))) for row in rows))
              for column in columns}
    lines = ["  ".join(str(column).ljust(widths[column]) for column in columns)]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column])
                               for column in columns))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[dict], columns: Sequence[str] = None) -> str:
    """Render rows as CSV text (for piping experiment output into plots)."""
    rows = list(rows)
    if not rows:
        return ""
    columns = list(columns or rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def save_rows(rows: Sequence[dict], path: str,
              columns: Sequence[str] = None) -> int:
    """Write rows to a CSV file; returns the number of rows written."""
    text = rows_to_csv(rows, columns)
    with open(path, "w", newline="") as handle:
        handle.write(text)
    return len(list(rows))
