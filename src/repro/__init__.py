"""repro — reproduction of "Reducing SSD Read Latency by Optimizing Read-Retry".

This package reimplements, in pure Python, the full system stack evaluated in
the ASPLOS 2021 paper by Park et al.:

* :mod:`repro.nand` — behavioural 3D TLC NAND flash model (organization,
  timing parameters, command set, read-retry tables, per-chip state).
* :mod:`repro.errors` — threshold-voltage and raw-bit-error-rate models,
  including the effect of retention loss, program/erase cycling, operating
  temperature, and reduced read-timing parameters.
* :mod:`repro.ecc` — error-correcting-code substrate (capability-model engine
  used by the simulator plus real BCH and LDPC codecs).
* :mod:`repro.characterization` — the virtual 160-chip characterization
  platform that regenerates the paper's Figures 4(b), 5, 7, 8, 9, 10 and 11
  and builds the Read-timing Parameter Table (RPT).
* :mod:`repro.ssd` — an event-driven, multi-queue SSD simulator (MQSim-like)
  with a page-mapping FTL, garbage collection, out-of-order transaction
  scheduling and program/erase suspension.
* :mod:`repro.core` — the paper's contributions: Pipelined Read-Retry (PR2),
  Adaptive Read-Retry (AR2), their combination (PnAR2), and the evaluated
  baselines (regular read-retry, PSO, and the ideal NoRR).
* :mod:`repro.workloads` — trace format and synthetic generators for the
  twelve MSRC/YCSB workloads of Table 2.
* :mod:`repro.experiments` — one harness per table/figure of the paper.

Quickstart
----------
>>> from repro import quick_ssd_comparison
>>> result = quick_ssd_comparison(num_requests=200, seed=7)
>>> sorted(result)
['AR2', 'Baseline', 'NoRR', 'PR2', 'PnAR2']
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "quick_ssd_comparison",
]


def quick_ssd_comparison(num_requests=1000, read_ratio=0.9, pe_cycles=1000,
                         retention_months=6.0, seed=0):
    """Run a tiny end-to-end comparison of the read-retry policies.

    This convenience helper builds a small SSD, generates a synthetic
    workload and returns the mean response time (in microseconds) of each
    policy.  It is intentionally small so it can be used in documentation
    examples and smoke tests; the full evaluation lives in
    :mod:`repro.experiments`.

    :param num_requests: number of host requests to simulate.
    :param read_ratio: fraction of requests that are reads.
    :param pe_cycles: program/erase-cycle count applied to every block.
    :param retention_months: retention age of cold data, in months.
    :param seed: seed for the workload generator and the flash backend.
    :return: mapping from policy name to mean response time in microseconds.
    """
    # Imported lazily so that ``import repro`` stays cheap.
    from repro.experiments.common import compare_policies

    return compare_policies(
        policies=("Baseline", "PR2", "AR2", "PnAR2", "NoRR"),
        num_requests=num_requests,
        read_ratio=read_ratio,
        pe_cycles=pe_cycles,
        retention_months=retention_months,
        seed=seed,
    )
