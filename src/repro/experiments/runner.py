"""Command-line entry point: ``repro-experiment <name> [--fast] [--out FILE]``.

Runs one experiment (or ``all``) and prints its table; ``--fast`` shrinks the
population/request counts so the full suite completes in a few minutes.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Dict, List, Optional

from repro.experiments import EXPERIMENT_NAMES
from repro.experiments.reporting import ExperimentResult

#: Reduced parameters used by ``--fast``.
_FAST_OVERRIDES: Dict[str, dict] = {
    "fig05": {"num_chips": 4, "blocks_per_chip": 2, "wordlines_per_block": 1},
    "fig07": {"num_chips": 4, "blocks_per_chip": 2, "wordlines_per_block": 1},
    "fig08": {"num_chips": 3, "blocks_per_chip": 2},
    "fig09": {"num_chips": 3, "blocks_per_chip": 2},
    "fig10": {"num_chips": 3, "blocks_per_chip": 2},
    "fig14": {"workloads": ("usr_1", "YCSB-C", "stg_0"),
              "conditions": ((0, 0.0), (1000, 6.0), (2000, 12.0)),
              "num_requests": 300},
    "fig15": {"workloads": ("usr_1", "YCSB-C", "stg_0"),
              "conditions": ((1000, 6.0), (2000, 12.0)),
              "num_requests": 300},
    "table2": {"num_requests": 800, "footprint_pages": 8000},
}


def run_experiment(name: str, fast: bool = False, **overrides) -> ExperimentResult:
    """Run one experiment by name and return its result."""
    if name not in EXPERIMENT_NAMES:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {EXPERIMENT_NAMES}")
    module = importlib.import_module(f"repro.experiments.{name}")
    kwargs = dict(_FAST_OVERRIDES.get(name, {})) if fast else {}
    kwargs.update(overrides)
    return module.run(**kwargs)


def run_all(fast: bool = True) -> List[ExperimentResult]:
    """Run the full suite (fast parameters by default)."""
    return [run_experiment(name, fast=fast) for name in EXPERIMENT_NAMES]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table or figure of the read-retry paper.")
    parser.add_argument("experiment", choices=list(EXPERIMENT_NAMES) + ["all"],
                        help="experiment to run")
    parser.add_argument("--fast", action="store_true",
                        help="use reduced population / request counts")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="limit the number of printed rows")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the rendered table(s) to this file")
    args = parser.parse_args(argv)

    names = list(EXPERIMENT_NAMES) if args.experiment == "all" else [args.experiment]
    outputs = []
    for name in names:
        result = run_experiment(name, fast=args.fast)
        text = result.to_text(max_rows=args.max_rows)
        outputs.append(text)
        print(text)
        print()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write("\n\n".join(outputs) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
