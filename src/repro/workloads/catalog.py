"""Table 2 of the paper: the twelve evaluated workloads.

Each entry records the workload's suite, read ratio and cold ratio exactly as
listed in Table 2, plus the generator preset used to synthesize an
equivalent request stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.ssd.request import HostRequest
from repro.workloads.msrc import make_msrc_workload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.ycsb import make_ycsb_workload


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 2."""

    name: str
    suite: str  # "MSRC" or "YCSB"
    read_ratio: float
    cold_ratio: float
    scan_heavy: bool = False

    def __post_init__(self) -> None:
        if self.suite not in ("MSRC", "YCSB"):
            raise ValueError("suite must be 'MSRC' or 'YCSB'")
        for name in ("read_ratio", "cold_ratio"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    @property
    def read_dominant(self) -> bool:
        """The paper calls workloads with read ratio >= 0.75 read-dominant."""
        return self.read_ratio >= 0.75

    def build(self, footprint_pages: int, seed: int = 0,
              mean_interarrival_us: float = None) -> SyntheticWorkload:
        """Instantiate the synthetic generator for this workload."""
        # Omitting the kwarg (rather than passing None) lets each suite
        # preset keep its own default arrival rate.
        kwargs = {}
        if mean_interarrival_us is not None:
            kwargs["mean_interarrival_us"] = mean_interarrival_us
        if self.suite == "MSRC":
            factory = make_msrc_workload
        else:
            factory = make_ycsb_workload
            kwargs["scan_heavy"] = self.scan_heavy
        return factory(self.read_ratio, self.cold_ratio, footprint_pages,
                       seed=seed, **kwargs)


#: Table 2, in the order the paper lists the workloads.
WORKLOAD_CATALOG: Dict[str, WorkloadSpec] = {
    "stg_0": WorkloadSpec("stg_0", "MSRC", read_ratio=0.15, cold_ratio=0.38),
    "hm_0": WorkloadSpec("hm_0", "MSRC", read_ratio=0.36, cold_ratio=0.22),
    "prn_1": WorkloadSpec("prn_1", "MSRC", read_ratio=0.75, cold_ratio=0.72),
    "proj_1": WorkloadSpec("proj_1", "MSRC", read_ratio=0.89, cold_ratio=0.96),
    "mds_1": WorkloadSpec("mds_1", "MSRC", read_ratio=0.92, cold_ratio=0.98),
    "usr_1": WorkloadSpec("usr_1", "MSRC", read_ratio=0.96, cold_ratio=0.73),
    "YCSB-A": WorkloadSpec("YCSB-A", "YCSB", read_ratio=0.98, cold_ratio=0.72),
    "YCSB-B": WorkloadSpec("YCSB-B", "YCSB", read_ratio=0.99, cold_ratio=0.59),
    "YCSB-C": WorkloadSpec("YCSB-C", "YCSB", read_ratio=0.99, cold_ratio=0.60),
    "YCSB-D": WorkloadSpec("YCSB-D", "YCSB", read_ratio=0.98, cold_ratio=0.58),
    "YCSB-E": WorkloadSpec("YCSB-E", "YCSB", read_ratio=0.99, cold_ratio=0.98,
                           scan_heavy=True),
    "YCSB-F": WorkloadSpec("YCSB-F", "YCSB", read_ratio=0.98, cold_ratio=0.87),
}

#: The paper splits Figure 14/15 into write-dominant and read-dominant groups.
WRITE_DOMINANT_WORKLOADS: Tuple[str, ...] = ("stg_0", "hm_0")
READ_DOMINANT_WORKLOADS: Tuple[str, ...] = tuple(
    name for name in WORKLOAD_CATALOG if name not in WRITE_DOMINANT_WORKLOADS)


def workload_names() -> List[str]:
    """The twelve workload names in Table 2 order."""
    return list(WORKLOAD_CATALOG)


def _catalog_workload(name: str, footprint_pages: int, seed: int,
                      mean_interarrival_us: float) -> SyntheticWorkload:
    if name not in WORKLOAD_CATALOG:
        raise KeyError(f"unknown workload {name!r}; "
                       f"available: {workload_names()}")
    return WORKLOAD_CATALOG[name].build(
        footprint_pages, seed=seed,
        mean_interarrival_us=mean_interarrival_us)


def generate_workload(name: str, num_requests: int, footprint_pages: int,
                      seed: int = 0,
                      mean_interarrival_us: float = None) -> List[HostRequest]:
    """Generate a request stream for a named Table 2 workload."""
    return list(iter_workload(name, num_requests, footprint_pages, seed=seed,
                              mean_interarrival_us=mean_interarrival_us))


def iter_workload(name: str, num_requests: int, footprint_pages: int,
                  seed: int = 0,
                  mean_interarrival_us: float = None) -> Iterator[HostRequest]:
    """Stream a named Table 2 workload lazily (same draws as generate)."""
    workload = _catalog_workload(name, footprint_pages, seed,
                                 mean_interarrival_us)
    return workload.iter_requests(num_requests)


def table2_rows() -> List[dict]:
    """Table 2 rendered as printable rows."""
    return [{
        "workload": spec.name,
        "suite": spec.suite,
        "read_ratio": spec.read_ratio,
        "cold_ratio": spec.cold_ratio,
        "class": "read-dominant" if spec.read_dominant else "write-dominant",
    } for spec in WORKLOAD_CATALOG.values()]
