"""Benchmarks regenerating Table 1 and Table 2."""

import pytest

from conftest import run_once

from repro.experiments import table1, table2


@pytest.mark.figure("table1")
def test_bench_table1_timing_parameters(benchmark):
    result = benchmark(table1.run)
    rows = {row["parameter"]: row["time_us"] for row in result.rows}
    assert rows["tPROG"] == 700.0
    assert rows["tBERS"] == 5000.0


@pytest.mark.figure("table2")
def test_bench_table2_workload_characteristics(benchmark):
    result = run_once(benchmark, table2.run, num_requests=1200,
                      footprint_pages=8000)
    assert result.headline["workloads"] == 12
    assert result.headline["largest paper-vs-measured ratio gap"] <= 0.15
