"""repro-lint — static analysis for the simulator's determinism invariants.

The repo's headline guarantees (bitwise serial==parallel sweep and fleet
rows, reproducible seeded runs, counter-complete ``SimulationMetrics``
merges, registry-synchronized experiment docs) are load-bearing for every
experiment, and each can be silently broken by a one-line change: an
unseeded ``random.*`` call, a wall-clock read in a sim path, a set
iterated into result rows, a closure handed to ``pool_map``.  This package
machine-checks them with a small AST rule engine:

* :mod:`repro.lint.engine` — :class:`Rule` base class, :class:`Finding`,
  and the :class:`LintEngine` that walks the configured paths;
* :mod:`repro.lint.rules` — the six project-specific rules;
* :mod:`repro.lint.config` — ``[tool.repro-lint]`` in ``pyproject.toml``;
* :mod:`repro.lint.pragmas` — inline ``# repro-lint: disable=<rule>``;
* :mod:`repro.lint.cli` — the ``repro-lint`` console script
  (``text``/``json``/``github`` output, non-zero exit on findings).

Run it as ``repro-lint`` (installed) or ``python -m repro.lint``.
"""

from repro.lint.config import LintConfig, LintConfigError
from repro.lint.engine import Finding, LintEngine, ModuleContext, Rule
from repro.lint.pragmas import PragmaIndex
from repro.lint.rules import RULE_CLASSES, RULE_NAMES, default_rules, rules_by_name

__all__ = [
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintEngine",
    "ModuleContext",
    "PragmaIndex",
    "Rule",
    "RULE_CLASSES",
    "RULE_NAMES",
    "default_rules",
    "rules_by_name",
]
