"""Tests for the Section 8 extension policies and the Sentinel baseline."""

import pytest

from repro.core.extensions import (
    RegularReadSpeedupPolicy,
    SentinelPolicy,
    SpeculativeRetryPolicy,
    available_extensions,
    get_extension_policy,
)
from repro.core.policies import PnAR2Policy
from repro.errors.condition import OperatingCondition
from repro.nand.geometry import PageType


@pytest.fixture(scope="module")
def fresh():
    return OperatingCondition(0, 0.0, 30.0)


@pytest.fixture(scope="module")
def aged():
    return OperatingCondition(2000, 12.0, 30.0)


class TestFactory:
    def test_available_extensions(self):
        assert set(available_extensions()) == {
            "PnAR2+RegularReads", "PnAR2+Speculation", "Sentinel",
            "Sentinel+PnAR2"}

    def test_get_extension_policy(self, default_rpt):
        policy = get_extension_policy("sentinel+pnar2", rpt=default_rpt)
        assert policy.name == "Sentinel+PnAR2"
        with pytest.raises(ValueError):
            get_extension_policy("warp-drive")


class TestRegularReadSpeedup(object):
    def test_fresh_regular_read_is_faster_than_default(self, default_rpt, fresh):
        extension = RegularReadSpeedupPolicy(rpt=default_rpt)
        plain = PnAR2Policy(rpt=default_rpt)
        assert extension.regular_read_can_be_reduced(PageType.CSB, fresh)
        assert (extension.read_breakdown(0, PageType.CSB, fresh).response_us
                < plain.read_breakdown(0, PageType.CSB, fresh).response_us)

    def test_retry_reads_match_pnar2(self, default_rpt, aged):
        extension = RegularReadSpeedupPolicy(rpt=default_rpt)
        plain = PnAR2Policy(rpt=default_rpt)
        assert (extension.read_breakdown(15, PageType.CSB, aged).response_us
                == plain.read_breakdown(15, PageType.CSB, aged).response_us)

    def test_marginal_pages_fall_back_to_default_timing(self, default_rpt):
        # With an enormous safety margin no page qualifies for the speed-up.
        cautious = RegularReadSpeedupPolicy(rpt=default_rpt,
                                            safety_margin_bits=80)
        fresh = OperatingCondition(0, 0.0, 30.0)
        assert not cautious.regular_read_can_be_reduced(PageType.CSB, fresh)
        plain = PnAR2Policy(rpt=default_rpt)
        assert (cautious.read_breakdown(0, PageType.CSB, fresh).response_us
                == plain.read_breakdown(0, PageType.CSB, fresh).response_us)


class TestSpeculativeRetry:
    def test_saves_one_sensing_for_doomed_reads(self, default_rpt, aged):
        speculative = SpeculativeRetryPolicy(rpt=default_rpt)
        plain = PnAR2Policy(rpt=default_rpt)
        assert speculative.predicts_initial_read_failure(PageType.CSB, aged)
        saved = (plain.read_breakdown(15, PageType.CSB, aged).response_us
                 - speculative.read_breakdown(15, PageType.CSB, aged).response_us)
        assert saved == pytest.approx(
            plain.latency_model.sensing_latency_us(PageType.CSB))

    def test_no_change_for_reads_predicted_to_succeed(self, default_rpt, fresh):
        speculative = SpeculativeRetryPolicy(rpt=default_rpt)
        plain = PnAR2Policy(rpt=default_rpt)
        assert not speculative.predicts_initial_read_failure(PageType.CSB, fresh)
        assert (speculative.read_breakdown(0, PageType.CSB, fresh).response_us
                == plain.read_breakdown(0, PageType.CSB, fresh).response_us)


class TestSentinel:
    def test_step_reduction(self, default_rpt, aged):
        sentinel = SentinelPolicy(rpt=default_rpt)
        assert sentinel.effective_retry_steps(0, aged) == 0
        assert sentinel.effective_retry_steps(6, aged) == 1
        assert sentinel.effective_retry_steps(20, aged) == 2

    def test_sentinel_beats_pso_like_counts(self, default_rpt, aged):
        sentinel = SentinelPolicy(rpt=default_rpt)
        breakdown = sentinel.read_breakdown(20, PageType.CSB, aged)
        assert breakdown.retry_steps == 2

    def test_sentinel_pnar2_is_fastest_non_ideal(self, default_rpt, aged):
        sentinel = SentinelPolicy(rpt=default_rpt)
        combined = SentinelPolicy(rpt=default_rpt, mechanism="pnar2")
        plain = PnAR2Policy(rpt=default_rpt)
        responses = {
            "sentinel": sentinel.read_breakdown(20, PageType.CSB, aged).response_us,
            "sentinel+pnar2": combined.read_breakdown(20, PageType.CSB, aged).response_us,
            "pnar2": plain.read_breakdown(20, PageType.CSB, aged).response_us,
        }
        assert responses["sentinel+pnar2"] < responses["sentinel"]
        assert responses["sentinel"] < responses["pnar2"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SentinelPolicy(mechanism="magic")
        with pytest.raises(ValueError):
            SentinelPolicy(average_steps=0.5)

    def test_uses_reduced_timing_flag(self, default_rpt):
        assert not SentinelPolicy(rpt=default_rpt).uses_reduced_timing
        assert SentinelPolicy(rpt=default_rpt,
                              mechanism="pnar2").uses_reduced_timing


class TestAblationHarness:
    def test_extension_ablation_runs(self, default_rpt):
        from repro.experiments import ablation

        result = ablation.run("extensions", num_requests=80)
        policies = {row["policy"] for row in result.rows}
        assert "PnAR2" in policies and "Sentinel+PnAR2" in policies
        assert result.headline["best extension normalized"] <= \
            result.headline["PnAR2 normalized"] + 1e-9

    def test_rpt_ablation_runs(self):
        from repro.experiments import ablation

        result = ablation.run("rpt", num_requests=80,
                              conditions=((250, 1.0),))
        row = result.rows[0]
        assert row["adaptive_rpt_normalized"] <= row["flat_40pct_normalized"] + 0.02

    def test_unknown_ablation_rejected(self):
        from repro.experiments import ablation

        with pytest.raises(ValueError):
            ablation.run("bogus")
