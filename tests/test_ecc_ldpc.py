"""Tests for the LDPC code and bit-flipping decoder."""

import numpy as np
import pytest

from repro.ecc import GallagerLdpcCode


class TestConstruction:
    def test_dimensions(self):
        code = GallagerLdpcCode(n=512, d_v=3, d_c=8, seed=1)
        assert code.parity_check.shape == (512 * 3 // 8, 512)

    def test_regularity(self):
        code = GallagerLdpcCode(n=256, d_v=3, d_c=8, seed=1)
        assert np.all(code.parity_check.sum(axis=1) == 8)
        assert np.all(code.parity_check.sum(axis=0) == 3)

    def test_rate(self):
        code = GallagerLdpcCode(n=512, d_v=3, d_c=8, seed=1)
        assert code.rate == pytest.approx(1.0 - 3.0 / 8.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GallagerLdpcCode(n=100, d_v=3, d_c=8)
        with pytest.raises(ValueError):
            GallagerLdpcCode(n=512, d_v=1, d_c=8)


class TestDecoding:
    @pytest.fixture(scope="class")
    def code(self):
        return GallagerLdpcCode(n=512, d_v=3, d_c=8, seed=2)

    def test_zero_codeword_is_valid(self, code):
        assert code.is_codeword(code.zero_codeword())

    def test_syndrome_of_corrupted_word_is_nonzero(self, code, rng):
        corrupted = code.corrupt(code.zero_codeword(), 5, rng)
        assert np.any(code.syndrome(corrupted))

    def test_corrects_small_error_counts(self, code):
        rng = np.random.default_rng(9)
        rate = code.correction_rate(4, trials=15, rng=rng)
        assert rate >= 0.9

    def test_fails_on_large_error_counts(self, code):
        rng = np.random.default_rng(9)
        rate = code.correction_rate(80, trials=5, rng=rng)
        assert rate <= 0.2

    def test_decode_reports_iterations(self, code, rng):
        received = code.corrupt(code.zero_codeword(), 3, rng)
        result = code.decode(received)
        assert result.success
        assert result.iterations >= 1
        assert result.converged

    def test_clean_word_decodes_in_zero_iterations(self, code):
        result = code.decode(code.zero_codeword())
        assert result.success
        assert result.iterations == 0

    def test_wrong_length_rejected(self, code):
        with pytest.raises(ValueError):
            code.decode(np.zeros(10, dtype=np.uint8))
        with pytest.raises(ValueError):
            code.corrupt(code.zero_codeword(), -1, np.random.default_rng(0))

    def test_correction_rate_validates_trials(self, code, rng):
        with pytest.raises(ValueError):
            code.correction_rate(3, trials=0, rng=rng)
