"""Reliability impact of reduced read-timing parameters (Figures 8, 9, 10).

Section 5.2 of the paper sweeps the three read-phase timing parameters and
measures the increase in raw bit errors (Delta M_ERR) in the final retry
step.  The sweeps here reproduce the three panels:

* Figure 8 — reducing tPRE, tEVAL or tDISCH individually: tPRE has by far
  the largest safe margin (at least 40-47%), tEVAL is extremely sensitive
  (20% costs ~30 errors even on a fresh page), tDISCH sits in between.
* Figure 9 — reducing tPRE and tDISCH together: the partially discharged
  bitlines lengthen the next precharge, so the combination costs more than
  the sum of its parts.
* Figure 10 — operating temperature adds a handful of errors at 30/55 degC
  relative to 85 degC, which is why AR2 budgets a safety margin instead of
  profiling per temperature.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.characterization.platform import VirtualTestPlatform
from repro.errors.condition import OperatingCondition
from repro.errors.timing import TimingReduction

#: Reduction grids matching the x-axes of Figures 8 and 9.
PRE_REDUCTION_GRID = (0.0, 0.07, 0.13, 0.20, 0.27, 0.34, 0.40, 0.47, 0.54, 0.60)
EVAL_REDUCTION_GRID = (0.0, 0.05, 0.10, 0.15, 0.20)
DISCH_REDUCTION_GRID = (0.0, 0.07, 0.14, 0.20, 0.27, 0.34, 0.40)

#: Operating-condition grid of Figure 8 (evaluated at 85 degC, Section 5.2.1).
FIGURE8_PE_CYCLES = (0, 1000, 2000)
FIGURE8_RETENTION_MONTHS = (0.0, 6.0, 12.0)

#: The five (PEC, retention) pairs of Figure 9.
FIGURE9_CONDITIONS = ((1000, 0.0), (2000, 0.0), (0, 12.0), (1000, 12.0),
                      (2000, 12.0))


def _worst_case_timing_variation(platform: VirtualTestPlatform):
    """The block with the slowest bitline population (worst-case chip corner)."""
    return max((sample.variation for sample in platform.pages()),
               key=lambda variation: variation.timing_multiplier)


def _delta_m_err(platform: VirtualTestPlatform,
                 condition: OperatingCondition,
                 reduction: TimingReduction) -> float:
    """Maximum increase in final-retry-step errors caused by a reduction."""
    variation = _worst_case_timing_variation(platform)
    model = platform.error_model.timing_model
    return model.additional_errors_per_codeword(reduction, condition, variation)


def individual_parameter_sweep(
        platform: VirtualTestPlatform = None,
        pe_cycles: Sequence[int] = FIGURE8_PE_CYCLES,
        retention_months: Sequence[float] = FIGURE8_RETENTION_MONTHS,
        temperature_c: float = 85.0,
) -> Dict[str, List[dict]]:
    """Figure 8: Delta M_ERR when reducing each parameter individually.

    :return: mapping from parameter name (``"pre"``, ``"eval"``, ``"disch"``)
        to rows of ``{pe_cycles, retention_months, reduction, delta_m_err}``.
    """
    platform = platform or VirtualTestPlatform(num_chips=8, blocks_per_chip=3,
                                               wordlines_per_block=1)
    sweeps = {
        "pre": [TimingReduction(pre=value) for value in PRE_REDUCTION_GRID],
        "eval": [TimingReduction(eval_=value) for value in EVAL_REDUCTION_GRID],
        "disch": [TimingReduction(disch=value) for value in DISCH_REDUCTION_GRID],
    }
    results: Dict[str, List[dict]] = {name: [] for name in sweeps}
    for pec in pe_cycles:
        for months in retention_months:
            condition = OperatingCondition(pe_cycles=pec,
                                           retention_months=months,
                                           temperature_c=temperature_c)
            for name, reductions in sweeps.items():
                for reduction in reductions:
                    fraction = getattr(reduction,
                                       "eval_" if name == "eval" else name)
                    results[name].append({
                        "pe_cycles": pec,
                        "retention_months": months,
                        "reduction": fraction,
                        "delta_m_err": round(
                            _delta_m_err(platform, condition, reduction), 2),
                    })
    return results


def combined_parameter_sweep(
        platform: VirtualTestPlatform = None,
        conditions: Sequence[Tuple[int, float]] = FIGURE9_CONDITIONS,
        temperature_c: float = 85.0,
) -> List[dict]:
    """Figure 9: M_ERR when reducing tPRE and tDISCH simultaneously.

    M_ERR here is the total final-retry-step error count (the figure plots it
    against the 72-bit ECC capability): the near-optimal-step errors of the
    condition plus the timing-induced additional errors.
    """
    platform = platform or VirtualTestPlatform(num_chips=8, blocks_per_chip=3,
                                               wordlines_per_block=1)
    rows = []
    for pec, months in conditions:
        condition = OperatingCondition(pe_cycles=pec, retention_months=months,
                                       temperature_c=temperature_c)
        base = platform.max_final_step_errors(condition)
        for disch in DISCH_REDUCTION_GRID:
            for pre in PRE_REDUCTION_GRID:
                reduction = TimingReduction(pre=pre, disch=disch)
                delta = _delta_m_err(platform, condition, reduction)
                rows.append({
                    "pe_cycles": pec,
                    "retention_months": months,
                    "pre_reduction": pre,
                    "disch_reduction": disch,
                    "m_err": round(base + delta, 2),
                })
    return rows


def temperature_sweep(
        platform: VirtualTestPlatform = None,
        pe_cycles: Sequence[int] = FIGURE8_PE_CYCLES,
        retention_months: Sequence[float] = (0.0, 12.0),
        temperatures_c: Sequence[float] = (55.0, 30.0),
        reference_temperature_c: float = 85.0,
) -> List[dict]:
    """Figure 10: extra tPRE-reduction errors at low operating temperature.

    Reports, for each condition and tPRE reduction, how many *additional*
    errors appear at 30 and 55 degC compared to the 85 degC reference —
    at most about 7 even at (2K P/E cycles, 12 months) in the paper.
    """
    platform = platform or VirtualTestPlatform(num_chips=8, blocks_per_chip=3,
                                               wordlines_per_block=1)
    rows = []
    for pec in pe_cycles:
        for months in retention_months:
            for temperature in temperatures_c:
                for pre in PRE_REDUCTION_GRID:
                    reduction = TimingReduction(pre=pre)
                    cold = _delta_m_err(
                        platform,
                        OperatingCondition(pec, months, temperature),
                        reduction)
                    hot = _delta_m_err(
                        platform,
                        OperatingCondition(pec, months, reference_temperature_c),
                        reduction)
                    rows.append({
                        "pe_cycles": pec,
                        "retention_months": months,
                        "temperature_c": temperature,
                        "pre_reduction": pre,
                        "extra_errors_vs_85c": round(cold - hot, 2),
                    })
    return rows
