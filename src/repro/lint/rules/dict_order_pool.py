"""``no-dict-order-across-pool``: worker output must not encode payload dict order.

Dict iteration order is insertion order, and pickling preserves it — so a
payload dict crossing a ``pool_map`` boundary carries its *parent-side
construction history* into the worker.  That history is exactly the kind of
incidental state the bitwise serial==parallel guarantee forbids results from
depending on: a payload assembled from a merge, a cache, or a refactored
builder can present the same content in a different order, and a worker that
iterates it bare silently reorders its rows.  Workers must be pure functions
of payload *content*, so the rule flags order-sensitive iteration of a
worker's dict-typed parameters:

* ``for x in param`` / comprehensions over ``param`` (when the function also
  uses ``param`` as a dict — ``.items()`` / ``.keys()`` / ``.values()`` /
  ``.get()`` / ``.setdefault()`` / ``.update()``),
* ``for k, v in param.items()`` (and ``.keys()`` / ``.values()``),
* order-preserving materializations — ``list(param)``, ``tuple(...)``,
  ``enumerate(...)``, ``iter(...)`` — of either form.

A *worker* is any callable handed as the first argument to a configured pool
entry point (``pool-entry-points`` in ``[tool.repro-lint]``, default
``pool_map``), directly or through ``functools.partial``.  Wrapping the
iteration in ``sorted(...)`` — or any other order-insensitive consumer —
is the canonical fix and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.engine import Finding, ModuleContext, Rule

#: Attribute accesses that mark a parameter as dict-typed.
DICT_EVIDENCE = frozenset(
    {"items", "keys", "values", "get", "setdefault", "update"}
)

#: Dict views whose iteration order is the dict's insertion order.
DICT_VIEWS = frozenset({"items", "keys", "values"})

#: Calls that materialize their argument in iteration order.
ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

#: Builtins whose result does not depend on argument order.
ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


def _callable_name(func: ast.expr) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _worker_names(tree: ast.Module, entry_points: frozenset) -> Set[str]:
    """Names referenced as the fan-out callable of a pool entry point."""
    workers: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _callable_name(node.func) not in entry_points or not node.args:
            continue
        arg = node.args[0]
        # Unwrap functools.partial; the pickle-safe-pool rule already
        # polices what may legally sit underneath.
        if isinstance(arg, ast.Call) and _callable_name(arg.func) == "partial":
            if not arg.args:
                continue
            arg = arg.args[0]
        if isinstance(arg, ast.Name):
            workers.add(arg.id)
    return workers


class _WorkerVisitor(ast.NodeVisitor):
    """Flags order-sensitive payload-dict iteration inside one worker."""

    def __init__(self, rule: "NoDictOrderAcrossPoolRule",
                 module: ModuleContext, function: ast.FunctionDef,
                 params: Set[str], dict_params: Set[str]):
        self.rule = rule
        self.module = module
        self.function = function
        self.params = params
        self.dict_params = dict_params
        self.findings: List[Finding] = []
        #: Comprehensions directly inside an order-insensitive call.
        self._order_safe: Set[int] = set()

    # -- payload-dict detection ----------------------------------------------
    def _iterated_param(self, node: ast.expr) -> str:
        """The parameter name an iterable expression reads, or ''.

        ``param`` needs corroborating dict evidence; ``param.items()`` (and
        the other views) is dict evidence by itself.
        """
        if isinstance(node, ast.Name) and node.id in self.dict_params:
            return node.id
        if (
            isinstance(node, ast.Call)
            and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEWS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.params
        ):
            return node.func.value.id
        return ""

    def _flag(self, node: ast.AST, param: str, context: str) -> None:
        self.findings.append(
            self.module.finding(
                self.rule,
                node,
                f"pool worker {self.function.name}() {context} its payload "
                f"dict {param!r} in insertion order, which is parent-side "
                "construction history crossing the process boundary; iterate "
                "sorted(...) so the result depends only on payload content",
            )
        )

    # -- iteration sites ------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        param = self._iterated_param(node.iter)
        if param:
            self._flag(node, param, "iterates")
        self.generic_visit(node)

    def _visit_comprehension(self, node, kind: str) -> None:
        if id(node) not in self._order_safe:
            for generator in node.generators:
                param = self._iterated_param(generator.iter)
                if param:
                    self._flag(node, param, f"iterates ({kind})")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    # Building a set (unordered) from a dict view is order-insensitive.
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _callable_name(node.func)
        if isinstance(node.func, ast.Name) and name in ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                    ast.DictComp)):
                    self._order_safe.add(id(arg))
            # sorted(param) / min(param.items()) etc. consume the order.
            self.generic_visit(node)
            return
        if isinstance(node.func, ast.Name) and name in ORDER_SENSITIVE:
            if node.args:
                param = self._iterated_param(node.args[0])
                if param:
                    self._flag(node, param, f"materializes ({name}())")
        self.generic_visit(node)


class NoDictOrderAcrossPoolRule(Rule):
    name = "no-dict-order-across-pool"
    description = (
        "pool workers must not iterate payload dicts bare (for loops, "
        "comprehensions, list()/tuple()/enumerate()); insertion order is "
        "parent construction history, not content — sort first"
    )
    sim_scoped = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        entry_points = frozenset(module.config.pool_entry_points)
        workers = _worker_names(module.tree, entry_points)
        if not workers:
            return iter(())
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name not in workers:
                continue
            arguments = node.args
            params = {
                arg.arg
                for arg in (arguments.posonlyargs + arguments.args
                            + arguments.kwonlyargs)
            }
            dict_params = self._dict_evidenced(node, params)
            visitor = _WorkerVisitor(self, module, node, params, dict_params)
            for statement in node.body:
                visitor.visit(statement)
            findings.extend(visitor.findings)
        return iter(findings)

    @staticmethod
    def _dict_evidenced(function: ast.FunctionDef,
                        params: Set[str]) -> Set[str]:
        """Parameters the function body uses as dicts."""
        evidenced: Set[str] = set()
        for node in ast.walk(function):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in DICT_EVIDENCE
                and isinstance(node.value, ast.Name)
                and node.value.id in params
            ):
                evidenced.add(node.value.id)
        return evidenced
