"""``counter-registration``: metrics counters must merge and report.

``SimulationMetrics.merge()`` folds scalar counters by iterating the
class-level ``COUNTER_FIELDS`` tuple; a counter initialized in ``__init__``
but missing from the tuple silently stays zero on every merged (fleet,
sweep, suite) result — the exact bug class PR 6's completeness test was
added for.  This rule generalizes that test to any class declaring a
``COUNTER_FIELDS`` tuple:

* every integer counter assigned in ``__init__`` (``self.x = 0``, name not
  underscore-prefixed) must appear in ``COUNTER_FIELDS``;
* every ``COUNTER_FIELDS`` entry must be initialized as an integer counter
  in ``__init__``;
* if the class defines ``summary()``, every counter must be readable from
  it — directly or through methods ``summary()`` transitively calls — so no
  counter can silently vanish from the reporting surface.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.engine import Finding, ModuleContext, Rule


def _counter_fields(class_node: ast.ClassDef):
    """The ``COUNTER_FIELDS`` assignment of a class body, if declared."""
    for statement in class_node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "COUNTER_FIELDS":
                return statement
    return None


def _declared_names(statement) -> Tuple[str, ...]:
    value = statement.value
    if not isinstance(value, (ast.Tuple, ast.List)):
        return ()
    names = []
    for element in value.elts:
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.append(element.value)
    return tuple(names)


def _integer_counters(init: ast.FunctionDef) -> Dict[str, ast.AST]:
    """``self.<name> = <int literal>`` assignments (bools excluded)."""
    counters: Dict[str, ast.AST] = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        value = node.value
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, int)
            and not isinstance(value.value, bool)
            and not target.attr.startswith("_")
        ):
            counters[target.attr] = node
    return counters


def _method_surface(method: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """(attributes read, methods called) on ``self`` within one method."""
    reads: Set[str] = set()
    calls: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            reads.add(node.attr)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            calls.add(node.func.attr)
    return reads, calls


def _reachable_reads(methods: Dict[str, ast.FunctionDef], start: str) -> Set[str]:
    """Self-attributes readable from ``start`` through self-method calls."""
    surfaces = {name: _method_surface(method) for name, method in methods.items()}
    reachable: Set[str] = set()
    pending = [start]
    visited: Set[str] = set()
    while pending:
        name = pending.pop()
        if name in visited or name not in surfaces:
            continue
        visited.add(name)
        reads, calls = surfaces[name]
        reachable.update(reads)
        pending.extend(sorted(calls))
    return reachable


class CounterRegistrationRule(Rule):
    name = "counter-registration"
    description = (
        "integer counters assigned in __init__ of a COUNTER_FIELDS class "
        "must be listed in COUNTER_FIELDS (merge completeness) and surface "
        "in summary()"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for finding in self._check_class(module, node):
                    yield finding

    def _check_class(
        self, module: ModuleContext, class_node: ast.ClassDef
    ) -> List[Finding]:
        fields_node = _counter_fields(class_node)
        if fields_node is None:
            return []
        declared = _declared_names(fields_node)
        methods = {
            statement.name: statement
            for statement in class_node.body
            if isinstance(statement, ast.FunctionDef)
        }
        init = methods.get("__init__")
        counters = _integer_counters(init) if init is not None else {}
        findings = []
        for name in sorted(counters):
            if name not in declared:
                findings.append(
                    module.finding(
                        self,
                        counters[name],
                        f"integer counter {name!r} of {class_node.name} is "
                        "missing from COUNTER_FIELDS; merge() would silently "
                        "drop it from aggregated results",
                    )
                )
        for name in declared:
            if name not in counters:
                findings.append(
                    module.finding(
                        self,
                        fields_node,
                        f"COUNTER_FIELDS lists {name!r} but "
                        f"{class_node.name}.__init__ never initializes it as "
                        "an integer counter",
                    )
                )
        if "summary" in methods:
            reachable = _reachable_reads(methods, "summary")
            for name in declared:
                if name in counters and name not in reachable:
                    findings.append(
                        module.finding(
                            self,
                            counters[name],
                            f"counter {name!r} never surfaces in "
                            f"{class_node.name}.summary() (directly or via "
                            "methods summary() calls)",
                        )
                    )
        return findings
