"""Figure 15: combining PR2/AR2 with an existing retry-mitigation scheme.

PSO (Process Similarity-aware Optimization, Shim et al.) reduces the *number*
of retry steps; PR2 and AR2 reduce the *latency of each step*.  The paper
shows the two are complementary: PSO+PnAR2 cuts the mean response time by up
to 31.5% (17% on average) over PSO alone in read-dominant workloads, yet
still sits ~1.6x above the ideal NoRR.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.experiments.common import (
    DEFAULT_CONDITION_GRID,
    default_experiment_config,
)
from repro.experiments.api import param, register_experiment
from repro.experiments.reporting import ExperimentResult
from repro.sim.registry import default_registry
from repro.sim.sweep import SweepRunner
from repro.workloads.catalog import WORKLOAD_CATALOG, workload_names


@register_experiment(
    "fig15",
    artifact="Figure 15 — PSO and PSO+PnAR2 comparison",
    tags=("paper", "figure", "system"),
    params=(
        param("workloads", None, "Table 2 workload names (None = all 12)",
              fast=("usr_1", "YCSB-C", "stg_0"), smoke=("usr_1",)),
        param("conditions", None,
              "(PEC, months) grid (None = the 9-cell default)",
              fast=((1000, 6.0), (2000, 12.0)), smoke=((1000, 6.0),)),
        param("num_requests", 600, "host requests per cell",
              fast=300, smoke=100),
        param("seed", 0, "stream seed"),
        param("processes", 1, "sweep worker processes for the inner grid",
              cache_relevant=False),
    ))
def run(workloads: Sequence[str] = None,
        conditions: Sequence[Tuple[int, float]] = None,
        num_requests: int = 600,
        seed: int = 0,
        config=None,
        processes: int = 1) -> ExperimentResult:
    workloads = list(workloads or workload_names())
    conditions = tuple(conditions or DEFAULT_CONDITION_GRID)
    config = config or default_experiment_config()
    runner = SweepRunner(config=config, processes=processes)
    sweep = runner.run(policies=default_registry().names(tag="fig15"),
                       workloads=workloads, conditions=conditions,
                       num_requests=num_requests, seed=seed)
    grid = sweep.to_grid()
    rows = sweep.rows

    def reductions_vs_pso(read_dominant: bool):
        """PSO+PnAR2 response-time reduction relative to PSO per cell."""
        values = []
        for workload, by_condition in grid.items():
            if WORKLOAD_CATALOG[workload].read_dominant != read_dominant:
                continue
            for cell in by_condition.values():
                pso = cell["PSO"].metrics.mean_response_time_us()
                combined = cell["PSO+PnAR2"].metrics.mean_response_time_us()
                if pso > 0:
                    values.append(1.0 - combined / pso)
        return values

    def ratio_to_norr(policy: str, read_dominant: bool):
        values = []
        for workload, by_condition in grid.items():
            if WORKLOAD_CATALOG[workload].read_dominant != read_dominant:
                continue
            for cell in by_condition.values():
                norr = cell["NoRR"].metrics.mean_response_time_us()
                target = cell[policy].metrics.mean_response_time_us()
                if norr > 0:
                    values.append(target / norr)
        return values

    read_gains = reductions_vs_pso(read_dominant=True)
    write_gains = reductions_vs_pso(read_dominant=False)
    pso_vs_norr = ratio_to_norr("PSO", read_dominant=True)
    combined_vs_norr = ratio_to_norr("PSO+PnAR2", read_dominant=True)

    headline = {
        "PSO+PnAR2 vs PSO, read-dominant (mean)":
            f"{float(np.mean(read_gains)):.1%}" if read_gains else None,
        "PSO+PnAR2 vs PSO, read-dominant (max)":
            f"{float(np.max(read_gains)):.1%}" if read_gains else None,
        "PSO+PnAR2 vs PSO, write-dominant (mean)":
            f"{float(np.mean(write_gains)):.1%}" if write_gains else None,
        "PSO / NoRR mean ratio (read-dominant)":
            round(float(np.mean(pso_vs_norr)), 2) if pso_vs_norr else None,
        "PSO+PnAR2 / NoRR mean ratio (read-dominant)":
            round(float(np.mean(combined_vs_norr)), 2) if combined_vs_norr else None,
    }
    return ExperimentResult(
        name="fig15",
        title="Figure 15: PSO and PSO+PnAR2 normalized response time",
        rows=rows,
        headline=headline,
        notes=["the paper reports up to 31.5% (17% mean) reduction over PSO "
               "in read-dominant workloads and a remaining 1.6x gap to NoRR"],
    )


def main() -> None:  # pragma: no cover
    result = run(workloads=("usr_1", "YCSB-C", "stg_0"),
                 conditions=((1000, 6.0), (2000, 12.0)),
                 num_requests=400)
    print(result.to_text(max_rows=80))


if __name__ == "__main__":  # pragma: no cover
    main()
