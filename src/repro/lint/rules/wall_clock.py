"""``no-wall-clock``: ban wall-clock and entropy reads in simulation paths.

A simulated-time system must never consult the host clock or the OS entropy
pool on a result-bearing path: a single ``time.time()`` in the event loop
makes two runs of the same seed diverge, and ``os.urandom`` is
unreproducible by design.  Timing *reporting* (CLI elapsed-time displays)
lives outside the sim paths or carries an explicit
``# repro-lint: disable=no-wall-clock`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, ModuleContext, Rule

#: Dotted call targets that read the host clock or entropy pool.
BANNED_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Whole modules whose every call is an entropy source.
BANNED_PREFIXES = ("secrets.",)


class NoWallClockRule(Rule):
    name = "no-wall-clock"
    description = (
        "wall-clock/entropy reads (time.time, perf_counter, datetime.now, "
        "os.urandom, ...) are banned in sim paths; use simulated time or a "
        "seeded RNG"
    )
    sim_scoped = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.imports.resolve(node.func)
            if dotted is None:
                continue
            if dotted in BANNED_CALLS or dotted.startswith(BANNED_PREFIXES):
                yield module.finding(
                    self,
                    node,
                    f"call to {dotted}() reads the host clock/entropy pool; "
                    "sim paths must depend only on simulated time and seeded "
                    "randomness",
                )
