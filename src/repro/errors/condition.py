"""Operating conditions used throughout the characterization and evaluation.

The paper characterizes NAND flash behaviour along three axes (Section 4):

* P/E-cycle count of the block (0 to 2K in the characterization, up to the
  3K endurance limit in the evaluation grid),
* data retention age, expressed as the *effective* retention age at 30 degC
  following JEDEC JESD218 (a bake at elevated temperature maps to a longer
  effective age via Arrhenius's law, see :mod:`repro.errors.retention`),
* operating temperature at the time of the read (30, 55 or 85 degC in the
  paper's experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OperatingCondition:
    """A (P/E cycles, retention age, operating temperature) triple."""

    pe_cycles: int = 0
    retention_months: float = 0.0
    temperature_c: float = 30.0

    def __post_init__(self) -> None:
        if self.pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        if self.retention_months < 0:
            raise ValueError("retention_months must be non-negative")
        if not -40.0 <= self.temperature_c <= 125.0:
            raise ValueError(
                "temperature_c outside the plausible operating range "
                f"[-40, 125]: {self.temperature_c}")

    # -- derived helpers ------------------------------------------------------
    @property
    def kilo_pe_cycles(self) -> float:
        """P/E cycles expressed in thousands (the paper's PEC axis unit)."""
        return self.pe_cycles / 1000.0

    def with_temperature(self, temperature_c: float) -> "OperatingCondition":
        return replace(self, temperature_c=temperature_c)

    def with_retention(self, retention_months: float) -> "OperatingCondition":
        return replace(self, retention_months=retention_months)

    def with_pe_cycles(self, pe_cycles: int) -> "OperatingCondition":
        return replace(self, pe_cycles=pe_cycles)

    def key(self) -> tuple:
        """Hashable key used for caching per-condition computations."""
        return (self.pe_cycles, round(self.retention_months, 6),
                round(self.temperature_c, 3))

    def label(self) -> str:
        """Short human-readable label, e.g. ``"1K PEC / 6 mo / 85C"``."""
        if self.pe_cycles >= 1000 and self.pe_cycles % 1000 == 0:
            pec = f"{self.pe_cycles // 1000}K"
        else:
            pec = str(self.pe_cycles)
        return (f"{pec} PEC / {self.retention_months:g} mo / "
                f"{self.temperature_c:g}C")


#: Worst-case operating condition prescribed by manufacturers for client SSDs
#: (a 1-year retention age at 1.5K P/E cycles, Section 1 / Section 5.1).
MANUFACTURER_WORST_CASE = OperatingCondition(
    pe_cycles=1500, retention_months=12.0, temperature_c=30.0)

#: The characterization grid of Figures 5 and 7: P/E cycles x retention ages.
CHARACTERIZATION_PE_CYCLES = (0, 1000, 2000)
CHARACTERIZATION_RETENTION_MONTHS = (0.0, 3.0, 6.0, 9.0, 12.0)
CHARACTERIZATION_TEMPERATURES_C = (85.0, 55.0, 30.0)


def characterization_grid(temperatures=(85.0,)):
    """Yield the (PEC, retention, temperature) grid used by Figures 5-11."""
    for temperature_c in temperatures:
        for pe_cycles in CHARACTERIZATION_PE_CYCLES:
            for retention_months in CHARACTERIZATION_RETENTION_MONTHS:
                yield OperatingCondition(
                    pe_cycles=pe_cycles,
                    retention_months=retention_months,
                    temperature_c=temperature_c,
                )
