"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run(...)`` function returning an
:class:`repro.experiments.reporting.ExperimentResult` whose rows mirror the
data the corresponding paper artifact reports, plus sensible "fast" defaults
so the whole suite can run in minutes.  The ``repro-experiment`` console
script (see :mod:`repro.experiments.runner`) dispatches by experiment name.

==========  ==============================================================
Experiment  Paper artifact
==========  ==============================================================
table1      Table 1 — NAND flash timing parameters
table2      Table 2 — workload characteristics (read/cold ratio)
fig04b      Figure 4(b) — RBER over the last retry steps
fig05       Figure 5 — retry-step counts across (PEC, retention)
fig07       Figure 7 — ECC-capability margin in the final retry step
fig08       Figure 8 — effect of reducing each timing parameter
fig09       Figure 9 — effect of reducing tPRE and tDISCH together
fig10       Figure 10 — temperature effect on tPRE reduction
fig11       Figure 11 — minimum safe tPRE per condition
fig14       Figure 14 — SSD response time of PR2/AR2/PnAR2/NoRR
fig15       Figure 15 — PSO and PSO+PnAR2 comparison
==========  ==============================================================
"""

from repro.experiments.reporting import ExperimentResult

__all__ = ["ExperimentResult", "EXPERIMENT_NAMES"]

#: Names accepted by the runner, in presentation order.
EXPERIMENT_NAMES = (
    "table1", "table2", "fig04b", "fig05", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig14", "fig15",
)
