"""Every example script must run end to end (tiny parameters).

Examples are documentation that executes; without coverage they silently
rot as the APIs underneath them move.  Each test runs one script from
``examples/`` in-process via :func:`runpy.run_path` (so a failure gives a
real traceback, not an exit code) with parameters shrunk to keep the whole
module in the seconds range.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> tiny-parameter argv tail.
EXAMPLES = {
    "quickstart.py": ["60"],
    "policy_comparison.py": ["--workloads", "usr_1", "--requests", "60",
                             "--processes", "1"],
    "parallel_sweep.py": ["--processes", "1", "--requests", "40"],
    "trace_replay.py": ["--requests", "80"],
    "experiment_registry.py": ["--profile", "smoke", "--jobs", "1",
                               "--tag", "characterization"],
    "characterize_chips.py": ["--chips", "2", "--blocks", "1"],
    "chip_level_read_retry.py": [],
    "fleet_capacity.py": ["--devices", "2", "--requests", "60",
                          "--processes", "1"],
}


def run_example(script: str, argv, monkeypatch, capsys):
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)] + list(argv))
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script, monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)  # scripts may write scratch files
    output = run_example(script, EXAMPLES[script], monkeypatch, capsys)
    assert output.strip(), f"{script} produced no output"


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    missing = scripts - set(EXAMPLES)
    assert not missing, (
        f"examples {sorted(missing)} have no smoke test; add them to "
        "EXAMPLES with tiny parameters")
