"""Experiment harnesses: one registered experiment per table/figure.

Every harness module registers its ``run(...)`` function in the declarative
:class:`~repro.experiments.api.ExperimentRegistry` via
:func:`~repro.experiments.api.register_experiment`, declaring the paper
artifact it reproduces, suite tags, and a typed
:class:`~repro.experiments.api.ParamSpec` with ``full``/``fast``/``smoke``
parameter profiles.  Harnesses return an
:class:`~repro.experiments.reporting.ExperimentResult`, which serializes to
JSON/CSV and is cached by the content-addressed
:class:`~repro.experiments.store.ArtifactStore`.

The ``repro-experiment`` console script (:mod:`repro.experiments.runner`)
drives the registry with ``list`` / ``run`` / ``export`` / ``show``
subcommands; ``python -m repro`` routes through the same registry.

==================== ==========================================================
Experiment           Artifact
==================== ==========================================================
table1               Table 1 — NAND flash timing parameters
table2               Table 2 — workload characteristics (read/cold ratio)
fig04b               Figure 4(b) — RBER over the last retry steps
fig05                Figure 5 — retry-step counts across (PEC, retention)
fig07                Figure 7 — ECC-capability margin in the final retry step
fig08                Figure 8 — effect of reducing each timing parameter
fig09                Figure 9 — effect of reducing tPRE and tDISCH together
fig10                Figure 10 — temperature effect on tPRE reduction
fig11                Figure 11 — minimum safe tPRE per condition
fig14                Figure 14 — SSD response time of PR2/AR2/PnAR2/NoRR
fig15                Figure 15 — PSO and PSO+PnAR2 comparison
tail_latency         Tail latency — per-policy p99/p999 across Table 2
ablation_rpt         Ablation — adaptive RPT vs flat 40% tPRE reduction
ablation_scheduling  Ablation — scheduler features of the baseline SSD
ablation_extensions  Ablation — Section 8 extensions and Sentinel
==================== ==========================================================
"""

from repro.experiments.api import (
    DEFAULT_EXPERIMENT_REGISTRY,
    DuplicateExperimentError,
    ExperimentLookupError,
    ExperimentRegistry,
    Param,
    ParamSpec,
    ParameterValueError,
    UnknownParameterError,
    UnknownProfileError,
    default_experiment_registry,
    param,
    register_experiment,
)
from repro.experiments.reporting import ExperimentResult, RunManifest
from repro.experiments.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "DEFAULT_EXPERIMENT_REGISTRY",
    "DuplicateExperimentError",
    "EXPERIMENT_NAMES",
    "ExperimentLookupError",
    "ExperimentRegistry",
    "ExperimentResult",
    "Param",
    "ParamSpec",
    "ParameterValueError",
    "RunManifest",
    "UnknownParameterError",
    "UnknownProfileError",
    "default_experiment_registry",
    "param",
    "register_experiment",
]


def __getattr__(name):
    if name == "EXPERIMENT_NAMES":
        # The paper-artifact suite in presentation order, derived from the
        # registry (the seed hardcoded this tuple).
        return default_experiment_registry().names(tag="paper")
    raise AttributeError(
        f"module 'repro.experiments' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | {"EXPERIMENT_NAMES"})
