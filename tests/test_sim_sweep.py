"""Tests for the parallel sweep runner and the legacy grid shims."""

import pytest

from repro.sim import Condition, SweepRunner, WorkloadSpec
from repro.sim import sweep as sweep_module
from repro.ssd.config import SsdConfig

POLICIES = ("Baseline", "PnAR2", "NoRR")
WORKLOADS = ("usr_1", "stg_0")
CONDITIONS = ((0, 0.0), (1000, 6.0))


@pytest.fixture(scope="module")
def tiny_config():
    return SsdConfig.tiny()


@pytest.fixture(scope="module")
def serial_result(tiny_config):
    runner = SweepRunner(config=tiny_config, processes=1)
    return runner.run(policies=POLICIES, workloads=WORKLOADS,
                      conditions=CONDITIONS, num_requests=50)


class TestSweepResult:
    def test_row_grid_shape(self, serial_result):
        assert len(serial_result.rows) == (
            len(POLICIES) * len(WORKLOADS) * len(CONDITIONS))
        assert {row["workload"] for row in serial_result.rows} == set(WORKLOADS)

    def test_rows_normalized_to_baseline(self, serial_result):
        for row in serial_result.filter_rows(policy="Baseline"):
            assert row["normalized_response_time"] == pytest.approx(1.0)
        for row in serial_result.filter_rows(policy="NoRR"):
            # At the fresh (0 PEC, 0 mo) condition no read retries, so NoRR
            # ties the Baseline; under aging it must win outright.
            assert row["normalized_response_time"] <= 1.0
        aged = serial_result.filter_rows(policy="NoRR", workload="usr_1",
                                         pe_cycles=1000)
        assert aged and all(row["normalized_response_time"] < 1.0
                            for row in aged)

    def test_workload_classes(self, serial_result):
        assert all(row["class"] == "read-dominant"
                   for row in serial_result.filter_rows(workload="usr_1"))
        assert all(row["class"] == "write-dominant"
                   for row in serial_result.filter_rows(workload="stg_0"))

    def test_cell_accessor(self, serial_result):
        cell = serial_result.cell("usr_1", 1000, 6.0)
        assert set(cell) == set(POLICIES)
        assert cell["Baseline"].preconditioned_pe_cycles == 1000

    def test_to_grid_matches_legacy_layout(self, serial_result):
        grid = serial_result.to_grid()
        assert set(grid) == set(WORKLOADS)
        assert set(grid["usr_1"]) == {(0, 0.0), (1000, 6.0)}
        assert set(grid["usr_1"][(1000, 6.0)]) == set(POLICIES)

    def test_table_renders(self, serial_result):
        text = serial_result.table(max_rows=5)
        assert "normalized_response_time" in text
        assert "more rows" in text


class TestParallelEquality:
    def test_parallel_rows_bitwise_identical(self, tiny_config, serial_result):
        parallel = SweepRunner(config=tiny_config, processes=4).run(
            policies=POLICIES, workloads=WORKLOADS, conditions=CONDITIONS,
            num_requests=50)
        assert parallel.rows == serial_result.rows
        for key, cell in serial_result.cells.items():
            for policy, result in cell.items():
                other = parallel.cells[key][policy]
                # Histogram equality covers bucket counts, the exact count
                # and the compensated sum — i.e. the full recorder state.
                assert other.metrics.read_latency == \
                    result.metrics.read_latency
                assert other.metrics.summary() == result.metrics.summary()

    def test_rows_carry_tail_latency_columns(self, serial_result):
        for row in serial_result.rows:
            assert row["p999_response_us"] >= row["p99_response_us"] >= 0.0
        aged = serial_result.filter_rows(policy="Baseline", workload="usr_1",
                                         pe_cycles=1000)
        assert all(row["p99_response_us"] > row["mean_response_us"]
                   for row in aged)


class TestStreamCache:
    def test_stream_reused_across_conditions(self, tiny_config):
        sweep_module._STREAM_CACHE.clear()
        stats = sweep_module._STREAM_CACHE_STATS
        before = dict(stats)
        SweepRunner(config=tiny_config, processes=1).run(
            policies=("NoRR",), workloads=("usr_1",),
            conditions=((0, 0.0), (1000, 6.0), (2000, 12.0)),
            num_requests=30)
        assert stats["misses"] - before["misses"] == 1
        assert stats["hits"] - before["hits"] == 2

    def test_per_cell_seeds_vary_streams(self, tiny_config):
        runner = SweepRunner(config=tiny_config, per_cell_seeds=True)
        result = runner.run(policies=("NoRR",), workloads=("usr_1",),
                            conditions=((0, 0.0), (1000, 6.0)),
                            num_requests=30)
        first = result.cell("usr_1", 0, 0.0)["NoRR"]
        second = result.cell("usr_1", 1000, 6.0)["NoRR"]
        assert first.metrics.read_latency != second.metrics.read_latency


class TestValidation:
    def test_rejects_empty_grid(self, tiny_config):
        runner = SweepRunner(config=tiny_config)
        with pytest.raises(ValueError):
            runner.run(policies=POLICIES, workloads=())
        with pytest.raises(ValueError):
            runner.run(policies=POLICIES, workloads=("usr_1",),
                       conditions=())

    def test_rejects_unknown_workload(self, tiny_config):
        with pytest.raises(KeyError):
            SweepRunner(config=tiny_config).run(
                policies=POLICIES, workloads=("not-a-workload",))

    def test_rejects_bad_process_count(self):
        with pytest.raises(ValueError):
            SweepRunner(processes=0)

    def test_duplicate_workload_labels_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="collide"):
            SweepRunner(config=tiny_config).run(
                policies=("NoRR",), workloads=("usr_1", "USR_1"))

    def test_distinct_synthetic_specs_get_distinct_cells(self, tiny_config):
        from repro.workloads.synthetic import WorkloadShape

        read_heavy = WorkloadSpec(shape=WorkloadShape(read_ratio=0.95),
                                  num_requests=30)
        write_heavy = WorkloadSpec(shape=WorkloadShape(read_ratio=0.10),
                                   num_requests=30)
        assert read_heavy.label != write_heavy.label
        result = SweepRunner(config=tiny_config).run(
            policies=("Baseline",), workloads=(read_heavy, write_heavy),
            conditions=((0, 0.0),))
        assert len(result.cells) == 2
        reads = [result.cell(spec.label, 0, 0.0)["Baseline"].metrics.host_reads
                 for spec in (read_heavy, write_heavy)]
        assert reads[0] > reads[1]

    def test_explicit_spec_keeps_its_own_fields(self, tiny_config):
        spec = WorkloadSpec(name="usr_1", num_requests=30,
                            mean_interarrival_us=300.0,
                            footprint_fraction=0.5)
        runner = SweepRunner(config=tiny_config, mean_interarrival_us=700.0)
        result = runner.run(policies=("NoRR",), workloads=(spec,),
                            conditions=((0, 0.0),))
        used = result.workloads[0]
        assert used.mean_interarrival_us == 300.0
        assert used.footprint_fraction == 0.5

    def test_workload_spec_objects_accepted(self, tiny_config):
        spec = WorkloadSpec(name="usr_1", num_requests=30, seed=2,
                            mean_interarrival_us=700.0)
        result = SweepRunner(config=tiny_config).run(
            policies=("NoRR",), workloads=(spec,),
            conditions=(Condition(0, 0.0),))
        assert result.cell("usr_1", 0, 0.0)["NoRR"].metrics.host_reads > 0


class TestLegacyShims:
    def test_run_workload_grid_warns_and_matches(self, tiny_config,
                                                 default_rpt):
        from repro.experiments.common import normalize_grid, run_workload_grid

        with pytest.warns(DeprecationWarning):
            grid = run_workload_grid(("Baseline", "NoRR"), ("usr_1",),
                                     conditions=((1000, 6.0),),
                                     num_requests=40, config=tiny_config,
                                     rpt=default_rpt)
        assert set(grid["usr_1"][(1000, 6.0)]) == {"Baseline", "NoRR"}
        with pytest.warns(DeprecationWarning):
            rows = list(normalize_grid(grid))
        assert {row["policy"] for row in rows} == {"Baseline", "NoRR"}

    def test_compare_policies_warns(self, tiny_config):
        from repro.experiments.common import compare_policies

        with pytest.warns(DeprecationWarning):
            result = compare_policies(policies=("Baseline", "NoRR"),
                                      num_requests=40, config=tiny_config)
        assert result["NoRR"] < result["Baseline"]


class TestMainSmoke:
    def test_python_m_repro_entry_point(self, capsys):
        from repro.__main__ import main

        exit_code = main(["--workloads", "usr_1", "--requests", "40"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "normalized_response_time" in out
        assert "Baseline" in out
