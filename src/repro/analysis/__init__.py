"""Small statistics and table helpers shared by experiments and tests."""

from repro.analysis.stats import (
    bootstrap_confidence_interval,
    geometric_mean,
    summarize,
)
from repro.analysis.tables import format_table, rows_to_csv

__all__ = [
    "geometric_mean",
    "bootstrap_confidence_interval",
    "summarize",
    "format_table",
    "rows_to_csv",
]
