"""repro — reproduction of "Reducing SSD Read Latency by Optimizing Read-Retry".

This package reimplements, in pure Python, the full system stack evaluated in
the ASPLOS 2021 paper by Park et al.:

* :mod:`repro.nand` — behavioural 3D TLC NAND flash model (organization,
  timing parameters, command set, read-retry tables, per-chip state).
* :mod:`repro.errors` — threshold-voltage and raw-bit-error-rate models,
  including the effect of retention loss, program/erase cycling, operating
  temperature, and reduced read-timing parameters.
* :mod:`repro.ecc` — error-correcting-code substrate (capability-model engine
  used by the simulator plus real BCH and LDPC codecs).
* :mod:`repro.characterization` — the virtual 160-chip characterization
  platform that regenerates the paper's Figures 4(b), 5, 7, 8, 9, 10 and 11
  and builds the Read-timing Parameter Table (RPT).
* :mod:`repro.ssd` — an event-driven, multi-queue SSD simulator (MQSim-like)
  with a page-mapping FTL, garbage collection, out-of-order transaction
  scheduling and program/erase suspension.
* :mod:`repro.core` — the paper's contributions: Pipelined Read-Retry (PR2),
  Adaptive Read-Retry (AR2), their combination (PnAR2), and the evaluated
  baselines (regular read-retry, PSO, and the ideal NoRR).
* :mod:`repro.workloads` — trace format and synthetic generators for the
  twelve MSRC/YCSB workloads of Table 2.
* :mod:`repro.sim` — **the session API**: policy registry, fluent
  :class:`~repro.sim.Simulation` builder, and the parallel
  :class:`~repro.sim.SweepRunner`.
* :mod:`repro.experiments` — the declarative experiment registry: one
  registered harness per table/figure with ``full``/``fast``/``smoke``
  parameter profiles, a content-addressed artifact store, and the
  ``repro-experiment`` CLI (``list`` / ``run`` / ``export`` / ``show``).

Quickstart
----------
Run one simulation cell with the fluent builder — pick policies from the
registry by name, a Table 2 workload, and an operating condition:

>>> from repro.sim import Simulation
>>> run = (Simulation()
...        .policies("Baseline", "PnAR2", "NoRR")
...        .workload("ycsb-c", n=200, seed=7)
...        .condition(pec=1000, months=6)
...        .run())
>>> sorted(run.policies)
['Baseline', 'NoRR', 'PnAR2']
>>> run.normalized()["NoRR"] < 1.0
True

Grids of (workload x condition x policy) cells go through
:class:`repro.sim.SweepRunner`, which fans cells out over a multiprocessing
pool and returns tidy rows:

>>> from repro.sim import SweepRunner  # doctest: +SKIP
>>> sweep = SweepRunner(processes=4).run(
...     policies=("Baseline", "PnAR2", "NoRR"),
...     workloads=("usr_1", "YCSB-C"),
...     conditions=((1000, 6.0), (2000, 12.0)),
...     num_requests=400)  # doctest: +SKIP
>>> print(sweep.table())  # doctest: +SKIP

``python -m repro`` runs a tiny sweep and prints its table, as a smoke test.
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "quick_ssd_comparison",
]


def quick_ssd_comparison(
    num_requests=1000,
    read_ratio=0.9,
    pe_cycles=1000,
    retention_months=6.0,
    seed=0,
):
    """Run a tiny end-to-end comparison of the read-retry policies.

    This convenience helper builds a small SSD, generates a synthetic
    workload through the :class:`repro.sim.Simulation` builder and returns
    the mean response time (in microseconds) of each Figure 14 policy.  It
    is intentionally small so it can be used in documentation examples and
    smoke tests; the full evaluation lives in :mod:`repro.experiments`.

    :param num_requests: number of host requests to simulate.
    :param read_ratio: fraction of requests that are reads.
    :param pe_cycles: program/erase-cycle count applied to every block.
    :param retention_months: retention age of cold data, in months.
    :param seed: seed for the workload generator and the flash backend.
    :return: mapping from policy name to mean response time in microseconds.
    """
    # Imported lazily so that ``import repro`` stays cheap.
    from repro.sim.registry import default_registry
    from repro.sim.session import Simulation
    from repro.ssd.config import SsdConfig
    from repro.workloads.synthetic import WorkloadShape

    config = SsdConfig.scaled(blocks_per_plane=24, pages_per_block=48)
    shape = WorkloadShape(read_ratio=read_ratio, cold_ratio=0.7, mean_interarrival_us=300.0)
    sim = Simulation(config)
    sim.policies(default_registry().names(tag="fig14"))
    sim.synthetic(shape, n=num_requests, seed=seed)
    sim.condition(pec=pe_cycles, months=retention_months)
    run = sim.run()
    return {name: result.mean_response_time_us for name, result in run}
