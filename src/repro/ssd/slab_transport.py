"""Shared-memory transport of retry-grid slabs for pool workers.

The sweep and fleet runners precompute :class:`~repro.ssd.retry_grid.RetryStepGrid`
slabs in the parent so workers install them instead of recomputing behaviour
lattices.  Shipping the slabs *inside every payload* serializes the same
arrays once per worker payload — linear pickle cost in fleet size.  This
module publishes the parent-built slab arrays **once** through
``multiprocessing.shared_memory`` and hands workers a small picklable
*descriptor* instead:

* :func:`publish_slabs` packs the exported slab arrays into one shared
  segment and returns a :class:`SlabSegment` whose ``descriptor`` (segment
  name, array layout, content fingerprint, publication epoch) travels in the
  payloads.  It returns ``None`` when shared memory is unavailable, and the
  callers fall back to the inline pickle path transparently;
* :func:`attach_slabs` maps a descriptor back into export-shaped slab dicts
  whose arrays are read-only views of the shared segment — zero-copy on the
  worker side;
* :func:`payload_slabs` is the worker-side entry point: descriptor if
  present (with a fallback to the inline form if the segment has vanished),
  inline ``grid_slabs`` otherwise.

Worker attachments are cached process-wide by segment name so one fleet
shard's payloads attach once.  Segment names are reused across runs of a
long-lived worker, so every cached attachment is validated against the
descriptor's ``(epoch, fingerprint)`` pair and explicitly detached on a
mismatch — a stale attachment from an earlier fleet run (a different
geometry, a rebuilt grid) can never serve a new spec.

The publishing side owns the segment: :meth:`SlabSegment.close` (called by
the runners in a ``finally``) closes and unlinks it, so segments never
outlive their run even when a worker crashes mid-shard.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Per-page-type array fields of one exported slab, in packing order.
_ARRAY_FIELDS = ("retry_steps", "retry_steps_reduced", "reduced_timing_fallback")
_FIELD_DTYPES = {
    "retry_steps": np.dtype(np.int16),
    "retry_steps_reduced": np.dtype(np.int16),
    "reduced_timing_fallback": np.dtype(bool),
}

#: Monotonic per-process counters: segment names are ``pid + counter`` (no
#: randomness — deterministic, and unique while the publishing process lives),
#: epochs order publications so stale worker attachments are detectable.
_SEGMENT_COUNTER = itertools.count()
_EPOCH_COUNTER = itertools.count(1)

#: Worker-side attachment cache: segment name -> (shm, epoch, fingerprint).
#: Bounded FIFO — a long-lived pool worker serving many runs keeps only the
#: most recent attachments open.
_ATTACHMENTS: Dict[str, Tuple[object, int, str]] = {}
_MAX_ATTACHMENTS = 4


class SlabTransportError(RuntimeError):
    """An attach failed (missing segment, fingerprint mismatch, bad layout)."""


def _shared_memory_module():
    from multiprocessing import shared_memory

    return shared_memory


def _next_segment_name() -> str:
    return f"repro_slab_{os.getpid()}_{next(_SEGMENT_COUNTER)}"


def _fingerprint(layout: List[dict], data: bytes) -> str:
    digest = hashlib.sha256(repr(layout).encode("utf-8"))
    digest.update(data)
    return digest.hexdigest()[:16]


class SlabSegment:
    """Parent-side handle of one published slab segment."""

    def __init__(self, shm, descriptor: dict):
        self._shm = shm
        self.descriptor = descriptor

    @property
    def name(self) -> str:
        return self.descriptor["name"]

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        Workers that still hold an attachment keep reading their mapped
        pages; the name just disappears from the namespace, so nothing
        leaks into ``/dev/shm`` after the run — crashed workers included.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - exported views still alive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SlabSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def publish_slabs(exports: Sequence[dict]) -> Optional[SlabSegment]:
    """Pack exported slabs into one shared-memory segment.

    :param exports: :meth:`RetryStepGrid.export_slabs` entries.
    :return: the published :class:`SlabSegment`, or ``None`` when shared
        memory is unavailable (the caller then ships the exports inline).
    """
    if not exports:
        return None
    try:
        shared_memory = _shared_memory_module()
    except ImportError:
        return None
    layout: List[dict] = []
    chunks: List[bytes] = []
    offset = 0
    for entry in exports:
        page_types: Dict[str, dict] = {}
        for name, arrays in entry["page_types"].items():
            fields = {}
            for field in _ARRAY_FIELDS:
                array = np.ascontiguousarray(arrays[field], dtype=_FIELD_DTYPES[field])
                data = array.tobytes()
                fields[field] = (offset, int(array.shape[0]))
                chunks.append(data)
                offset += len(data)
            page_types[name] = fields
        layout.append(
            {
                "pe_cycles": entry["pe_cycles"],
                "retention_months": entry["retention_months"],
                "page_types": page_types,
            }
        )
    payload = b"".join(chunks)
    try:
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload)), name=_next_segment_name()
        )
    except (OSError, ValueError):
        return None
    shm.buf[: len(payload)] = payload
    descriptor = {
        "name": shm.name,
        "epoch": next(_EPOCH_COUNTER),
        "fingerprint": _fingerprint(layout, payload),
        "size": len(payload),
        "layout": layout,
    }
    return SlabSegment(shm, descriptor)


def _untracked_attach(shared_memory, name: str):
    """Attach without registering with the resource tracker.

    An attaching worker does not own the segment; letting the resource
    tracker register the attachment would unlink it behind the publisher's
    back (and, because the tracker's cache is a set, confuse the
    publisher's own register/unregister pairing when publisher and worker
    share a process).  Python 3.13 has ``track=False`` for exactly this;
    earlier versions register unconditionally on attach, so registration
    is suppressed for the duration of the constructor instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track flag
        pass
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - non-posix
        return shared_memory.SharedMemory(name=name, create=False)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


def _detach(name: str) -> None:
    entry = _ATTACHMENTS.pop(name, None)
    if entry is None:
        return
    try:
        entry[0].close()
    except BufferError:  # pragma: no cover - caller still holds views
        pass


def detach_all() -> None:
    """Drop every cached attachment (test isolation hook)."""
    for name in list(_ATTACHMENTS):
        _detach(name)


def attach_slabs(descriptor: dict) -> List[dict]:
    """Rebuild export-shaped slabs from a published descriptor.

    The returned arrays are read-only views of the shared segment, valid
    while the attachment stays cached — consume them promptly (the grid's
    ``install_slabs`` interns the values immediately).

    :raises SlabTransportError: when the segment is gone or its content
        does not match the descriptor's fingerprint.
    """
    name = descriptor["name"]
    cached = _ATTACHMENTS.get(name)
    if cached is not None and (cached[1], cached[2]) != (
        descriptor["epoch"],
        descriptor["fingerprint"],
    ):
        # The epoch check: a long-lived worker whose earlier run attached a
        # same-named segment must not serve the new spec from stale pages.
        _detach(name)
        cached = None
    if cached is None:
        try:
            shared_memory = _shared_memory_module()
            shm = _untracked_attach(shared_memory, name)
        except (ImportError, OSError, ValueError) as error:
            raise SlabTransportError(f"cannot attach slab segment {name!r}: {error}") from error
        size = descriptor["size"]
        if shm.size < size:
            shm.close()
            raise SlabTransportError(
                f"slab segment {name!r} holds {shm.size} bytes, descriptor expects {size}"
            )
        fingerprint = _fingerprint(descriptor["layout"], bytes(shm.buf[:size]))
        if fingerprint != descriptor["fingerprint"]:
            shm.close()
            raise SlabTransportError(
                f"slab segment {name!r} content does not match its descriptor "
                "(stale or foreign segment)"
            )
        while len(_ATTACHMENTS) >= _MAX_ATTACHMENTS:
            _detach(next(iter(_ATTACHMENTS)))
        _ATTACHMENTS[name] = (shm, descriptor["epoch"], descriptor["fingerprint"])
        cached = _ATTACHMENTS[name]
    shm = cached[0]
    exports: List[dict] = []
    for entry in descriptor["layout"]:
        page_types = {}
        for page_name, fields in entry["page_types"].items():
            arrays = {}
            for field in _ARRAY_FIELDS:
                offset, length = fields[field]
                view = np.ndarray(
                    (length,), dtype=_FIELD_DTYPES[field], buffer=shm.buf, offset=offset
                )
                view.flags.writeable = False
                arrays[field] = view
            page_types[page_name] = arrays
        exports.append(
            {
                "pe_cycles": entry["pe_cycles"],
                "retention_months": entry["retention_months"],
                "page_types": page_types,
            }
        )
    return exports


def payload_slabs(payload: dict) -> Optional[List[dict]]:
    """The slabs a worker payload carries, via whichever transport it used.

    Attach failures (the publishing run already cleaned up, a stale
    descriptor) fall back to the payload's inline ``grid_slabs`` — absent
    both, the worker simply recomputes its slabs, which is slower but
    bitwise-identical.
    """
    descriptor = payload.get("grid_segment")
    if descriptor is not None:
        try:
            return attach_slabs(descriptor)
        except SlabTransportError:
            pass
    return payload.get("grid_slabs")
