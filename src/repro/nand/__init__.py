"""Behavioural model of 3D TLC NAND flash memory.

The subpackage models the pieces of a NAND flash chip that the paper's
techniques interact with:

* :mod:`repro.nand.geometry` — the physical organization (chip / die / plane /
  block / wordline / page) and address arithmetic.
* :mod:`repro.nand.timing` — read/program/erase timing parameters, including
  the three read phases (precharge, evaluation, discharge) whose durations
  AR2 manipulates, and Table 1 of the paper.
* :mod:`repro.nand.voltage` — threshold-voltage states, read-reference
  voltages, Gray coding of TLC pages and the manufacturer read-retry table.
* :mod:`repro.nand.commands` — the command set (PAGE READ, CACHE READ,
  SET FEATURE, RESET, PROGRAM, ERASE) with per-command protocol overheads.
* :mod:`repro.nand.chip` — a behavioural chip that executes commands against
  the error model, tracks busy/ready state, page buffers (for CACHE READ) and
  the currently active timing parameters (for SET FEATURE).
"""

from repro.nand.geometry import (
    ChipGeometry,
    PageAddress,
    PageType,
)
from repro.nand.timing import ReadTimingParameters, TimingParameters
from repro.nand.voltage import ReadRetryTable, ReadReferenceSet, TLC_GRAY_CODE
from repro.nand.commands import Command, CommandKind
from repro.nand.chip import NandChip, ReadResult

__all__ = [
    "ChipGeometry",
    "PageAddress",
    "PageType",
    "ReadTimingParameters",
    "TimingParameters",
    "ReadRetryTable",
    "ReadReferenceSet",
    "TLC_GRAY_CODE",
    "Command",
    "CommandKind",
    "NandChip",
    "ReadResult",
]
