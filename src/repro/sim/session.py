"""The fluent simulation builder — the canonical way to run the simulator.

>>> from repro.sim import Simulation
>>> result = (Simulation()
...           .policy("PnAR2")
...           .workload("ycsb-a", n=800)
...           .condition(pec=2000, months=6)
...           .run())
>>> result.mean_response_us("PnAR2")  # doctest: +SKIP

A :class:`Simulation` collects *what* to run (policies, a workload spec or
an explicit request stream, an operating condition) and ``run()`` executes
each policy against an identical copy of the stream on a freshly
preconditioned SSD, returning a :class:`RunResult` that carries the
per-policy :class:`~repro.ssd.controller.SimulationResult` objects plus a
JSON-able manifest describing the run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.core.rpt import ReadTimingParameterTable
from repro.sim.registry import default_registry
from repro.sim.spec import Condition, WorkloadSpec
from repro.ssd.config import SsdConfig
from repro.ssd.controller import SimulationResult, SsdSimulator
from repro.ssd.metrics import normalized_response_times
from repro.ssd.request import HostRequest
from repro.workloads.synthetic import WorkloadShape


@dataclass
class RunResult:
    """Outcome of one :meth:`Simulation.run` call."""

    config: SsdConfig
    condition: Condition
    results: Dict[str, SimulationResult]
    workload: Optional[WorkloadSpec] = None
    manifest: dict = field(default_factory=dict)

    # -- access ---------------------------------------------------------------
    @property
    def policies(self) -> List[str]:
        return list(self.results)

    def __getitem__(self, policy: str) -> SimulationResult:
        return self.results[policy]

    def __iter__(self):
        return iter(self.results.items())

    @property
    def result(self) -> SimulationResult:
        """The single result of a one-policy run."""
        if len(self.results) != 1:
            raise ValueError(
                f"run holds {len(self.results)} policies; index by name")
        return next(iter(self.results.values()))

    # -- views ----------------------------------------------------------------
    def mean_response_us(self, policy: Optional[str] = None) -> float:
        result = self.result if policy is None else self.results[policy]
        return result.mean_response_time_us

    def normalized(self, baseline: str = "Baseline") -> Dict[str, float]:
        """Mean response times normalized to ``baseline`` (Figure 14 y-axis)."""
        return normalized_response_times(
            {name: result.metrics for name, result in self.results.items()},
            baseline=baseline)

    def summary_rows(self) -> List[dict]:
        rows = []
        for name, result in self.results.items():
            row = {"policy": name,
                   "pe_cycles": self.condition.pe_cycles,
                   "retention_months": self.condition.retention_months}
            if self.workload is not None:
                row["workload"] = self.workload.label
            row.update(result.metrics.summary())
            rows.append(row)
        return rows


class Simulation:
    """Fluent builder for one simulator run (one cell, one or more policies)."""

    def __init__(self, config: Optional[SsdConfig] = None):
        self._config = config or SsdConfig.scaled()
        self._policies: List[str] = []
        self._workload: Optional[WorkloadSpec] = None
        self._requests: Optional[List[HostRequest]] = None
        self._condition = Condition()
        self._rpt: Optional[ReadTimingParameterTable] = None
        self._registry = default_registry()

    # -- builder steps --------------------------------------------------------
    def policy(self, policy) -> "Simulation":
        """Add one policy — a registry name or a ready policy instance."""
        if isinstance(policy, str):
            self._policies.append(self._registry.canonical_name(policy))
        else:
            self._policies.append(policy)
        return self

    def policies(self, *policies) -> "Simulation":
        """Add several policies at once (varargs or one iterable)."""
        if len(policies) == 1 and not isinstance(policies[0], str):
            try:
                policies = tuple(policies[0])
            except TypeError:
                pass
        for policy in policies:
            self.policy(policy)
        return self

    def workload(self, workload: Union[str, WorkloadSpec, WorkloadShape],
                 n: Optional[int] = None, seed: Optional[int] = None,
                 mean_interarrival_us: Optional[float] = None,
                 footprint_fraction: Optional[float] = None) -> "Simulation":
        """Select the request stream: a Table 2 name, spec, or synthetic shape."""
        self._workload = WorkloadSpec.coerce(
            workload, num_requests=n, seed=seed,
            mean_interarrival_us=mean_interarrival_us,
            footprint_fraction=footprint_fraction)
        self._requests = None
        return self

    def synthetic(self, shape: Optional[WorkloadShape] = None,
                  n: int = 500, seed: int = 0,
                  **shape_kwargs) -> "Simulation":
        """Use a parametric synthetic stream (``shape_kwargs`` build the shape)."""
        if shape is None:
            shape = WorkloadShape(**shape_kwargs)
        elif shape_kwargs:
            raise ValueError("pass either a shape or shape keyword arguments")
        return self.workload(WorkloadSpec(shape=shape, num_requests=n,
                                          seed=seed))

    def requests(self, requests: Sequence[HostRequest]) -> "Simulation":
        """Use an explicit, pre-generated request stream (e.g. a real trace)."""
        self._requests = list(requests)
        self._workload = None
        return self

    def condition(self, condition: Union[Condition, tuple, None] = None, *,
                  pec: int = 0, months: float = 0.0) -> "Simulation":
        """Set the preconditioned operating condition."""
        if condition is not None:
            self._condition = Condition.coerce(condition)
        else:
            self._condition = Condition(pe_cycles=pec, retention_months=months)
        return self

    def rpt(self, rpt: ReadTimingParameterTable) -> "Simulation":
        """Share a pre-built Read-timing Parameter Table across the run."""
        self._rpt = rpt
        return self

    # -- execution ------------------------------------------------------------
    def manifest(self) -> dict:
        """JSON-able description of the run (config, workload, condition)."""
        manifest = {
            "config": self._config.to_dict(),
            "condition": self._condition.to_dict(),
            "policies": [policy if isinstance(policy, str)
                         else getattr(policy, "name", repr(policy))
                         for policy in self._policies],
        }
        if self._workload is not None:
            manifest["workload"] = self._workload.to_dict()
        elif self._requests is not None:
            manifest["workload"] = {"explicit_requests": len(self._requests)}
        return manifest

    def _fresh_requests(self) -> List[HostRequest]:
        if self._workload is not None:
            return self._workload.build_requests(self._config)
        if self._requests is not None:
            # Simulations mutate their requests; hand out pristine copies.
            return [HostRequest(arrival_us=request.arrival_us,
                                kind=request.kind,
                                start_lpn=request.start_lpn,
                                page_count=request.page_count)
                    for request in self._requests]
        raise ValueError("no workload configured; call .workload(), "
                         ".synthetic() or .requests() first")

    def run(self) -> RunResult:
        """Execute every configured policy and collect the results."""
        if not self._policies:
            raise ValueError("no policy configured; call .policy(name) first")
        shared_rpt = self._rpt or ReadTimingParameterTable.default()
        results: Dict[str, SimulationResult] = {}
        for entry in self._policies:
            if isinstance(entry, str):
                policy = self._registry.create(
                    entry, timing=self._config.timing, rpt=shared_rpt)
            else:
                policy = entry
            simulator = SsdSimulator(config=self._config, policy=policy,
                                     rpt=shared_rpt)
            simulator.precondition(
                pe_cycles=self._condition.pe_cycles,
                retention_months=self._condition.retention_months)
            result = simulator.run(self._fresh_requests())
            results[result.policy_name] = result
        return RunResult(config=self._config, condition=self._condition,
                         results=results, workload=self._workload,
                         manifest=self.manifest())
