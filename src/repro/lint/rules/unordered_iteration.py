"""``no-unordered-iteration``: set iteration order must never feed results.

Python sets iterate in hash order, which varies with insertion history and
(for strings, absent ``PYTHONHASHSEED`` pinning) across processes — a
direct hazard to the bitwise serial==parallel guarantee: a worker that
iterates a set in a different order than the parent produces differently
ordered rows, payloads or event sequences.  The rule flags

* ``for x in <set>`` statements and list/generator/dict comprehensions
  iterating a set,
* order-preserving materializations of a set — ``list(s)``, ``tuple(s)``,
  ``enumerate(s)``, ``iter(s)``, ``dict.fromkeys(s)``, ``sep.join(s)``,

where ``<set>`` is a set literal, a set comprehension, a ``set()`` /
``frozenset()`` call, a set-algebra expression over one, or a local name
assigned from any of those.  Order-insensitive consumers — ``sorted``,
``len``, ``sum``, ``min``, ``max``, ``any``, ``all``, ``set``,
``frozenset``, membership tests, set comprehensions — are allowed: wrapping
the iteration in ``sorted(...)`` is the canonical fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.engine import Finding, ModuleContext, Rule

#: Builtins whose result does not depend on argument order.
ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Calls that materialize their argument in iteration order.
ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

#: Set methods that return another set.
SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


class _Scope:
    """Tracked set-typed local names, chained to the enclosing scope."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: dict = {}

    def is_set(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return False

    def assign(self, name: str, is_set: bool) -> None:
        self.names[name] = is_set


class _SetIterationVisitor(ast.NodeVisitor):
    def __init__(self, rule: "NoUnorderedIterationRule", module: ModuleContext):
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []
        self.scope = _Scope()
        #: Comprehension nodes appearing directly inside an order-insensitive
        #: call (``sorted(f(x) for x in s)``) — their set iteration is safe.
        self._order_safe: Set[int] = set()

    # -- set-type inference ---------------------------------------------------
    def _is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self.scope.is_set(node.id)
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set(node.left) or self._is_set(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SET_RETURNING_METHODS
                and self._is_set(func.value)
            ):
                return True
        return False

    def _describe(self, node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return f"the set {node.id!r}"
        return "a set expression"

    def _flag(self, node: ast.AST, iterable: ast.expr, context: str) -> None:
        self.findings.append(
            self.module.finding(
                self.rule,
                node,
                f"{context} iterates {self._describe(iterable)} in hash order, "
                "which is not deterministic across processes; sort it first "
                "(sorted(...)) or use an ordered container",
            )
        )

    # -- scope handling -------------------------------------------------------
    def _visit_in_new_scope(self, node: ast.AST) -> None:
        self.scope = _Scope(self.scope)
        self.generic_visit(node)
        self.scope = self.scope.parent

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_in_new_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_in_new_scope(node)

    # -- assignments ----------------------------------------------------------
    def _record_target(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            self.scope.assign(target.id, is_set)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, False)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._record_target(target, self._is_set(node.value))

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._record_target(node.target, self._is_set(node.value))

    # -- iteration sites ------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_set(node.iter):
            self._flag(node, node.iter, "for loop")
        self._record_target(node.target, False)
        self.generic_visit(node)

    def _visit_comprehension(self, node, kind: str) -> None:
        if id(node) not in self._order_safe:
            for generator in node.generators:
                if self._is_set(generator.iter):
                    self._flag(node, generator.iter, kind)
        self._visit_in_new_scope(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    # SetComp results are unordered, so iterating a set to build one is safe;
    # visit only for nested expressions (and scope isolation).
    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_in_new_scope(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ORDER_INSENSITIVE:
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                        self._order_safe.add(id(arg))
            elif func.id in ORDER_SENSITIVE and node.args:
                if self._is_set(node.args[0]):
                    self._flag(node, node.args[0], f"{func.id}() call")
        elif isinstance(func, ast.Attribute) and node.args:
            if func.attr == "fromkeys" and self._is_set(node.args[0]):
                self._flag(node, node.args[0], "dict.fromkeys() call")
            elif func.attr == "join" and self._is_set(node.args[0]):
                self._flag(node, node.args[0], "str.join() call")
        self.generic_visit(node)


class NoUnorderedIterationRule(Rule):
    name = "no-unordered-iteration"
    description = (
        "iterating a set (for loops, comprehensions, list()/tuple()/"
        "enumerate()/dict.fromkeys()) feeds hash order into results; "
        "sort first"
    )
    sim_scoped = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        visitor = _SetIterationVisitor(self, module)
        visitor.visit(module.tree)
        return iter(visitor.findings)
