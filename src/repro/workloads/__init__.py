"""Storage workloads: trace format and synthetic generators.

The paper evaluates twelve block-I/O workloads (Table 2): six enterprise
traces from the Microsoft Research Cambridge (MSRC) suite and six YCSB
key-value workloads.  The original traces are not redistributable, so this
subpackage provides:

* :mod:`repro.workloads.trace` — a trace-record format plus a reader/writer
  for the MSRC CSV layout, so the harness can also replay real traces when
  they are available;
* :mod:`repro.workloads.synthetic` — a parametric generator reproducing the
  two characteristics the evaluation is sensitive to: the *read ratio* and
  the *cold ratio* (fraction of reads whose target page is never updated and
  therefore keeps a long retention age);
* :mod:`repro.workloads.msrc` and :mod:`repro.workloads.ycsb` — presets that
  shape the generic generator like the respective suites;
* :mod:`repro.workloads.catalog` — Table 2 itself, mapping workload names to
  their parameters;
* :mod:`repro.workloads.source` — the unified ``WorkloadSource`` protocol
  every stream-producing object implements, plus its serialization
  registry (``source_to_dict``/``source_from_dict``);
* :mod:`repro.workloads.scenarios` — the adversarial access-pattern suite
  (snake sweeps, hot/cold zones, burst trains, in-stream control events).

The historical free-function entry points (``generate_workload``,
``iter_workload``, ``make_msrc_workload``, ``make_ycsb_workload``) are
deprecated shims over the protocol; they warn and forward.
"""

from repro.workloads.trace import (
    TraceRecord,
    TraceReplay,
    iter_msrc_csv,
    iter_records_to_requests,
    read_msrc_csv,
    records_to_requests,
    write_msrc_csv,
)
from repro.workloads.router import StripeRouter
from repro.workloads.synthetic import SyntheticWorkload, WorkloadShape
from repro.workloads.catalog import (
    WORKLOAD_CATALOG,
    WorkloadSpec,
    catalog_workload,
    generate_workload,
    iter_workload,
    workload_names,
)
from repro.workloads.source import (
    as_workload_source,
    is_workload_source,
    register_source,
    source_from_dict,
    source_kinds,
    source_to_dict,
)
from repro.workloads.scenarios import (
    PATTERNS,
    BurstTrain,
    ControlEvents,
    DiurnalCycle,
    HotColdZone,
    SequentialThenRandomRead,
    SnakeSweep,
    StridedRead,
    make_pattern,
)
def __getattr__(name):
    # TenantMix and ClosedLoopSource import repro.sim.spec at module level,
    # and repro.sim.spec imports repro.workloads.catalog — importing them
    # eagerly here would deadlock whichever side loads second.  PEP 562
    # lazy attributes break the cycle without changing the public surface.
    if name == "TenantMix":
        from repro.workloads.tenants import TenantMix

        return TenantMix
    if name == "ClosedLoopSource":
        from repro.workloads.closed_loop import ClosedLoopSource

        return ClosedLoopSource
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "TraceRecord",
    "TraceReplay",
    "iter_msrc_csv",
    "read_msrc_csv",
    "write_msrc_csv",
    "iter_records_to_requests",
    "records_to_requests",
    "StripeRouter",
    "SyntheticWorkload",
    "WorkloadShape",
    "WorkloadSpec",
    "WORKLOAD_CATALOG",
    "workload_names",
    "catalog_workload",
    "generate_workload",
    "iter_workload",
    "as_workload_source",
    "is_workload_source",
    "register_source",
    "source_from_dict",
    "source_kinds",
    "source_to_dict",
    "PATTERNS",
    "make_pattern",
    "SequentialThenRandomRead",
    "SnakeSweep",
    "StridedRead",
    "HotColdZone",
    "BurstTrain",
    "DiurnalCycle",
    "ControlEvents",
    "TenantMix",
    "ClosedLoopSource",
]
