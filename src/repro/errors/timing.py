"""Additional raw bit errors caused by reduced read-timing parameters.

Section 5.2 of the paper characterizes what happens when the three read-phase
timing parameters (tPRE, tEVAL, tDISCH) are shortened below their
manufacturer defaults.  The underlying mechanism (Section 3.2.2) is a small
population of *outlier bitlines* — thick wires, narrow contacts, high
parasitic capacitance — that need much longer than typical bitlines to reach
the precharge voltage or to fully discharge.  Manufacturers set the default
timings to cover those outliers, which leaves a large exploitable margin for
the majority of bitlines.

The model here draws the per-bitline required time for each phase from a
lognormal distribution; shortening a phase below a bitline's requirement
corrupts the bit sensed through it.  Three effects from the paper are
captured:

* sensitivity ordering: tEVAL is by far the most sensitive parameter,
  tDISCH is moderately sensitive, tPRE has the largest safe margin
  (Figure 8);
* operating-condition scaling: worn and long-retention cells have less cell
  current so the same timing deficit flips more bits (Figure 8), and a low
  operating temperature amplifies the effect slightly (Figure 10);
* coupling: a shortened discharge phase leaves bitlines partially charged,
  which effectively lengthens the precharge requirement of the *next*
  sensing cycle, so simultaneous tPRE+tDISCH reduction costs more than the
  sum of the individual reductions (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors.calibration import TIMING_CALIBRATION, TimingCalibration
from repro.errors.condition import OperatingCondition
from repro.errors.variation import VariationSample
from repro.nand.timing import ReadTimingParameters


def _standard_normal_sf(z: float) -> float:
    """Survival function of the standard normal distribution."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@dataclass(frozen=True)
class TimingReduction:
    """Fractional reductions of the three read-phase timing parameters."""

    pre: float = 0.0
    eval_: float = 0.0
    disch: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("pre", self.pre), ("eval_", self.eval_),
                            ("disch", self.disch)):
            if not 0.0 <= value < 1.0:
                raise ValueError(
                    f"{name} reduction must be in [0, 1), got {value}")

    @classmethod
    def none(cls) -> "TimingReduction":
        return cls()

    @classmethod
    def from_parameters(cls, reduced: ReadTimingParameters,
                        default: ReadTimingParameters) -> "TimingReduction":
        """Express a reduced parameter set relative to the default one."""
        fractions = reduced.reduction_from(default)
        return cls(pre=max(0.0, fractions["pre"]),
                   eval_=max(0.0, fractions["eval"]),
                   disch=max(0.0, fractions["disch"]))

    def apply_to(self, default: ReadTimingParameters) -> ReadTimingParameters:
        """The reduced timing parameters resulting from this reduction."""
        return default.with_reduction(pre=self.pre, eval_=self.eval_,
                                      disch=self.disch)

    @property
    def is_default(self) -> bool:
        return self.pre == 0.0 and self.eval_ == 0.0 and self.disch == 0.0


class ReadTimingErrorModel:
    """Expected additional raw bit errors per codeword from reduced timings."""

    def __init__(self, calibration: TimingCalibration = TIMING_CALIBRATION,
                 default_timing: ReadTimingParameters = None):
        self._calibration = calibration
        self._default = default_timing or ReadTimingParameters()

    @property
    def calibration(self) -> TimingCalibration:
        return self._calibration

    @property
    def default_timing(self) -> ReadTimingParameters:
        return self._default

    # -- public API -----------------------------------------------------------
    def additional_errors_per_codeword(
            self, reduction: TimingReduction,
            condition: OperatingCondition,
            variation: VariationSample = None) -> float:
        """Expected extra raw bit errors per 1-KiB codeword (Delta M_ERR)."""
        if reduction.is_default:
            return 0.0
        severity = self.severity(condition)
        if variation is not None:
            severity *= variation.timing_multiplier

        cal = self._calibration
        temperature_factor = self.temperature_amplification(condition)
        errors = self.phase_error_sum(reduction)
        base_errors = errors * severity
        # Low operating temperature amplifies the undercharge errors, but the
        # amplification is bounded by the small population of
        # temperature-marginal bitlines (Figure 10: at most ~7 extra errors).
        temperature_fraction = max(0.0, temperature_factor - 1.0)
        if cal.temperature_amplification_at_30c > 0:
            temperature_share = (temperature_fraction
                                 / cal.temperature_amplification_at_30c)
        else:
            temperature_share = 0.0
        temperature_extra = min(
            base_errors * temperature_fraction,
            cal.temperature_extra_error_cap_at_30c * temperature_share)
        return base_errors + temperature_extra

    def phase_error_sum(self, reduction: TimingReduction) -> float:
        """Condition-independent expected extra errors of a reduction.

        This is the sum of the three per-phase outlier-bitline terms before
        the operating-condition severity and temperature scaling are applied;
        :meth:`additional_errors_per_codeword` multiplies it by the severity.
        It is exposed separately so that the vectorized kernel in
        :mod:`repro.errors.batch` can evaluate it once per condition and
        broadcast it across variation corners.
        """
        cal = self._calibration
        # A shortened discharge phase leaves residual charge on the bitlines,
        # which effectively lengthens the precharge requirement of the next
        # sensing cycle (Section 2.2); the coupling grows quadratically so a
        # tiny tDISCH reduction is nearly free (Figure 9, third observation).
        effective_pre = min(
            0.99, reduction.pre + cal.disch_to_pre_coupling * reduction.disch ** 2)

        errors = 0.0
        errors += self._phase_errors(
            remaining_us=self._default.t_pre_us * (1.0 - effective_pre),
            default_us=self._default.t_pre_us,
            log_median=cal.pre_log_median_us, log_sigma=cal.pre_log_sigma)
        errors += self._phase_errors(
            remaining_us=self._default.t_eval_us * (1.0 - reduction.eval_),
            default_us=self._default.t_eval_us,
            log_median=cal.eval_log_median_us, log_sigma=cal.eval_log_sigma)
        errors += self._phase_errors(
            remaining_us=self._default.t_disch_us * (1.0 - reduction.disch),
            default_us=self._default.t_disch_us,
            log_median=cal.disch_log_median_us, log_sigma=cal.disch_log_sigma)
        return errors

    def severity(self, condition: OperatingCondition) -> float:
        """Operating-condition scaling of timing-induced errors.

        Normalized to 1.0 at (1K P/E cycles, 0 retention, 85 degC), the
        reference point of Figure 8's discussion.  Operating temperature is
        handled separately (and bounded) in
        :meth:`additional_errors_per_codeword`.
        """
        cal = self._calibration
        pec_factor = 1.0 + cal.severity_pec_coefficient * condition.kilo_pe_cycles
        retention_factor = (1.0 + cal.severity_retention_coefficient
                            * math.log1p(condition.retention_months
                                         / cal.severity_retention_tau_months))
        norm = 1.0 + cal.severity_pec_coefficient  # value at (1K, 0)
        return pec_factor * retention_factor / norm

    def safe_pre_reduction(self, condition: OperatingCondition,
                           error_budget: float,
                           granularity: float = 0.01,
                           max_reduction: float = 0.60) -> float:
        """Largest tPRE reduction whose extra errors stay within a budget.

        This is the optimization the RPT builder performs for every
        (PEC, retention) bin (Section 5.2.3 / Figure 11).
        """
        if error_budget < 0:
            return 0.0
        best = 0.0
        steps = int(round(max_reduction / granularity))
        for index in range(1, steps + 1):
            candidate = index * granularity
            extra = self.additional_errors_per_codeword(
                TimingReduction(pre=candidate), condition)
            if extra <= error_budget:
                best = candidate
            else:
                break
        return best

    # -- internals ------------------------------------------------------------
    def _phase_errors(self, remaining_us: float, default_us: float,
                      log_median: float, log_sigma: float) -> float:
        """Expected extra errors contributed by one shortened phase.

        The error count at the default duration is subtracted so that the
        model reports only *additional* errors — the residual outlier errors
        at default timings are already part of the V_TH error floor.
        """
        bits = self._calibration.codeword_bits
        at_reduced = bits * self._exceedance(remaining_us, log_median, log_sigma)
        at_default = bits * self._exceedance(default_us, log_median, log_sigma)
        return max(0.0, at_reduced - at_default)

    @staticmethod
    def _exceedance(duration_us: float, log_median: float,
                    log_sigma: float) -> float:
        """Probability that a bitline needs more than ``duration_us``."""
        if duration_us <= 0:
            return 1.0
        z = (math.log(duration_us) - log_median) / log_sigma
        return _standard_normal_sf(z)

    def temperature_amplification(self, condition: OperatingCondition) -> float:
        """Low-temperature amplification of timing-induced errors (Figure 10)."""
        cal = self._calibration
        reference = 85.0
        span = reference - 30.0
        delta = max(0.0, reference - condition.temperature_c)
        return 1.0 + cal.temperature_amplification_at_30c * delta / span
